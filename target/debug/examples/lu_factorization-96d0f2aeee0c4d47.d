/root/repo/target/debug/examples/lu_factorization-96d0f2aeee0c4d47.d: crates/core/../../examples/lu_factorization.rs Cargo.toml

/root/repo/target/debug/examples/liblu_factorization-96d0f2aeee0c4d47.rmeta: crates/core/../../examples/lu_factorization.rs Cargo.toml

crates/core/../../examples/lu_factorization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
