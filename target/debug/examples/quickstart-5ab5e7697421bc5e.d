/root/repo/target/debug/examples/quickstart-5ab5e7697421bc5e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5ab5e7697421bc5e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
