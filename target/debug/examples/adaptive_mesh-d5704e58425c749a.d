/root/repo/target/debug/examples/adaptive_mesh-d5704e58425c749a.d: crates/core/../../examples/adaptive_mesh.rs

/root/repo/target/debug/examples/adaptive_mesh-d5704e58425c749a: crates/core/../../examples/adaptive_mesh.rs

crates/core/../../examples/adaptive_mesh.rs:
