/root/repo/target/debug/examples/pde_solver-d979d7def44cf0aa.d: crates/core/../../examples/pde_solver.rs

/root/repo/target/debug/examples/pde_solver-d979d7def44cf0aa: crates/core/../../examples/pde_solver.rs

crates/core/../../examples/pde_solver.rs:
