/root/repo/target/debug/examples/lu_factorization-cbbaa63cabbac63f.d: crates/core/../../examples/lu_factorization.rs

/root/repo/target/debug/examples/lu_factorization-cbbaa63cabbac63f: crates/core/../../examples/lu_factorization.rs

crates/core/../../examples/lu_factorization.rs:
