/root/repo/target/debug/examples/adaptive_mesh-3c7d46ad66e36c06.d: crates/core/../../examples/adaptive_mesh.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_mesh-3c7d46ad66e36c06.rmeta: crates/core/../../examples/adaptive_mesh.rs Cargo.toml

crates/core/../../examples/adaptive_mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
