/root/repo/target/debug/examples/migration_microbench-3931df94b2a225c1.d: crates/core/../../examples/migration_microbench.rs

/root/repo/target/debug/examples/migration_microbench-3931df94b2a225c1: crates/core/../../examples/migration_microbench.rs

crates/core/../../examples/migration_microbench.rs:
