/root/repo/target/debug/examples/pde_solver-54d1bf46bf9a544d.d: crates/core/../../examples/pde_solver.rs Cargo.toml

/root/repo/target/debug/examples/libpde_solver-54d1bf46bf9a544d.rmeta: crates/core/../../examples/pde_solver.rs Cargo.toml

crates/core/../../examples/pde_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
