/root/repo/target/debug/examples/quickstart-1a58ab293cec2544.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1a58ab293cec2544: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
