/root/repo/target/debug/examples/pde_solver-c3ebbccf47b2910c.d: crates/core/../../examples/pde_solver.rs

/root/repo/target/debug/examples/pde_solver-c3ebbccf47b2910c: crates/core/../../examples/pde_solver.rs

crates/core/../../examples/pde_solver.rs:
