/root/repo/target/debug/examples/adaptive_mesh-3d2159896cdba31e.d: crates/core/../../examples/adaptive_mesh.rs

/root/repo/target/debug/examples/adaptive_mesh-3d2159896cdba31e: crates/core/../../examples/adaptive_mesh.rs

crates/core/../../examples/adaptive_mesh.rs:
