/root/repo/target/debug/examples/lu_factorization-c8ff3d5759647cfa.d: crates/core/../../examples/lu_factorization.rs

/root/repo/target/debug/examples/lu_factorization-c8ff3d5759647cfa: crates/core/../../examples/lu_factorization.rs

crates/core/../../examples/lu_factorization.rs:
