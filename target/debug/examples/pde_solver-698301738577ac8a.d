/root/repo/target/debug/examples/pde_solver-698301738577ac8a.d: crates/core/../../examples/pde_solver.rs

/root/repo/target/debug/examples/pde_solver-698301738577ac8a: crates/core/../../examples/pde_solver.rs

crates/core/../../examples/pde_solver.rs:
