/root/repo/target/debug/examples/lu_factorization-2ebdeeabb4f82c09.d: crates/core/../../examples/lu_factorization.rs Cargo.toml

/root/repo/target/debug/examples/liblu_factorization-2ebdeeabb4f82c09.rmeta: crates/core/../../examples/lu_factorization.rs Cargo.toml

crates/core/../../examples/lu_factorization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
