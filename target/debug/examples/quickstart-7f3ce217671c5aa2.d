/root/repo/target/debug/examples/quickstart-7f3ce217671c5aa2.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7f3ce217671c5aa2: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
