/root/repo/target/debug/examples/migration_microbench-82a155732fb6fa7e.d: crates/core/../../examples/migration_microbench.rs Cargo.toml

/root/repo/target/debug/examples/libmigration_microbench-82a155732fb6fa7e.rmeta: crates/core/../../examples/migration_microbench.rs Cargo.toml

crates/core/../../examples/migration_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
