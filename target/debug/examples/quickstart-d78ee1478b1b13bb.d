/root/repo/target/debug/examples/quickstart-d78ee1478b1b13bb.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d78ee1478b1b13bb.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
