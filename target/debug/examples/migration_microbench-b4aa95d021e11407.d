/root/repo/target/debug/examples/migration_microbench-b4aa95d021e11407.d: crates/core/../../examples/migration_microbench.rs

/root/repo/target/debug/examples/migration_microbench-b4aa95d021e11407: crates/core/../../examples/migration_microbench.rs

crates/core/../../examples/migration_microbench.rs:
