/root/repo/target/debug/examples/pde_solver-3c5f63d1e4c758f3.d: crates/core/../../examples/pde_solver.rs Cargo.toml

/root/repo/target/debug/examples/libpde_solver-3c5f63d1e4c758f3.rmeta: crates/core/../../examples/pde_solver.rs Cargo.toml

crates/core/../../examples/pde_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
