/root/repo/target/debug/examples/migration_microbench-3abfc0db635ec406.d: crates/core/../../examples/migration_microbench.rs

/root/repo/target/debug/examples/migration_microbench-3abfc0db635ec406: crates/core/../../examples/migration_microbench.rs

crates/core/../../examples/migration_microbench.rs:
