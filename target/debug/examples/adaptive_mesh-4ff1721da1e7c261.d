/root/repo/target/debug/examples/adaptive_mesh-4ff1721da1e7c261.d: crates/core/../../examples/adaptive_mesh.rs

/root/repo/target/debug/examples/adaptive_mesh-4ff1721da1e7c261: crates/core/../../examples/adaptive_mesh.rs

crates/core/../../examples/adaptive_mesh.rs:
