/root/repo/target/debug/examples/migration_microbench-9e93f0d70d9f22f7.d: crates/core/../../examples/migration_microbench.rs Cargo.toml

/root/repo/target/debug/examples/libmigration_microbench-9e93f0d70d9f22f7.rmeta: crates/core/../../examples/migration_microbench.rs Cargo.toml

crates/core/../../examples/migration_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
