/root/repo/target/debug/examples/quickstart-f2a2c162b47fd1d8.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f2a2c162b47fd1d8.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
