/root/repo/target/debug/examples/lu_factorization-33150d4a29efc89c.d: crates/core/../../examples/lu_factorization.rs

/root/repo/target/debug/examples/lu_factorization-33150d4a29efc89c: crates/core/../../examples/lu_factorization.rs

crates/core/../../examples/lu_factorization.rs:
