/root/repo/target/debug/deps/fig4-1ebc0fcc0c995a3a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-1ebc0fcc0c995a3a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
