/root/repo/target/debug/deps/numa_sim-edf89eba2b1c6426.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/numa_sim-edf89eba2b1c6426: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
