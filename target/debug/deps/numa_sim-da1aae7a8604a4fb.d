/root/repo/target/debug/deps/numa_sim-da1aae7a8604a4fb.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_sim-da1aae7a8604a4fb.rmeta: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
