/root/repo/target/debug/deps/integration_apps-8c8ec971c546ff77.d: crates/core/../../tests/integration_apps.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_apps-8c8ec971c546ff77.rmeta: crates/core/../../tests/integration_apps.rs Cargo.toml

crates/core/../../tests/integration_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
