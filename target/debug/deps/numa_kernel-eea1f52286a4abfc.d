/root/repo/target/debug/deps/numa_kernel-eea1f52286a4abfc.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_kernel-eea1f52286a4abfc.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/interconnect.rs:
crates/kernel/src/locks.rs:
crates/kernel/src/syscalls.rs:
crates/kernel/src/tier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
