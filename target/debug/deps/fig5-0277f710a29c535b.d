/root/repo/target/debug/deps/fig5-0277f710a29c535b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0277f710a29c535b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
