/root/repo/target/debug/deps/integration_experiments-760e66fd53adf24f.d: crates/core/../../tests/integration_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_experiments-760e66fd53adf24f.rmeta: crates/core/../../tests/integration_experiments.rs Cargo.toml

crates/core/../../tests/integration_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
