/root/repo/target/debug/deps/numa_machine-b06ca1128ebdf4ad.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_machine-b06ca1128ebdf4ad.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
