/root/repo/target/debug/deps/proptest_vm-0e658cc074dfd1fd.d: crates/vm/tests/proptest_vm.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_vm-0e658cc074dfd1fd.rmeta: crates/vm/tests/proptest_vm.rs Cargo.toml

crates/vm/tests/proptest_vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
