/root/repo/target/debug/deps/proptest_sim-57c4d3dfd8aff430.d: crates/sim/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-57c4d3dfd8aff430.rmeta: crates/sim/tests/proptest_sim.rs Cargo.toml

crates/sim/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
