/root/repo/target/debug/deps/fig3-beb8c3ad180cbc5b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-beb8c3ad180cbc5b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
