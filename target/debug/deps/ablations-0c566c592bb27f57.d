/root/repo/target/debug/deps/ablations-0c566c592bb27f57.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-0c566c592bb27f57.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
