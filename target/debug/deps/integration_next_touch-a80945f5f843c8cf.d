/root/repo/target/debug/deps/integration_next_touch-a80945f5f843c8cf.d: crates/core/../../tests/integration_next_touch.rs

/root/repo/target/debug/deps/integration_next_touch-a80945f5f843c8cf: crates/core/../../tests/integration_next_touch.rs

crates/core/../../tests/integration_next_touch.rs:
