/root/repo/target/debug/deps/integration_migration-24b5ce9521d3b7b4.d: crates/core/../../tests/integration_migration.rs

/root/repo/target/debug/deps/integration_migration-24b5ce9521d3b7b4: crates/core/../../tests/integration_migration.rs

crates/core/../../tests/integration_migration.rs:
