/root/repo/target/debug/deps/ablations-9e049072423ede7a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-9e049072423ede7a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
