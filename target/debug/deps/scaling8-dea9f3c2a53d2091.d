/root/repo/target/debug/deps/scaling8-dea9f3c2a53d2091.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/debug/deps/scaling8-dea9f3c2a53d2091: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
