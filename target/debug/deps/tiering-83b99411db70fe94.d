/root/repo/target/debug/deps/tiering-83b99411db70fe94.d: crates/bench/src/bin/tiering.rs Cargo.toml

/root/repo/target/debug/deps/libtiering-83b99411db70fe94.rmeta: crates/bench/src/bin/tiering.rs Cargo.toml

crates/bench/src/bin/tiering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
