/root/repo/target/debug/deps/numa_tier-5ff111913cf1d32f.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/libnuma_tier-5ff111913cf1d32f.rlib: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/libnuma_tier-5ff111913cf1d32f.rmeta: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
