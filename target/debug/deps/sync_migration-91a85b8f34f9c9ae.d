/root/repo/target/debug/deps/sync_migration-91a85b8f34f9c9ae.d: crates/bench/benches/sync_migration.rs Cargo.toml

/root/repo/target/debug/deps/libsync_migration-91a85b8f34f9c9ae.rmeta: crates/bench/benches/sync_migration.rs Cargo.toml

crates/bench/benches/sync_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
