/root/repo/target/debug/deps/numa_machine-338091acd00032c3.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/libnuma_machine-338091acd00032c3.rlib: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/libnuma_machine-338091acd00032c3.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
