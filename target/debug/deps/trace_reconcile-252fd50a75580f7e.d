/root/repo/target/debug/deps/trace_reconcile-252fd50a75580f7e.d: crates/bench/tests/trace_reconcile.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_reconcile-252fd50a75580f7e.rmeta: crates/bench/tests/trace_reconcile.rs Cargo.toml

crates/bench/tests/trace_reconcile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
