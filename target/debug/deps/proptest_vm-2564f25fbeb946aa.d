/root/repo/target/debug/deps/proptest_vm-2564f25fbeb946aa.d: crates/vm/tests/proptest_vm.rs

/root/repo/target/debug/deps/proptest_vm-2564f25fbeb946aa: crates/vm/tests/proptest_vm.rs

crates/vm/tests/proptest_vm.rs:
