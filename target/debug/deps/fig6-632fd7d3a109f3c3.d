/root/repo/target/debug/deps/fig6-632fd7d3a109f3c3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-632fd7d3a109f3c3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
