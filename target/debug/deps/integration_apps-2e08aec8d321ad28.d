/root/repo/target/debug/deps/integration_apps-2e08aec8d321ad28.d: crates/core/../../tests/integration_apps.rs

/root/repo/target/debug/deps/integration_apps-2e08aec8d321ad28: crates/core/../../tests/integration_apps.rs

crates/core/../../tests/integration_apps.rs:
