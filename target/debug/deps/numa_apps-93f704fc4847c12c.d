/root/repo/target/debug/deps/numa_apps-93f704fc4847c12c.d: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/debug/deps/numa_apps-93f704fc4847c12c: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

crates/apps/src/lib.rs:
crates/apps/src/amr.rs:
crates/apps/src/blas.rs:
crates/apps/src/blas1.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lu.rs:
crates/apps/src/matrix.rs:
crates/apps/src/model.rs:
crates/apps/src/pde.rs:
