/root/repo/target/debug/deps/scaling8-91fd95d7f5a3e9e7.d: crates/bench/src/bin/scaling8.rs Cargo.toml

/root/repo/target/debug/deps/libscaling8-91fd95d7f5a3e9e7.rmeta: crates/bench/src/bin/scaling8.rs Cargo.toml

crates/bench/src/bin/scaling8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
