/root/repo/target/debug/deps/blas1_check-93dd2010541c3b9a.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/debug/deps/blas1_check-93dd2010541c3b9a: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
