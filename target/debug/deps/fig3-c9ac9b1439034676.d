/root/repo/target/debug/deps/fig3-c9ac9b1439034676.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-c9ac9b1439034676: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
