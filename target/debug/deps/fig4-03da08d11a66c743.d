/root/repo/target/debug/deps/fig4-03da08d11a66c743.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-03da08d11a66c743: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
