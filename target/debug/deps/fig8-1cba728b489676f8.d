/root/repo/target/debug/deps/fig8-1cba728b489676f8.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-1cba728b489676f8.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
