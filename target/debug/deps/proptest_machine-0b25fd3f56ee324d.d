/root/repo/target/debug/deps/proptest_machine-0b25fd3f56ee324d.d: crates/machine/tests/proptest_machine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_machine-0b25fd3f56ee324d.rmeta: crates/machine/tests/proptest_machine.rs Cargo.toml

crates/machine/tests/proptest_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
