/root/repo/target/debug/deps/integration_experiments-040ebdc6f00da731.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-040ebdc6f00da731: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
