/root/repo/target/debug/deps/next_touch-a60c8f4bdddac4ea.d: crates/bench/benches/next_touch.rs Cargo.toml

/root/repo/target/debug/deps/libnext_touch-a60c8f4bdddac4ea.rmeta: crates/bench/benches/next_touch.rs Cargo.toml

crates/bench/benches/next_touch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
