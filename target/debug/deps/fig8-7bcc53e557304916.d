/root/repo/target/debug/deps/fig8-7bcc53e557304916.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7bcc53e557304916: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
