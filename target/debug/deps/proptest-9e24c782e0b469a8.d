/root/repo/target/debug/deps/proptest-9e24c782e0b469a8.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9e24c782e0b469a8.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9e24c782e0b469a8.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
