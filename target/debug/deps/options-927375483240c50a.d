/root/repo/target/debug/deps/options-927375483240c50a.d: crates/bench/tests/options.rs

/root/repo/target/debug/deps/options-927375483240c50a: crates/bench/tests/options.rs

crates/bench/tests/options.rs:
