/root/repo/target/debug/deps/numa_tier-a06325c41a3037bb.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/numa_tier-a06325c41a3037bb: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
