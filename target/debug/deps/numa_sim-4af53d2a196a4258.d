/root/repo/target/debug/deps/numa_sim-4af53d2a196a4258.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnuma_sim-4af53d2a196a4258.rlib: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnuma_sim-4af53d2a196a4258.rmeta: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
