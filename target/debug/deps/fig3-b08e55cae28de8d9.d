/root/repo/target/debug/deps/fig3-b08e55cae28de8d9.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-b08e55cae28de8d9.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
