/root/repo/target/debug/deps/proptest_rt-5dea15e8423c3750.d: crates/rt/tests/proptest_rt.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rt-5dea15e8423c3750.rmeta: crates/rt/tests/proptest_rt.rs Cargo.toml

crates/rt/tests/proptest_rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
