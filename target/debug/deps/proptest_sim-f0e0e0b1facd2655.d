/root/repo/target/debug/deps/proptest_sim-f0e0e0b1facd2655.d: crates/sim/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-f0e0e0b1facd2655.rmeta: crates/sim/tests/proptest_sim.rs Cargo.toml

crates/sim/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
