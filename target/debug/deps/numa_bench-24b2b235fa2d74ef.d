/root/repo/target/debug/deps/numa_bench-24b2b235fa2d74ef.d: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

/root/repo/target/debug/deps/libnuma_bench-24b2b235fa2d74ef.rlib: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

/root/repo/target/debug/deps/libnuma_bench-24b2b235fa2d74ef.rmeta: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

crates/bench/src/lib.rs:
crates/bench/src/output.rs:
crates/bench/src/trace_run.rs:
