/root/repo/target/debug/deps/fig5-38073a75c55fe6a6.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-38073a75c55fe6a6: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
