/root/repo/target/debug/deps/scaling8-f582e8683a95b0bd.d: crates/bench/src/bin/scaling8.rs Cargo.toml

/root/repo/target/debug/deps/libscaling8-f582e8683a95b0bd.rmeta: crates/bench/src/bin/scaling8.rs Cargo.toml

crates/bench/src/bin/scaling8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
