/root/repo/target/debug/deps/integration_next_touch-30fca4d2e7cc6031.d: crates/core/../../tests/integration_next_touch.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_next_touch-30fca4d2e7cc6031.rmeta: crates/core/../../tests/integration_next_touch.rs Cargo.toml

crates/core/../../tests/integration_next_touch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
