/root/repo/target/debug/deps/blas1_check-69e2e1c3ba1c234a.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/debug/deps/blas1_check-69e2e1c3ba1c234a: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
