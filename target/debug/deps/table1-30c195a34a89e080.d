/root/repo/target/debug/deps/table1-30c195a34a89e080.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-30c195a34a89e080: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
