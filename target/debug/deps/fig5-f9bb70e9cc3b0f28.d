/root/repo/target/debug/deps/fig5-f9bb70e9cc3b0f28.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f9bb70e9cc3b0f28: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
