/root/repo/target/debug/deps/numa_vm-d665920c8f57316d.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

/root/repo/target/debug/deps/libnuma_vm-d665920c8f57316d.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

/root/repo/target/debug/deps/libnuma_vm-d665920c8f57316d.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/policy.rs:
crates/vm/src/pte.rs:
crates/vm/src/space.rs:
crates/vm/src/tlb.rs:
crates/vm/src/vma.rs:
