/root/repo/target/debug/deps/numa_sim-8ae3ce3fa8a7a0cb.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/numa_sim-8ae3ce3fa8a7a0cb: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
