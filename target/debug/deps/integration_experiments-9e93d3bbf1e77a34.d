/root/repo/target/debug/deps/integration_experiments-9e93d3bbf1e77a34.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-9e93d3bbf1e77a34: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
