/root/repo/target/debug/deps/numa_bench-69e91b56c855849b.d: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_bench-69e91b56c855849b.rmeta: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/output.rs:
crates/bench/src/trace_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
