/root/repo/target/debug/deps/tiering-ce92144c9aa339c7.d: crates/bench/src/bin/tiering.rs Cargo.toml

/root/repo/target/debug/deps/libtiering-ce92144c9aa339c7.rmeta: crates/bench/src/bin/tiering.rs Cargo.toml

crates/bench/src/bin/tiering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
