/root/repo/target/debug/deps/fig4-c2681768f64e3af6.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c2681768f64e3af6: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
