/root/repo/target/debug/deps/determinism-ecdb3dc0a0666f25.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-ecdb3dc0a0666f25: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
