/root/repo/target/debug/deps/proptest_tier-4fc22d05a282dcbf.d: crates/tier/tests/proptest_tier.rs

/root/repo/target/debug/deps/proptest_tier-4fc22d05a282dcbf: crates/tier/tests/proptest_tier.rs

crates/tier/tests/proptest_tier.rs:
