/root/repo/target/debug/deps/numa_stats-7f95237e96332134.d: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/numa_stats-7f95237e96332134: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/breakdown.rs:
crates/stats/src/counters.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/table.rs:
