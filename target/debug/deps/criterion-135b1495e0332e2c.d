/root/repo/target/debug/deps/criterion-135b1495e0332e2c.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-135b1495e0332e2c.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
