/root/repo/target/debug/deps/engine_edge_cases-99464b38f5719d8a.d: crates/machine/tests/engine_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libengine_edge_cases-99464b38f5719d8a.rmeta: crates/machine/tests/engine_edge_cases.rs Cargo.toml

crates/machine/tests/engine_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
