/root/repo/target/debug/deps/fig8-4c4b5608e19c9f2c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-4c4b5608e19c9f2c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
