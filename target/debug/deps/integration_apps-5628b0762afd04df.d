/root/repo/target/debug/deps/integration_apps-5628b0762afd04df.d: crates/core/../../tests/integration_apps.rs

/root/repo/target/debug/deps/integration_apps-5628b0762afd04df: crates/core/../../tests/integration_apps.rs

crates/core/../../tests/integration_apps.rs:
