/root/repo/target/debug/deps/proptest_kernel-6661ef82b924ed5d.d: crates/kernel/tests/proptest_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_kernel-6661ef82b924ed5d.rmeta: crates/kernel/tests/proptest_kernel.rs Cargo.toml

crates/kernel/tests/proptest_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
