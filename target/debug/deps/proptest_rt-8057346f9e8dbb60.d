/root/repo/target/debug/deps/proptest_rt-8057346f9e8dbb60.d: crates/rt/tests/proptest_rt.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rt-8057346f9e8dbb60.rmeta: crates/rt/tests/proptest_rt.rs Cargo.toml

crates/rt/tests/proptest_rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
