/root/repo/target/debug/deps/options-d0eadc9b290158ab.d: crates/bench/tests/options.rs Cargo.toml

/root/repo/target/debug/deps/liboptions-d0eadc9b290158ab.rmeta: crates/bench/tests/options.rs Cargo.toml

crates/bench/tests/options.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
