/root/repo/target/debug/deps/fig3-129d8d22a27d0b81.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-129d8d22a27d0b81: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
