/root/repo/target/debug/deps/blas1_check-38b7d83373469cbd.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/debug/deps/blas1_check-38b7d83373469cbd: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
