/root/repo/target/debug/deps/numa_bench-f14858aa203f7a6d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/numa_bench-f14858aa203f7a6d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
