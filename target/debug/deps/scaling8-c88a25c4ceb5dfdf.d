/root/repo/target/debug/deps/scaling8-c88a25c4ceb5dfdf.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/debug/deps/scaling8-c88a25c4ceb5dfdf: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
