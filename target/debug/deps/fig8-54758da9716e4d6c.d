/root/repo/target/debug/deps/fig8-54758da9716e4d6c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-54758da9716e4d6c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
