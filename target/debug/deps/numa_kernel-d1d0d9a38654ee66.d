/root/repo/target/debug/deps/numa_kernel-d1d0d9a38654ee66.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/debug/deps/libnuma_kernel-d1d0d9a38654ee66.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/debug/deps/libnuma_kernel-d1d0d9a38654ee66.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/interconnect.rs:
crates/kernel/src/locks.rs:
crates/kernel/src/syscalls.rs:
crates/kernel/src/tier.rs:
