/root/repo/target/debug/deps/scaling8-169a4d9276d82236.d: crates/bench/src/bin/scaling8.rs Cargo.toml

/root/repo/target/debug/deps/libscaling8-169a4d9276d82236.rmeta: crates/bench/src/bin/scaling8.rs Cargo.toml

crates/bench/src/bin/scaling8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
