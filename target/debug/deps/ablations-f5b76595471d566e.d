/root/repo/target/debug/deps/ablations-f5b76595471d566e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-f5b76595471d566e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
