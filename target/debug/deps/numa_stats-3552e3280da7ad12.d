/root/repo/target/debug/deps/numa_stats-3552e3280da7ad12.d: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_stats-3552e3280da7ad12.rmeta: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/breakdown.rs:
crates/stats/src/counters.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
