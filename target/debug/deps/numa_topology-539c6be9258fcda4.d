/root/repo/target/debug/deps/numa_topology-539c6be9258fcda4.d: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_topology-539c6be9258fcda4.rmeta: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/cost.rs:
crates/topology/src/presets.rs:
crates/topology/src/spec.rs:
crates/topology/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
