/root/repo/target/debug/deps/numa_apps-33ac1ab2e7d051f0.d: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_apps-33ac1ab2e7d051f0.rmeta: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/amr.rs:
crates/apps/src/blas.rs:
crates/apps/src/blas1.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lu.rs:
crates/apps/src/matrix.rs:
crates/apps/src/model.rs:
crates/apps/src/pde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
