/root/repo/target/debug/deps/proptest_machine-8a5ec0a790b3ef39.d: crates/machine/tests/proptest_machine.rs

/root/repo/target/debug/deps/proptest_machine-8a5ec0a790b3ef39: crates/machine/tests/proptest_machine.rs

crates/machine/tests/proptest_machine.rs:
