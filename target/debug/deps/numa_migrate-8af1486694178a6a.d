/root/repo/target/debug/deps/numa_migrate-8af1486694178a6a.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/blas1.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tiering.rs crates/core/src/prelude.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_migrate-8af1486694178a6a.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/blas1.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tiering.rs crates/core/src/prelude.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/blas1.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/tiering.rs:
crates/core/src/prelude.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
