/root/repo/target/debug/deps/ablations-5cb0cd1fb1f63010.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-5cb0cd1fb1f63010: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
