/root/repo/target/debug/deps/proptest_apps-bb37e3404fc1abc3.d: crates/apps/tests/proptest_apps.rs

/root/repo/target/debug/deps/proptest_apps-bb37e3404fc1abc3: crates/apps/tests/proptest_apps.rs

crates/apps/tests/proptest_apps.rs:
