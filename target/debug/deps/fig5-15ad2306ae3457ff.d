/root/repo/target/debug/deps/fig5-15ad2306ae3457ff.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-15ad2306ae3457ff.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
