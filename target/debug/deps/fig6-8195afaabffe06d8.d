/root/repo/target/debug/deps/fig6-8195afaabffe06d8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8195afaabffe06d8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
