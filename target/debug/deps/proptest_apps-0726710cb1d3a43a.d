/root/repo/target/debug/deps/proptest_apps-0726710cb1d3a43a.d: crates/apps/tests/proptest_apps.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_apps-0726710cb1d3a43a.rmeta: crates/apps/tests/proptest_apps.rs Cargo.toml

crates/apps/tests/proptest_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
