/root/repo/target/debug/deps/numa_tier-fbda98de35fff394.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_tier-fbda98de35fff394.rmeta: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs Cargo.toml

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
