/root/repo/target/debug/deps/fig5-9b334be4b9280e8e.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-9b334be4b9280e8e.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
