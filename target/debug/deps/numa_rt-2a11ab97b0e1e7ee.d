/root/repo/target/debug/deps/numa_rt-2a11ab97b0e1e7ee.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/debug/deps/numa_rt-2a11ab97b0e1e7ee: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
