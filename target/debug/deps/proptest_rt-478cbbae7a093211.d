/root/repo/target/debug/deps/proptest_rt-478cbbae7a093211.d: crates/rt/tests/proptest_rt.rs

/root/repo/target/debug/deps/proptest_rt-478cbbae7a093211: crates/rt/tests/proptest_rt.rs

crates/rt/tests/proptest_rt.rs:
