/root/repo/target/debug/deps/scaling8-ed15fcb21dc2bb59.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/debug/deps/scaling8-ed15fcb21dc2bb59: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
