/root/repo/target/debug/deps/fig6-dddbceca418edea8.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-dddbceca418edea8.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
