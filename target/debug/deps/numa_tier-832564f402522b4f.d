/root/repo/target/debug/deps/numa_tier-832564f402522b4f.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/libnuma_tier-832564f402522b4f.rlib: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/libnuma_tier-832564f402522b4f.rmeta: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
