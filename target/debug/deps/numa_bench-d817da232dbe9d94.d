/root/repo/target/debug/deps/numa_bench-d817da232dbe9d94.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_bench-d817da232dbe9d94.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
