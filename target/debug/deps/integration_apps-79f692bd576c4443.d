/root/repo/target/debug/deps/integration_apps-79f692bd576c4443.d: crates/core/../../tests/integration_apps.rs

/root/repo/target/debug/deps/integration_apps-79f692bd576c4443: crates/core/../../tests/integration_apps.rs

crates/core/../../tests/integration_apps.rs:
