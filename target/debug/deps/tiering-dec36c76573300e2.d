/root/repo/target/debug/deps/tiering-dec36c76573300e2.d: crates/bench/src/bin/tiering.rs

/root/repo/target/debug/deps/tiering-dec36c76573300e2: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
