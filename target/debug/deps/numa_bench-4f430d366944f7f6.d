/root/repo/target/debug/deps/numa_bench-4f430d366944f7f6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnuma_bench-4f430d366944f7f6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnuma_bench-4f430d366944f7f6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
