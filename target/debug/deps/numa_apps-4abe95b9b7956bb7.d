/root/repo/target/debug/deps/numa_apps-4abe95b9b7956bb7.d: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/debug/deps/libnuma_apps-4abe95b9b7956bb7.rlib: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/debug/deps/libnuma_apps-4abe95b9b7956bb7.rmeta: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

crates/apps/src/lib.rs:
crates/apps/src/amr.rs:
crates/apps/src/blas.rs:
crates/apps/src/blas1.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lu.rs:
crates/apps/src/matrix.rs:
crates/apps/src/model.rs:
crates/apps/src/pde.rs:
