/root/repo/target/debug/deps/blas1_check-bd3a0155d99b68b8.d: crates/bench/src/bin/blas1_check.rs Cargo.toml

/root/repo/target/debug/deps/libblas1_check-bd3a0155d99b68b8.rmeta: crates/bench/src/bin/blas1_check.rs Cargo.toml

crates/bench/src/bin/blas1_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
