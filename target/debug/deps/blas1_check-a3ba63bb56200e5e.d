/root/repo/target/debug/deps/blas1_check-a3ba63bb56200e5e.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/debug/deps/blas1_check-a3ba63bb56200e5e: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
