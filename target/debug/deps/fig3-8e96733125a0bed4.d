/root/repo/target/debug/deps/fig3-8e96733125a0bed4.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-8e96733125a0bed4.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
