/root/repo/target/debug/deps/ablations-ff415b28483e57bf.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ff415b28483e57bf.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
