/root/repo/target/debug/deps/table1-04ca452aa1733fd2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-04ca452aa1733fd2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
