/root/repo/target/debug/deps/numa_bench-41b9941647ae7af3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/numa_bench-41b9941647ae7af3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
