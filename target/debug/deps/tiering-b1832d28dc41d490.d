/root/repo/target/debug/deps/tiering-b1832d28dc41d490.d: crates/bench/src/bin/tiering.rs Cargo.toml

/root/repo/target/debug/deps/libtiering-b1832d28dc41d490.rmeta: crates/bench/src/bin/tiering.rs Cargo.toml

crates/bench/src/bin/tiering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
