/root/repo/target/debug/deps/fig4-d9c612747a998acb.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-d9c612747a998acb.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
