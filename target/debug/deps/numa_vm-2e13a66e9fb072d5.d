/root/repo/target/debug/deps/numa_vm-2e13a66e9fb072d5.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

/root/repo/target/debug/deps/numa_vm-2e13a66e9fb072d5: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/policy.rs:
crates/vm/src/pte.rs:
crates/vm/src/space.rs:
crates/vm/src/tlb.rs:
crates/vm/src/vma.rs:
