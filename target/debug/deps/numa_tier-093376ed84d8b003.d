/root/repo/target/debug/deps/numa_tier-093376ed84d8b003.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/debug/deps/numa_tier-093376ed84d8b003: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
