/root/repo/target/debug/deps/proptest_machine-93c0b6f61228362d.d: crates/machine/tests/proptest_machine.rs

/root/repo/target/debug/deps/proptest_machine-93c0b6f61228362d: crates/machine/tests/proptest_machine.rs

crates/machine/tests/proptest_machine.rs:
