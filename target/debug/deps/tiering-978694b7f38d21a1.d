/root/repo/target/debug/deps/tiering-978694b7f38d21a1.d: crates/bench/src/bin/tiering.rs

/root/repo/target/debug/deps/tiering-978694b7f38d21a1: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
