/root/repo/target/debug/deps/integration_migration-d9e1fbc865a90aeb.d: crates/core/../../tests/integration_migration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_migration-d9e1fbc865a90aeb.rmeta: crates/core/../../tests/integration_migration.rs Cargo.toml

crates/core/../../tests/integration_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
