/root/repo/target/debug/deps/integration_experiments-3aca67f81985f62e.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-3aca67f81985f62e: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
