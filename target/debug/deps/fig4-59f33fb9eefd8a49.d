/root/repo/target/debug/deps/fig4-59f33fb9eefd8a49.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-59f33fb9eefd8a49: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
