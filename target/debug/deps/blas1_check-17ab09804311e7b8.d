/root/repo/target/debug/deps/blas1_check-17ab09804311e7b8.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/debug/deps/blas1_check-17ab09804311e7b8: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
