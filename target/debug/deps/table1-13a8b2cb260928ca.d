/root/repo/target/debug/deps/table1-13a8b2cb260928ca.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-13a8b2cb260928ca: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
