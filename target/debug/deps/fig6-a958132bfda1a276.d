/root/repo/target/debug/deps/fig6-a958132bfda1a276.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a958132bfda1a276: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
