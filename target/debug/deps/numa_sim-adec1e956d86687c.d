/root/repo/target/debug/deps/numa_sim-adec1e956d86687c.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnuma_sim-adec1e956d86687c.rlib: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libnuma_sim-adec1e956d86687c.rmeta: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
