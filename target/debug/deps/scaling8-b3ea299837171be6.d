/root/repo/target/debug/deps/scaling8-b3ea299837171be6.d: crates/bench/src/bin/scaling8.rs Cargo.toml

/root/repo/target/debug/deps/libscaling8-b3ea299837171be6.rmeta: crates/bench/src/bin/scaling8.rs Cargo.toml

crates/bench/src/bin/scaling8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
