/root/repo/target/debug/deps/tiering-6c9d3323ebcd900c.d: crates/bench/src/bin/tiering.rs

/root/repo/target/debug/deps/tiering-6c9d3323ebcd900c: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
