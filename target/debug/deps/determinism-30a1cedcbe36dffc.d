/root/repo/target/debug/deps/determinism-30a1cedcbe36dffc.d: crates/bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-30a1cedcbe36dffc.rmeta: crates/bench/tests/determinism.rs Cargo.toml

crates/bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
