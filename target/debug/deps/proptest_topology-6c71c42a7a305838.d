/root/repo/target/debug/deps/proptest_topology-6c71c42a7a305838.d: crates/topology/tests/proptest_topology.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_topology-6c71c42a7a305838.rmeta: crates/topology/tests/proptest_topology.rs Cargo.toml

crates/topology/tests/proptest_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
