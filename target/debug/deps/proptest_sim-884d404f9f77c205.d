/root/repo/target/debug/deps/proptest_sim-884d404f9f77c205.d: crates/sim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-884d404f9f77c205: crates/sim/tests/proptest_sim.rs

crates/sim/tests/proptest_sim.rs:
