/root/repo/target/debug/deps/proptest_tier-ad4c69842c275a34.d: crates/tier/tests/proptest_tier.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_tier-ad4c69842c275a34.rmeta: crates/tier/tests/proptest_tier.rs Cargo.toml

crates/tier/tests/proptest_tier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
