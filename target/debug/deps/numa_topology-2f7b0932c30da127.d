/root/repo/target/debug/deps/numa_topology-2f7b0932c30da127.d: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

/root/repo/target/debug/deps/libnuma_topology-2f7b0932c30da127.rlib: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

/root/repo/target/debug/deps/libnuma_topology-2f7b0932c30da127.rmeta: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

crates/topology/src/lib.rs:
crates/topology/src/cost.rs:
crates/topology/src/presets.rs:
crates/topology/src/spec.rs:
crates/topology/src/topology.rs:
