/root/repo/target/debug/deps/next_touch-e9917c43e30dfadd.d: crates/bench/benches/next_touch.rs Cargo.toml

/root/repo/target/debug/deps/libnext_touch-e9917c43e30dfadd.rmeta: crates/bench/benches/next_touch.rs Cargo.toml

crates/bench/benches/next_touch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
