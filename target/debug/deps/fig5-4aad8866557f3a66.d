/root/repo/target/debug/deps/fig5-4aad8866557f3a66.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-4aad8866557f3a66.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
