/root/repo/target/debug/deps/ablations-45bc301c0091c16d.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-45bc301c0091c16d.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
