/root/repo/target/debug/deps/determinism-e5b55bf2276ad0af.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-e5b55bf2276ad0af: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
