/root/repo/target/debug/deps/numa_sim-b5a14a0c8e7cbb04.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_sim-b5a14a0c8e7cbb04.rmeta: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
