/root/repo/target/debug/deps/numa_bench-0ce148db16e2f8af.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_bench-0ce148db16e2f8af.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
