/root/repo/target/debug/deps/fig6-2a930811b5f2ad57.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2a930811b5f2ad57: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
