/root/repo/target/debug/deps/fig7-944b2787cf0ba9bf.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-944b2787cf0ba9bf: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
