/root/repo/target/debug/deps/proptest_sim-f128fca0d1451a4b.d: crates/sim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-f128fca0d1451a4b: crates/sim/tests/proptest_sim.rs

crates/sim/tests/proptest_sim.rs:
