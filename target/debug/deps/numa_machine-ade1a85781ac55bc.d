/root/repo/target/debug/deps/numa_machine-ade1a85781ac55bc.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/numa_machine-ade1a85781ac55bc: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
