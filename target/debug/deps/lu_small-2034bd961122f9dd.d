/root/repo/target/debug/deps/lu_small-2034bd961122f9dd.d: crates/bench/benches/lu_small.rs Cargo.toml

/root/repo/target/debug/deps/liblu_small-2034bd961122f9dd.rmeta: crates/bench/benches/lu_small.rs Cargo.toml

crates/bench/benches/lu_small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
