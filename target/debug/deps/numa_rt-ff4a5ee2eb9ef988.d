/root/repo/target/debug/deps/numa_rt-ff4a5ee2eb9ef988.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/debug/deps/numa_rt-ff4a5ee2eb9ef988: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
