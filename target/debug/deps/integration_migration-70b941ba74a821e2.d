/root/repo/target/debug/deps/integration_migration-70b941ba74a821e2.d: crates/core/../../tests/integration_migration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_migration-70b941ba74a821e2.rmeta: crates/core/../../tests/integration_migration.rs Cargo.toml

crates/core/../../tests/integration_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
