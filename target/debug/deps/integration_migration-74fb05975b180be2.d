/root/repo/target/debug/deps/integration_migration-74fb05975b180be2.d: crates/core/../../tests/integration_migration.rs

/root/repo/target/debug/deps/integration_migration-74fb05975b180be2: crates/core/../../tests/integration_migration.rs

crates/core/../../tests/integration_migration.rs:
