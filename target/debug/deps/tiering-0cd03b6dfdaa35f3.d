/root/repo/target/debug/deps/tiering-0cd03b6dfdaa35f3.d: crates/bench/src/bin/tiering.rs

/root/repo/target/debug/deps/tiering-0cd03b6dfdaa35f3: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
