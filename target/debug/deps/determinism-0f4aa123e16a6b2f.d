/root/repo/target/debug/deps/determinism-0f4aa123e16a6b2f.d: crates/bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-0f4aa123e16a6b2f.rmeta: crates/bench/tests/determinism.rs Cargo.toml

crates/bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
