/root/repo/target/debug/deps/table1-74df1f6bd8d13648.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-74df1f6bd8d13648: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
