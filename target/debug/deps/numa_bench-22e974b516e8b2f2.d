/root/repo/target/debug/deps/numa_bench-22e974b516e8b2f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnuma_bench-22e974b516e8b2f2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnuma_bench-22e974b516e8b2f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
