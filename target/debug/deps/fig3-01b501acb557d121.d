/root/repo/target/debug/deps/fig3-01b501acb557d121.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-01b501acb557d121: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
