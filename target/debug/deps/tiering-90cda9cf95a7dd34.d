/root/repo/target/debug/deps/tiering-90cda9cf95a7dd34.d: crates/bench/src/bin/tiering.rs Cargo.toml

/root/repo/target/debug/deps/libtiering-90cda9cf95a7dd34.rmeta: crates/bench/src/bin/tiering.rs Cargo.toml

crates/bench/src/bin/tiering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
