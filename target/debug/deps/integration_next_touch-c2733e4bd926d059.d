/root/repo/target/debug/deps/integration_next_touch-c2733e4bd926d059.d: crates/core/../../tests/integration_next_touch.rs

/root/repo/target/debug/deps/integration_next_touch-c2733e4bd926d059: crates/core/../../tests/integration_next_touch.rs

crates/core/../../tests/integration_next_touch.rs:
