/root/repo/target/debug/deps/fig7-1269d9af2241d36f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-1269d9af2241d36f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
