/root/repo/target/debug/deps/proptest_tier-e1f91003044e1567.d: crates/tier/tests/proptest_tier.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_tier-e1f91003044e1567.rmeta: crates/tier/tests/proptest_tier.rs Cargo.toml

crates/tier/tests/proptest_tier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
