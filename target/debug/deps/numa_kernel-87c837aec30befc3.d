/root/repo/target/debug/deps/numa_kernel-87c837aec30befc3.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/debug/deps/libnuma_kernel-87c837aec30befc3.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/debug/deps/libnuma_kernel-87c837aec30befc3.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/interconnect.rs:
crates/kernel/src/locks.rs:
crates/kernel/src/syscalls.rs:
crates/kernel/src/tier.rs:
