/root/repo/target/debug/deps/fig3-c54d55f0faeeed21.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-c54d55f0faeeed21: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
