/root/repo/target/debug/deps/proptest_rt-e2653a1246463284.d: crates/rt/tests/proptest_rt.rs

/root/repo/target/debug/deps/proptest_rt-e2653a1246463284: crates/rt/tests/proptest_rt.rs

crates/rt/tests/proptest_rt.rs:
