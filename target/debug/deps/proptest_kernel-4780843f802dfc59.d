/root/repo/target/debug/deps/proptest_kernel-4780843f802dfc59.d: crates/kernel/tests/proptest_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_kernel-4780843f802dfc59.rmeta: crates/kernel/tests/proptest_kernel.rs Cargo.toml

crates/kernel/tests/proptest_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
