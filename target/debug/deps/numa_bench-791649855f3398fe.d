/root/repo/target/debug/deps/numa_bench-791649855f3398fe.d: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

/root/repo/target/debug/deps/numa_bench-791649855f3398fe: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

crates/bench/src/lib.rs:
crates/bench/src/output.rs:
crates/bench/src/trace_run.rs:
