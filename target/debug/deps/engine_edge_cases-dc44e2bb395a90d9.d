/root/repo/target/debug/deps/engine_edge_cases-dc44e2bb395a90d9.d: crates/machine/tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-dc44e2bb395a90d9: crates/machine/tests/engine_edge_cases.rs

crates/machine/tests/engine_edge_cases.rs:
