/root/repo/target/debug/deps/proptest_stats-b84efe1eafa4494d.d: crates/stats/tests/proptest_stats.rs

/root/repo/target/debug/deps/proptest_stats-b84efe1eafa4494d: crates/stats/tests/proptest_stats.rs

crates/stats/tests/proptest_stats.rs:
