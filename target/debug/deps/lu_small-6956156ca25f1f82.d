/root/repo/target/debug/deps/lu_small-6956156ca25f1f82.d: crates/bench/benches/lu_small.rs Cargo.toml

/root/repo/target/debug/deps/liblu_small-6956156ca25f1f82.rmeta: crates/bench/benches/lu_small.rs Cargo.toml

crates/bench/benches/lu_small.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
