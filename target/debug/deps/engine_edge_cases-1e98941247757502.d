/root/repo/target/debug/deps/engine_edge_cases-1e98941247757502.d: crates/machine/tests/engine_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libengine_edge_cases-1e98941247757502.rmeta: crates/machine/tests/engine_edge_cases.rs Cargo.toml

crates/machine/tests/engine_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
