/root/repo/target/debug/deps/integration_next_touch-f8c77844b5295db3.d: crates/core/../../tests/integration_next_touch.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_next_touch-f8c77844b5295db3.rmeta: crates/core/../../tests/integration_next_touch.rs Cargo.toml

crates/core/../../tests/integration_next_touch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
