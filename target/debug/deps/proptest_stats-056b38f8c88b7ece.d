/root/repo/target/debug/deps/proptest_stats-056b38f8c88b7ece.d: crates/stats/tests/proptest_stats.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_stats-056b38f8c88b7ece.rmeta: crates/stats/tests/proptest_stats.rs Cargo.toml

crates/stats/tests/proptest_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
