/root/repo/target/debug/deps/proptest_kernel-6ed3f7975ef06016.d: crates/kernel/tests/proptest_kernel.rs

/root/repo/target/debug/deps/proptest_kernel-6ed3f7975ef06016: crates/kernel/tests/proptest_kernel.rs

crates/kernel/tests/proptest_kernel.rs:
