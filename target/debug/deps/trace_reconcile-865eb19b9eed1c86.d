/root/repo/target/debug/deps/trace_reconcile-865eb19b9eed1c86.d: crates/bench/tests/trace_reconcile.rs

/root/repo/target/debug/deps/trace_reconcile-865eb19b9eed1c86: crates/bench/tests/trace_reconcile.rs

crates/bench/tests/trace_reconcile.rs:
