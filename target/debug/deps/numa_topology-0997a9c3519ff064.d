/root/repo/target/debug/deps/numa_topology-0997a9c3519ff064.d: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

/root/repo/target/debug/deps/numa_topology-0997a9c3519ff064: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

crates/topology/src/lib.rs:
crates/topology/src/cost.rs:
crates/topology/src/presets.rs:
crates/topology/src/spec.rs:
crates/topology/src/topology.rs:
