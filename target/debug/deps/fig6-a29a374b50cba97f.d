/root/repo/target/debug/deps/fig6-a29a374b50cba97f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a29a374b50cba97f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
