/root/repo/target/debug/deps/fig7-9522f42d410eae37.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-9522f42d410eae37: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
