/root/repo/target/debug/deps/fig7-7866db44a6be5aaf.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-7866db44a6be5aaf.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
