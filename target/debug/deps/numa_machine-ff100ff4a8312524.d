/root/repo/target/debug/deps/numa_machine-ff100ff4a8312524.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/libnuma_machine-ff100ff4a8312524.rlib: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/libnuma_machine-ff100ff4a8312524.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
