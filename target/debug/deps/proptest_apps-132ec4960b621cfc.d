/root/repo/target/debug/deps/proptest_apps-132ec4960b621cfc.d: crates/apps/tests/proptest_apps.rs

/root/repo/target/debug/deps/proptest_apps-132ec4960b621cfc: crates/apps/tests/proptest_apps.rs

crates/apps/tests/proptest_apps.rs:
