/root/repo/target/debug/deps/fig5-baec6a1d0ea799e3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-baec6a1d0ea799e3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
