/root/repo/target/debug/deps/scaling8-9a57b5847636260b.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/debug/deps/scaling8-9a57b5847636260b: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
