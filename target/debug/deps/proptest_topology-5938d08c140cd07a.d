/root/repo/target/debug/deps/proptest_topology-5938d08c140cd07a.d: crates/topology/tests/proptest_topology.rs

/root/repo/target/debug/deps/proptest_topology-5938d08c140cd07a: crates/topology/tests/proptest_topology.rs

crates/topology/tests/proptest_topology.rs:
