/root/repo/target/debug/deps/numa_machine-f6567565208f0891.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/debug/deps/numa_machine-f6567565208f0891: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
