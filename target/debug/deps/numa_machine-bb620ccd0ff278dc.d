/root/repo/target/debug/deps/numa_machine-bb620ccd0ff278dc.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_machine-bb620ccd0ff278dc.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
