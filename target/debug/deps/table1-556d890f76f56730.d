/root/repo/target/debug/deps/table1-556d890f76f56730.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-556d890f76f56730: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
