/root/repo/target/debug/deps/fig8-e831d2a0974060bc.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-e831d2a0974060bc: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
