/root/repo/target/debug/deps/numa_rt-c07d5f91d79711d6.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/debug/deps/libnuma_rt-c07d5f91d79711d6.rlib: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/debug/deps/libnuma_rt-c07d5f91d79711d6.rmeta: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
