/root/repo/target/debug/deps/sync_migration-9465b3727aa8a2d8.d: crates/bench/benches/sync_migration.rs Cargo.toml

/root/repo/target/debug/deps/libsync_migration-9465b3727aa8a2d8.rmeta: crates/bench/benches/sync_migration.rs Cargo.toml

crates/bench/benches/sync_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
