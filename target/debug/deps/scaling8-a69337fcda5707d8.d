/root/repo/target/debug/deps/scaling8-a69337fcda5707d8.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/debug/deps/scaling8-a69337fcda5707d8: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
