/root/repo/target/debug/deps/numa_rt-41c3e57fbe8d3e82.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_rt-41c3e57fbe8d3e82.rmeta: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
