/root/repo/target/debug/deps/proptest_machine-cf753de92c9ce918.d: crates/machine/tests/proptest_machine.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_machine-cf753de92c9ce918.rmeta: crates/machine/tests/proptest_machine.rs Cargo.toml

crates/machine/tests/proptest_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
