/root/repo/target/debug/deps/proptest_tier-dd59bb03b5945d27.d: crates/tier/tests/proptest_tier.rs

/root/repo/target/debug/deps/proptest_tier-dd59bb03b5945d27: crates/tier/tests/proptest_tier.rs

crates/tier/tests/proptest_tier.rs:
