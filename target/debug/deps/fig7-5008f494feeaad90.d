/root/repo/target/debug/deps/fig7-5008f494feeaad90.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-5008f494feeaad90: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
