/root/repo/target/debug/deps/integration_migration-aac1e26be9659441.d: crates/core/../../tests/integration_migration.rs

/root/repo/target/debug/deps/integration_migration-aac1e26be9659441: crates/core/../../tests/integration_migration.rs

crates/core/../../tests/integration_migration.rs:
