/root/repo/target/debug/deps/engine_edge_cases-54cc7e5cb827bad6.d: crates/machine/tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-54cc7e5cb827bad6: crates/machine/tests/engine_edge_cases.rs

crates/machine/tests/engine_edge_cases.rs:
