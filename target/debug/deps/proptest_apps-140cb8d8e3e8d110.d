/root/repo/target/debug/deps/proptest_apps-140cb8d8e3e8d110.d: crates/apps/tests/proptest_apps.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_apps-140cb8d8e3e8d110.rmeta: crates/apps/tests/proptest_apps.rs Cargo.toml

crates/apps/tests/proptest_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
