/root/repo/target/debug/deps/numa_kernel-b4e838bf3a9d5319.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/extensions_tests.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/debug/deps/numa_kernel-b4e838bf3a9d5319: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/extensions_tests.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/extensions_tests.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/interconnect.rs:
crates/kernel/src/locks.rs:
crates/kernel/src/syscalls.rs:
crates/kernel/src/tier.rs:
