/root/repo/target/debug/deps/integration_next_touch-7759a13aa8c70075.d: crates/core/../../tests/integration_next_touch.rs

/root/repo/target/debug/deps/integration_next_touch-7759a13aa8c70075: crates/core/../../tests/integration_next_touch.rs

crates/core/../../tests/integration_next_touch.rs:
