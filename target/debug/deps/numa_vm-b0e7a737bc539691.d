/root/repo/target/debug/deps/numa_vm-b0e7a737bc539691.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_vm-b0e7a737bc539691.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/policy.rs:
crates/vm/src/pte.rs:
crates/vm/src/space.rs:
crates/vm/src/tlb.rs:
crates/vm/src/vma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
