/root/repo/target/debug/deps/fig7-b984d4b13068d33f.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-b984d4b13068d33f.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
