/root/repo/target/debug/deps/integration_apps-065a0e20fbb78183.d: crates/core/../../tests/integration_apps.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_apps-065a0e20fbb78183.rmeta: crates/core/../../tests/integration_apps.rs Cargo.toml

crates/core/../../tests/integration_apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
