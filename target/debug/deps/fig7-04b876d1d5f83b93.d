/root/repo/target/debug/deps/fig7-04b876d1d5f83b93.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-04b876d1d5f83b93: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
