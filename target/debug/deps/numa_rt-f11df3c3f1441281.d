/root/repo/target/debug/deps/numa_rt-f11df3c3f1441281.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_rt-f11df3c3f1441281.rmeta: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs Cargo.toml

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
