/root/repo/target/debug/deps/integration_experiments-54321f6c6d9a2906.d: crates/core/../../tests/integration_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_experiments-54321f6c6d9a2906.rmeta: crates/core/../../tests/integration_experiments.rs Cargo.toml

crates/core/../../tests/integration_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
