/root/repo/target/debug/deps/blas1_check-80acb6fccc966a03.d: crates/bench/src/bin/blas1_check.rs Cargo.toml

/root/repo/target/debug/deps/libblas1_check-80acb6fccc966a03.rmeta: crates/bench/src/bin/blas1_check.rs Cargo.toml

crates/bench/src/bin/blas1_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
