/root/repo/target/debug/deps/table1-3931f941b2e41873.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-3931f941b2e41873.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::inherent_to_string__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
