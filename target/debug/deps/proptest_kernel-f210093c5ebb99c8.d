/root/repo/target/debug/deps/proptest_kernel-f210093c5ebb99c8.d: crates/kernel/tests/proptest_kernel.rs

/root/repo/target/debug/deps/proptest_kernel-f210093c5ebb99c8: crates/kernel/tests/proptest_kernel.rs

crates/kernel/tests/proptest_kernel.rs:
