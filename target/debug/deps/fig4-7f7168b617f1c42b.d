/root/repo/target/debug/deps/fig4-7f7168b617f1c42b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-7f7168b617f1c42b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
