/root/repo/target/debug/deps/serde-0161c5c473fe0310.d: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0161c5c473fe0310.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0161c5c473fe0310.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
