/root/repo/target/debug/deps/ablations-94b29e1cb025df0c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-94b29e1cb025df0c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
