/root/repo/target/debug/deps/numa_stats-2881d398fead4460.d: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libnuma_stats-2881d398fead4460.rlib: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libnuma_stats-2881d398fead4460.rmeta: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/breakdown.rs:
crates/stats/src/counters.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/table.rs:
