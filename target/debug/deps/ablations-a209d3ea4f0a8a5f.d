/root/repo/target/debug/deps/ablations-a209d3ea4f0a8a5f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a209d3ea4f0a8a5f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
