/root/repo/target/debug/deps/fig8-092b2bc0e4a7416c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-092b2bc0e4a7416c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
