/root/repo/target/debug/deps/fig5-c4c7d588bd438cbc.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-c4c7d588bd438cbc: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
