/root/repo/target/release/deps/numa_bench-5530583a07a61517.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnuma_bench-5530583a07a61517.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnuma_bench-5530583a07a61517.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
