/root/repo/target/release/deps/scaling8-e1ec62346a5a1503.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/release/deps/scaling8-e1ec62346a5a1503: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
