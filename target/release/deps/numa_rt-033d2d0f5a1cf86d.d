/root/repo/target/release/deps/numa_rt-033d2d0f5a1cf86d.d: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/release/deps/libnuma_rt-033d2d0f5a1cf86d.rlib: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

/root/repo/target/release/deps/libnuma_rt-033d2d0f5a1cf86d.rmeta: crates/rt/src/lib.rs crates/rt/src/autobalance.rs crates/rt/src/buffer.rs crates/rt/src/lazy.rs crates/rt/src/next_touch.rs crates/rt/src/omp.rs crates/rt/src/setup.rs

crates/rt/src/lib.rs:
crates/rt/src/autobalance.rs:
crates/rt/src/buffer.rs:
crates/rt/src/lazy.rs:
crates/rt/src/next_touch.rs:
crates/rt/src/omp.rs:
crates/rt/src/setup.rs:
