/root/repo/target/release/deps/numa_migrate-91b2aa4b69713d62.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/blas1.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tiering.rs crates/core/src/prelude.rs crates/core/src/system.rs

/root/repo/target/release/deps/libnuma_migrate-91b2aa4b69713d62.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/blas1.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tiering.rs crates/core/src/prelude.rs crates/core/src/system.rs

/root/repo/target/release/deps/libnuma_migrate-91b2aa4b69713d62.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/blas1.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tiering.rs crates/core/src/prelude.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/blas1.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/tiering.rs:
crates/core/src/prelude.rs:
crates/core/src/system.rs:
