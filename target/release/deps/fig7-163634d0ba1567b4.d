/root/repo/target/release/deps/fig7-163634d0ba1567b4.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-163634d0ba1567b4: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
