/root/repo/target/release/deps/numa_topology-4c1663732c3d8253.d: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

/root/repo/target/release/deps/libnuma_topology-4c1663732c3d8253.rlib: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

/root/repo/target/release/deps/libnuma_topology-4c1663732c3d8253.rmeta: crates/topology/src/lib.rs crates/topology/src/cost.rs crates/topology/src/presets.rs crates/topology/src/spec.rs crates/topology/src/topology.rs

crates/topology/src/lib.rs:
crates/topology/src/cost.rs:
crates/topology/src/presets.rs:
crates/topology/src/spec.rs:
crates/topology/src/topology.rs:
