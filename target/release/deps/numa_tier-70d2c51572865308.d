/root/repo/target/release/deps/numa_tier-70d2c51572865308.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/release/deps/libnuma_tier-70d2c51572865308.rlib: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/release/deps/libnuma_tier-70d2c51572865308.rmeta: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
