/root/repo/target/release/deps/ablations-d4ecd901ca352cd7.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-d4ecd901ca352cd7: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
