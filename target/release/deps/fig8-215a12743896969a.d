/root/repo/target/release/deps/fig8-215a12743896969a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-215a12743896969a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
