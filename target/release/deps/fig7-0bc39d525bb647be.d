/root/repo/target/release/deps/fig7-0bc39d525bb647be.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-0bc39d525bb647be: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
