/root/repo/target/release/deps/fig3-f36a35fc6c8280d4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-f36a35fc6c8280d4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
