/root/repo/target/release/deps/numa_bench-34b6cdee8f763ab6.d: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

/root/repo/target/release/deps/libnuma_bench-34b6cdee8f763ab6.rlib: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

/root/repo/target/release/deps/libnuma_bench-34b6cdee8f763ab6.rmeta: crates/bench/src/lib.rs crates/bench/src/output.rs crates/bench/src/trace_run.rs

crates/bench/src/lib.rs:
crates/bench/src/output.rs:
crates/bench/src/trace_run.rs:
