/root/repo/target/release/deps/fig5-f23931d0e4328af8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f23931d0e4328af8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
