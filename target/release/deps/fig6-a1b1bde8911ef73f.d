/root/repo/target/release/deps/fig6-a1b1bde8911ef73f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-a1b1bde8911ef73f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
