/root/repo/target/release/deps/fig3-e49230c3a170f285.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-e49230c3a170f285: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
