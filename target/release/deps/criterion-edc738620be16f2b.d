/root/repo/target/release/deps/criterion-edc738620be16f2b.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-edc738620be16f2b.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-edc738620be16f2b.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
