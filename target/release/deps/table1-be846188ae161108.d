/root/repo/target/release/deps/table1-be846188ae161108.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-be846188ae161108: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
