/root/repo/target/release/deps/blas1_check-629d77eb58a3b4ce.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/release/deps/blas1_check-629d77eb58a3b4ce: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
