/root/repo/target/release/deps/fig8-5394d8e6a21124af.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-5394d8e6a21124af: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
