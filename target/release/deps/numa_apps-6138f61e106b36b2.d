/root/repo/target/release/deps/numa_apps-6138f61e106b36b2.d: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/release/deps/libnuma_apps-6138f61e106b36b2.rlib: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/release/deps/libnuma_apps-6138f61e106b36b2.rmeta: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

crates/apps/src/lib.rs:
crates/apps/src/amr.rs:
crates/apps/src/blas.rs:
crates/apps/src/blas1.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lu.rs:
crates/apps/src/matrix.rs:
crates/apps/src/model.rs:
crates/apps/src/pde.rs:
