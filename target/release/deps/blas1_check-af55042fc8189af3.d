/root/repo/target/release/deps/blas1_check-af55042fc8189af3.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/release/deps/blas1_check-af55042fc8189af3: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
