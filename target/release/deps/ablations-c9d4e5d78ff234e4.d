/root/repo/target/release/deps/ablations-c9d4e5d78ff234e4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-c9d4e5d78ff234e4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
