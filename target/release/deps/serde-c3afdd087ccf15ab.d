/root/repo/target/release/deps/serde-c3afdd087ccf15ab.d: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c3afdd087ccf15ab.rlib: crates/compat/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c3afdd087ccf15ab.rmeta: crates/compat/serde/src/lib.rs

crates/compat/serde/src/lib.rs:
