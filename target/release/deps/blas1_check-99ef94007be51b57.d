/root/repo/target/release/deps/blas1_check-99ef94007be51b57.d: crates/bench/src/bin/blas1_check.rs

/root/repo/target/release/deps/blas1_check-99ef94007be51b57: crates/bench/src/bin/blas1_check.rs

crates/bench/src/bin/blas1_check.rs:
