/root/repo/target/release/deps/tiering-53b93d69eff7d223.d: crates/bench/src/bin/tiering.rs

/root/repo/target/release/deps/tiering-53b93d69eff7d223: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
