/root/repo/target/release/deps/numa_stats-69589d719f02c863.d: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libnuma_stats-69589d719f02c863.rlib: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libnuma_stats-69589d719f02c863.rmeta: crates/stats/src/lib.rs crates/stats/src/breakdown.rs crates/stats/src/counters.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/breakdown.rs:
crates/stats/src/counters.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/table.rs:
