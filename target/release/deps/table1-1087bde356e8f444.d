/root/repo/target/release/deps/table1-1087bde356e8f444.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1087bde356e8f444: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
