/root/repo/target/release/deps/numa_sim-9a6d8054c8e76e88.d: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libnuma_sim-9a6d8054c8e76e88.rlib: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libnuma_sim-9a6d8054c8e76e88.rmeta: crates/sim/src/lib.rs crates/sim/src/barrier.rs crates/sim/src/queue.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/barrier.rs:
crates/sim/src/queue.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
