/root/repo/target/release/deps/ablations-3711a9a93792eb00.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-3711a9a93792eb00: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
