/root/repo/target/release/deps/scaling8-9567d6e9d48f3235.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/release/deps/scaling8-9567d6e9d48f3235: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
