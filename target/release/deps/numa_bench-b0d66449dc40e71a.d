/root/repo/target/release/deps/numa_bench-b0d66449dc40e71a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnuma_bench-b0d66449dc40e71a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnuma_bench-b0d66449dc40e71a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
