/root/repo/target/release/deps/fig4-60a642edb5119048.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-60a642edb5119048: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
