/root/repo/target/release/deps/serde_derive-b0ebe45faadf2a0a.d: crates/compat/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b0ebe45faadf2a0a.so: crates/compat/serde_derive/src/lib.rs

crates/compat/serde_derive/src/lib.rs:
