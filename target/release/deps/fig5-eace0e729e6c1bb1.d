/root/repo/target/release/deps/fig5-eace0e729e6c1bb1.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-eace0e729e6c1bb1: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
