/root/repo/target/release/deps/fig8-64cd4f4ae25cf778.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-64cd4f4ae25cf778: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
