/root/repo/target/release/deps/numa_apps-7206376200c39b65.d: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/release/deps/libnuma_apps-7206376200c39b65.rlib: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

/root/repo/target/release/deps/libnuma_apps-7206376200c39b65.rmeta: crates/apps/src/lib.rs crates/apps/src/amr.rs crates/apps/src/blas.rs crates/apps/src/blas1.rs crates/apps/src/gemm.rs crates/apps/src/lu.rs crates/apps/src/matrix.rs crates/apps/src/model.rs crates/apps/src/pde.rs

crates/apps/src/lib.rs:
crates/apps/src/amr.rs:
crates/apps/src/blas.rs:
crates/apps/src/blas1.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lu.rs:
crates/apps/src/matrix.rs:
crates/apps/src/model.rs:
crates/apps/src/pde.rs:
