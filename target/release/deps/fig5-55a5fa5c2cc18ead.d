/root/repo/target/release/deps/fig5-55a5fa5c2cc18ead.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-55a5fa5c2cc18ead: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
