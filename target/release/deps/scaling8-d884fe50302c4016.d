/root/repo/target/release/deps/scaling8-d884fe50302c4016.d: crates/bench/src/bin/scaling8.rs

/root/repo/target/release/deps/scaling8-d884fe50302c4016: crates/bench/src/bin/scaling8.rs

crates/bench/src/bin/scaling8.rs:
