/root/repo/target/release/deps/fig7-2635d99e3e01c510.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-2635d99e3e01c510: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
