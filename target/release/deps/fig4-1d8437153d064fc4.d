/root/repo/target/release/deps/fig4-1d8437153d064fc4.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1d8437153d064fc4: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
