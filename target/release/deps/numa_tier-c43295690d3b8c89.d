/root/repo/target/release/deps/numa_tier-c43295690d3b8c89.d: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/release/deps/libnuma_tier-c43295690d3b8c89.rlib: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

/root/repo/target/release/deps/libnuma_tier-c43295690d3b8c89.rmeta: crates/tier/src/lib.rs crates/tier/src/daemon.rs crates/tier/src/policy.rs

crates/tier/src/lib.rs:
crates/tier/src/daemon.rs:
crates/tier/src/policy.rs:
