/root/repo/target/release/deps/proptest-42f6cee7849ee3f7.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-42f6cee7849ee3f7.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-42f6cee7849ee3f7.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
