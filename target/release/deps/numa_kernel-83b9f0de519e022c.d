/root/repo/target/release/deps/numa_kernel-83b9f0de519e022c.d: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/release/deps/libnuma_kernel-83b9f0de519e022c.rlib: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

/root/repo/target/release/deps/libnuma_kernel-83b9f0de519e022c.rmeta: crates/kernel/src/lib.rs crates/kernel/src/config.rs crates/kernel/src/fault.rs crates/kernel/src/interconnect.rs crates/kernel/src/locks.rs crates/kernel/src/syscalls.rs crates/kernel/src/tier.rs

crates/kernel/src/lib.rs:
crates/kernel/src/config.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/interconnect.rs:
crates/kernel/src/locks.rs:
crates/kernel/src/syscalls.rs:
crates/kernel/src/tier.rs:
