/root/repo/target/release/deps/fig6-fad9018031103be9.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-fad9018031103be9: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
