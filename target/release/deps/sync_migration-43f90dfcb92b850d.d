/root/repo/target/release/deps/sync_migration-43f90dfcb92b850d.d: crates/bench/benches/sync_migration.rs

/root/repo/target/release/deps/sync_migration-43f90dfcb92b850d: crates/bench/benches/sync_migration.rs

crates/bench/benches/sync_migration.rs:
