/root/repo/target/release/deps/table1-1d5e2fff80f066cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-1d5e2fff80f066cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
