/root/repo/target/release/deps/numa_vm-d29a2c64a5ed57db.d: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

/root/repo/target/release/deps/libnuma_vm-d29a2c64a5ed57db.rlib: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

/root/repo/target/release/deps/libnuma_vm-d29a2c64a5ed57db.rmeta: crates/vm/src/lib.rs crates/vm/src/addr.rs crates/vm/src/frame.rs crates/vm/src/page_table.rs crates/vm/src/policy.rs crates/vm/src/pte.rs crates/vm/src/space.rs crates/vm/src/tlb.rs crates/vm/src/vma.rs

crates/vm/src/lib.rs:
crates/vm/src/addr.rs:
crates/vm/src/frame.rs:
crates/vm/src/page_table.rs:
crates/vm/src/policy.rs:
crates/vm/src/pte.rs:
crates/vm/src/space.rs:
crates/vm/src/tlb.rs:
crates/vm/src/vma.rs:
