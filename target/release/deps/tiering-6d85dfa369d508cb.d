/root/repo/target/release/deps/tiering-6d85dfa369d508cb.d: crates/bench/src/bin/tiering.rs

/root/repo/target/release/deps/tiering-6d85dfa369d508cb: crates/bench/src/bin/tiering.rs

crates/bench/src/bin/tiering.rs:
