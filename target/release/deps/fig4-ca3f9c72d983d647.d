/root/repo/target/release/deps/fig4-ca3f9c72d983d647.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-ca3f9c72d983d647: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
