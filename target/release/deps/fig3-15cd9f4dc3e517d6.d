/root/repo/target/release/deps/fig3-15cd9f4dc3e517d6.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-15cd9f4dc3e517d6: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
