/root/repo/target/release/deps/numa_machine-b276cc7433784984.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/release/deps/libnuma_machine-b276cc7433784984.rlib: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/release/deps/libnuma_machine-b276cc7433784984.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
