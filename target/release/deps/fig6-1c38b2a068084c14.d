/root/repo/target/release/deps/fig6-1c38b2a068084c14.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1c38b2a068084c14: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
