/root/repo/target/release/deps/numa_machine-30d24b3e2e161339.d: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/release/deps/libnuma_machine-30d24b3e2e161339.rlib: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

/root/repo/target/release/deps/libnuma_machine-30d24b3e2e161339.rmeta: crates/machine/src/lib.rs crates/machine/src/access.rs crates/machine/src/cache.rs crates/machine/src/engine.rs crates/machine/src/op.rs

crates/machine/src/lib.rs:
crates/machine/src/access.rs:
crates/machine/src/cache.rs:
crates/machine/src/engine.rs:
crates/machine/src/op.rs:
