/root/repo/target/release/examples/quickstart-ee20f0e7c7496f2a.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ee20f0e7c7496f2a: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
