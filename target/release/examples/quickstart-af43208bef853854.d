/root/repo/target/release/examples/quickstart-af43208bef853854.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-af43208bef853854: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
