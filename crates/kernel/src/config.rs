//! Kernel feature switches.

use crate::pressure::PressureSettings;
use serde::{Deserialize, Serialize};

/// Which kernel variant is running.
///
/// The defaults match the paper's experimental kernel: Linux 2.6.27 **with**
/// the `move_pages` complexity fix and **with** the next-touch fault path
/// (§4.1). Experiments flip individual switches: Figure 4's
/// "move pages (no patch)" curve runs with `patched_move_pages = false`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// `true`: the paper's linear destination-node lookup (merged in
    /// 2.6.29). `false`: the historical quadratic implementation (§3.1).
    pub patched_move_pages: bool,
    /// Whether `madvise(MADV_MIGRATE_NEXT_TOUCH)` and the fault-path
    /// migration are available (§3.3).
    pub kernel_next_touch: bool,
    /// Extension (paper §6 future work): allow next-touch on shared
    /// mappings and file mappings, not only private anonymous memory.
    pub next_touch_shared: bool,
    /// Extension (paper §6 future work): huge-page (2 MB) migration.
    pub huge_page_migration: bool,
    /// Extension (paper §6 future work): replication of read-only pages
    /// across nodes.
    pub replication: bool,
    /// Memory-tiering support: transactional (non-exclusive copy)
    /// promotion/demotion between DRAM and slow-tier nodes, plus the
    /// stop-the-world fallback path. Off by default — the paper's machine
    /// has a single tier.
    pub tiering: bool,
    /// Memory-pressure resilience: watermark-driven reclaim, OOM-kill
    /// semantics and the retry-livelock watchdog. All off by default —
    /// the paper's experiments never run out of frames.
    pub pressure: PressureSettings,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            patched_move_pages: true,
            kernel_next_touch: true,
            next_touch_shared: false,
            huge_page_migration: false,
            replication: false,
            tiering: false,
            pressure: PressureSettings::default(),
        }
    }
}

impl KernelConfig {
    /// The stock 2.6.27 kernel before the paper's work: quadratic
    /// `move_pages`, no next-touch.
    pub fn vanilla_2_6_27() -> Self {
        KernelConfig {
            patched_move_pages: false,
            kernel_next_touch: false,
            ..KernelConfig::default()
        }
    }

    /// The paper's kernel with every §6 extension also enabled.
    pub fn all_extensions() -> Self {
        KernelConfig {
            patched_move_pages: true,
            kernel_next_touch: true,
            next_touch_shared: true,
            huge_page_migration: true,
            replication: true,
            tiering: true,
            ..KernelConfig::default()
        }
    }

    /// The paper's kernel plus the tiering subsystem (for heterogeneous
    /// machines like `presets::tiered_4p2`).
    pub fn tiered() -> Self {
        KernelConfig {
            tiering: true,
            ..KernelConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_kernel() {
        let c = KernelConfig::default();
        assert!(c.patched_move_pages);
        assert!(c.kernel_next_touch);
        assert!(!c.huge_page_migration);
    }

    #[test]
    fn vanilla_has_neither_feature() {
        let c = KernelConfig::vanilla_2_6_27();
        assert!(!c.patched_move_pages);
        assert!(!c.kernel_next_touch);
    }

    #[test]
    fn all_extensions_enables_everything() {
        let c = KernelConfig::all_extensions();
        assert!(c.next_touch_shared && c.huge_page_migration && c.replication);
        assert!(c.tiering);
    }

    #[test]
    fn pressure_defaults_off_in_every_preset() {
        for c in [
            KernelConfig::default(),
            KernelConfig::vanilla_2_6_27(),
            KernelConfig::all_extensions(),
            KernelConfig::tiered(),
        ] {
            assert_eq!(c.pressure, PressureSettings::default());
        }
    }

    #[test]
    fn tiered_adds_only_tiering() {
        let c = KernelConfig::tiered();
        assert!(c.tiering);
        assert!(!KernelConfig::default().tiering);
        assert_eq!(
            KernelConfig {
                tiering: false,
                ..c
            },
            KernelConfig::default()
        );
    }
}
