//! The simulated Linux NUMA kernel layer.
//!
//! Implements, over the `numa-vm` structures and with virtual-time cost
//! charging, the mechanisms the paper studies:
//!
//! * [`Kernel::move_pages`] — per-page migration syscall, in **both** the
//!   historical quadratic implementation and the paper's linear fix (§3.1);
//! * [`Kernel::migrate_pages`] — whole-process migration (§2.3);
//! * [`Kernel::madvise_next_touch`] — the new migrate-on-next-touch marking
//!   (§3.3, Figure 2);
//! * [`Kernel::mprotect`] — protection changes incl. the `PROT_NONE` trick
//!   the user-space next-touch library uses (§3.2, Figure 1);
//! * [`Kernel::handle_fault`] — the page-fault handler: first-touch
//!   placement, kernel next-touch migration, and SIGSEGV delivery;
//! * [`Kernel::mbind`] / [`Kernel::set_mempolicy`] — placement policies;
//! * extensions the paper lists as future work (§6): huge-page migration
//!   and read-only page replication.
//!
//! Costs come from [`numa_topology::CostModel`]; contention comes from
//! [`locks::LockSet`] (mmap / page-table locks) and [`Interconnect`]
//! (HyperTransport links and per-node memory controllers), so the
//! multi-threaded scalability limits of the paper's Figure 7 *emerge* from
//! the same serialization the real kernel suffers.

pub mod config;
#[cfg(test)]
mod extensions_tests;
pub mod fault;
pub mod interconnect;
pub mod locks;
pub mod pressure;
pub mod syscalls;
pub mod tier;

pub use config::KernelConfig;
pub use fault::{AccessKind, FaultResolution};
pub use interconnect::Interconnect;
pub use locks::LockSet;
pub use pressure::{PressureSettings, WatchdogConfig};
pub use syscalls::{MovePagesResult, PageStatus, SyscallOutcome};
pub use tier::{TierTxn, TxnOutcome};

use numa_sim::FxHashMap;
use numa_stats::Counters;
use numa_topology::{NodeId, Topology};
use numa_vm::{FrameAllocator, FrameId};
use std::sync::Arc;

/// The simulated kernel: configuration, lock set, interconnect model and
/// event counters. All syscall and fault entry points live in the
/// [`syscalls`] and [`fault`] modules.
#[derive(Debug)]
pub struct Kernel {
    /// Feature switches (patched vs quadratic `move_pages`, extensions).
    pub config: KernelConfig,
    /// Kernel locks (mmap lock, page-table lock).
    pub locks: LockSet,
    /// Links and memory controllers.
    pub interconnect: Interconnect,
    /// Event counters (faults, migrations, shootdowns, ...).
    pub counters: Counters,
    /// Shared trace handle. Clones of this handle live in [`LockSet`] and
    /// in the machine layer; enabling any of them enables all.
    pub trace: numa_sim::Trace,
    /// Deterministic fault injection, consulted at every migration
    /// decision point. Disabled by default: a consult is then one branch,
    /// with no RNG draw, counter or trace event.
    pub faults: numa_sim::FaultInjector,
    topo: Arc<Topology>,
    /// Read-only replicas per vpn (replication extension): which nodes hold
    /// a copy, and in which frame.
    replicas: FxHashMap<u64, Vec<(NodeId, FrameId)>>,
    /// Retry-livelock watchdog state (pressure subsystem).
    pub(crate) watchdog: pressure::Watchdog,
    /// In-flight transactional tier migrations, keyed by vpn.
    pub(crate) pending_txns: FxHashMap<u64, tier::TierTxn>,
    /// Pages currently unmapped by a stop-the-world tier migration:
    /// vpn -> time the window closes. Touches stall until then.
    pub(crate) in_flight_stw: FxHashMap<u64, numa_sim::SimTime>,
    /// Memoized per-page migration cost quanta (safe: `topo` is immutable
    /// for the kernel's lifetime).
    quanta: numa_topology::QuantaCache,
}

impl Kernel {
    /// A kernel for the given machine with the given configuration.
    pub fn new(topo: Arc<Topology>, config: KernelConfig) -> Self {
        let interconnect = Interconnect::new(&topo);
        let trace = numa_sim::Trace::disabled();
        Kernel {
            config,
            locks: LockSet::with_trace(trace.clone()),
            interconnect,
            counters: Counters::new(),
            trace,
            faults: numa_sim::FaultInjector::disabled(),
            topo,
            watchdog: pressure::Watchdog::new(),
            replicas: FxHashMap::default(),
            pending_txns: FxHashMap::default(),
            in_flight_stw: FxHashMap::default(),
            quanta: numa_topology::QuantaCache::default(),
        }
    }

    /// In-flight transactional tier migration for `vpn`, if any.
    pub fn pending_tier_txn(&self, vpn: u64) -> Option<&tier::TierTxn> {
        self.pending_txns.get(&vpn)
    }

    /// Number of transactional tier migrations currently in flight
    /// (invariant checks: must be zero after a quiesced run).
    pub fn pending_tier_txn_count(&self) -> usize {
        self.pending_txns.len()
    }

    /// Install a fault-injection plan (chaos experiments). Pass a vacuous
    /// plan to exercise the enabled-but-silent path.
    pub fn set_fault_plan(&mut self, plan: numa_sim::FaultPlan) {
        self.faults = numa_sim::FaultInjector::new(plan);
    }

    /// Consult the fault injector at `site`; on injection, account and
    /// trace it. `None` (the only answer when injection is disabled) means
    /// proceed normally.
    pub(crate) fn inject(
        &mut self,
        now: numa_sim::SimTime,
        site: numa_sim::FaultSite,
    ) -> Option<numa_sim::FaultKind> {
        let kind = self.faults.consult(site)?;
        self.counters.bump(numa_stats::Counter::FaultsInjected);
        self.trace.record(
            now,
            numa_sim::TraceEventKind::FaultInjected {
                site: site.name(),
                kind: kind.name(),
            },
        );
        Some(kind)
    }

    /// The machine topology this kernel runs on.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Allocate a frame on `node`, falling back per `fallback` when the
    /// bank is full.
    ///
    /// `fallback == None` means *strict*: only `node` is tried (the
    /// MPOL_BIND contract, and the strict placement of next-touch and
    /// tier migrations, which must land exactly where aimed or not move
    /// at all). With `Some(f)` the policy's own fallback is tried first
    /// and then, Linux-zonelist style, every remaining node in
    /// [`Kernel::fallback_order`] — so a fault under memory pressure
    /// degrades to a distant placement instead of an OOM.
    pub(crate) fn alloc_frame(
        &mut self,
        frames: &mut FrameAllocator,
        node: NodeId,
        fallback: Option<NodeId>,
    ) -> Option<FrameId> {
        let mut got = frames.alloc(node).or_else(|| {
            fallback
                .filter(|f| *f != node)
                .and_then(|f| frames.alloc(f))
        });
        if got.is_none() && fallback.is_some() {
            for n in self.fallback_order(node) {
                got = frames.alloc(n);
                if got.is_some() {
                    break;
                }
            }
        }
        if got.is_some() {
            self.counters.bump(numa_stats::Counter::FramesAllocated);
        }
        got
    }

    /// The distance-ordered walk a failed allocation on `node` falls
    /// back through: every other node, nearest first, ties broken by
    /// node number — the simulator's analogue of the Linux zonelist.
    pub fn fallback_order(&self, node: NodeId) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = self.topo.node_ids().filter(|n| *n != node).collect();
        order.sort_by_key(|n| (self.topo.hops(node, *n), n.0));
        order
    }

    /// The control + copy of one page migration, with the cost-model
    /// fraction of the **entire** work serialized under the page-table
    /// lock.
    ///
    /// The 2.6.27 migration path held the page-table/zone/LRU locks
    /// through most of the per-page work — unmapping, copying, remapping —
    /// which is why the paper measures only a 50–60 % aggregate gain from
    /// 4 threads (Fig. 7) and why its LU overhead numbers imply nearly
    /// serialized fault handling at 16 threads. The serialized quantum is
    /// `pt_lock_fraction * (control + copy)`; the remainder of the control
    /// runs unlocked and the remainder of the copy streams through the
    /// interconnect concurrently with other threads.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn locked_migration_copy(
        &mut self,
        now: numa_sim::SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        control_ns: u64,
        control_component: numa_stats::CostComponent,
        copy_component: numa_stats::CostComponent,
        b: &mut numa_stats::Breakdown,
    ) -> numa_sim::SimTime {
        let topo = self.topo.clone();
        let q = self.quanta.get(topo.cost(), control_ns, bytes);
        let acq = self.locks.pt.acquire(now, q.serial_ns);
        b.add(control_component, control_ns);
        b.add(numa_stats::CostComponent::LockWait, acq.wait_ns);
        self.trace.record(
            now,
            numa_sim::TraceEventKind::LockAcquire {
                name: "pt_lock",
                wait_ns: acq.wait_ns,
                hold_ns: q.serial_ns,
            },
        );
        let t = acq.end + q.parallel_ctl_ns;
        // The unlocked remainder of the copy: same bytes through the
        // links, initiator time scaled so control+copy totals are
        // preserved.
        let xfer = self
            .interconnect
            .transfer(&topo, t, src, dst, bytes, q.copy_bw);
        b.add(copy_component, q.nominal_copy_ns + xfer.wait_ns);
        xfer.end
    }

    /// Record that the primary page table changed over `range` and, when
    /// the address space runs Mitosis-style replicated page tables, charge
    /// the propagation (ptplace subsystem).
    ///
    /// Under eager sync the PTE updates are written through to every
    /// replica now and the caller's clock advances by the write-through
    /// cost; under lazy sync the range is only marked stale (free — the
    /// charge lands on the next walk from each node). With placement unset
    /// or single-homed this is one branch and returns `now` unchanged, so
    /// existing experiments are byte-identical.
    pub fn pt_note_update(
        &mut self,
        space: &mut numa_vm::AddressSpace,
        now: numa_sim::SimTime,
        range: numa_vm::PageRange,
    ) -> numa_sim::SimTime {
        if space.pt_placement() != Some(numa_vm::PtPlacement::Replicated) {
            return now;
        }
        let written = space.pt_note_update(range);
        if written == 0 {
            return now;
        }
        let dur = self.topo.cost().pt_replica_sync_ns(written);
        self.counters.bump(numa_stats::Counter::PtReplicaSyncs);
        self.trace.record(
            now,
            numa_sim::TraceEventKind::PtReplicaSync {
                entries: written,
                dur_ns: dur,
            },
        );
        now + dur
    }

    /// Replica table access for the access-cost model: the nearest replica
    /// of `vpn` as seen from `from`, if any.
    pub fn nearest_replica(&self, vpn: u64, from: NodeId) -> Option<(NodeId, FrameId)> {
        let replicas = self.replicas.get(&vpn)?;
        replicas
            .iter()
            .copied()
            .min_by_key(|(n, _)| self.topo.hops(from, *n))
    }

    /// Does `vpn` have any replicas?
    pub fn has_replicas(&self, vpn: u64) -> bool {
        self.replicas.contains_key(&vpn)
    }

    /// Does *any* page have replicas? One branch; lets the access hot path
    /// skip per-touch replica lookups entirely when the replication
    /// extension is unused (every run except the replication experiments).
    pub fn has_any_replicas(&self) -> bool {
        !self.replicas.is_empty()
    }

    pub(crate) fn replicas_mut(&mut self) -> &mut FxHashMap<u64, Vec<(NodeId, FrameId)>> {
        &mut self.replicas
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use numa_topology::presets;
    use numa_vm::{AddressSpace, MemPolicy, Protection, Tlb, VirtAddr, VmaKind};

    /// A ready-to-use kernel + VM fixture on the paper's 4-socket machine.
    pub struct Fixture {
        pub kernel: Kernel,
        pub space: AddressSpace,
        pub frames: FrameAllocator,
        pub tlb: Tlb,
    }

    impl Fixture {
        pub fn new() -> Self {
            Self::with_config(KernelConfig::default())
        }

        pub fn with_config(config: KernelConfig) -> Self {
            let topo = Arc::new(presets::opteron_4p());
            let frames = FrameAllocator::new(topo.node_count(), 1 << 21);
            let tlb = Tlb::new(topo.core_count());
            Fixture {
                kernel: Kernel::new(topo, config),
                space: AddressSpace::new(),
                frames,
                tlb,
            }
        }

        /// A fixture on the tiered 4+2 machine with tiering enabled.
        pub fn tiered() -> Self {
            let topo = Arc::new(presets::tiered_4p2());
            let frames = FrameAllocator::new(topo.node_count(), 1 << 21);
            let tlb = Tlb::new(topo.core_count());
            Fixture {
                kernel: Kernel::new(topo, KernelConfig::tiered()),
                space: AddressSpace::new(),
                frames,
                tlb,
            }
        }

        /// Map `pages` anonymous RW pages and return the base address.
        pub fn map_anon(&mut self, pages: u64) -> VirtAddr {
            self.space
                .mmap(
                    pages * numa_vm::PAGE_SIZE,
                    Protection::ReadWrite,
                    VmaKind::PrivateAnonymous,
                    MemPolicy::FirstTouch,
                )
                .expect("mmap")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets;

    #[test]
    fn kernel_construction() {
        let topo = Arc::new(presets::opteron_4p());
        let k = Kernel::new(topo.clone(), KernelConfig::default());
        assert_eq!(k.topology().node_count(), 4);
        assert_eq!(k.interconnect.link_count(), topo.link_count());
        assert!(!k.has_replicas(0));
    }

    /// Pins the zonelist visit order: from node 2 on the opteron square
    /// (links 0-1, 0-2, 1-3, 2-3), nodes 0 and 3 are one hop and node 1
    /// is two, so the order is [0, 3, 1] — ties broken by node number.
    #[test]
    fn fallback_order_is_distance_then_id() {
        let topo = Arc::new(presets::opteron_4p());
        let k = Kernel::new(topo, KernelConfig::default());
        assert_eq!(
            k.fallback_order(NodeId(2)),
            vec![NodeId(0), NodeId(3), NodeId(1)]
        );
        assert_eq!(
            k.fallback_order(NodeId(0)),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    /// With preferred node 2 and fallback 0 both full, the allocation
    /// walks the zonelist and lands on node 3 (one hop from 2), not
    /// node 1 (two hops). Strict requests (`fallback == None`) still
    /// fail outright.
    #[test]
    fn exhausted_alloc_walks_the_zonelist() {
        let topo = Arc::new(presets::opteron_4p());
        let mut k = Kernel::new(topo, KernelConfig::default());
        let mut frames = FrameAllocator::new(4, 2);
        for n in [NodeId(2), NodeId(0)] {
            while frames.alloc(n).is_some() {}
        }
        let got = k
            .alloc_frame(&mut frames, NodeId(2), Some(NodeId(0)))
            .expect("zonelist must find room");
        assert_eq!(frames.node_of(got), NodeId(3));
        assert!(
            k.alloc_frame(&mut frames, NodeId(2), None).is_none(),
            "strict allocation must not fall back"
        );
    }
}
