//! The page-fault handler.
//!
//! Three paths matter for the paper:
//!
//! 1. **First-touch** (§2.2): an unpopulated page is allocated on the node
//!    chosen by the VMA's (or process-default) policy — by default, the
//!    faulting thread's node.
//! 2. **Kernel next-touch** (§3.3, Figure 2 right half): a page whose PTE
//!    carries the next-touch flag is migrated to the faulting thread's node
//!    inside the fault handler, copy-on-write style: allocate local, copy,
//!    free old, restore protection. No signal, no global shootdown — that
//!    is exactly why it beats the user-space model by ~30 % (§4.3).
//! 3. **Protection fault → SIGSEGV** (§3.2, Figure 1): a touch on a
//!    `PROT_NONE` region is reported to the machine layer, which delivers
//!    the signal to the user-space next-touch library.

use crate::Kernel;
use numa_sim::{SimTime, TraceEventKind};
use numa_stats::{Breakdown, CostComponent, Counter};
use numa_topology::{CoreId, NodeId};
use numa_vm::{
    AddressSpace, FrameAllocator, MemPolicy, PageRange, Protection, Pte, PteFlags, Tlb, VirtAddr,
    VmError, Vma, PAGES_PER_HUGE, PAGE_SIZE,
};

/// Why the MMU trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Is this a write access?
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Outcome of a page fault.
#[derive(Debug, Clone)]
pub enum FaultResolution {
    /// The kernel handled the fault; the thread resumes at `end`.
    Resolved {
        /// When the faulting thread resumes.
        end: SimTime,
        /// Did this fault migrate the page (kernel next-touch)?
        migrated: bool,
        /// The node the page now resides on.
        node: NodeId,
    },
    /// Protection fault on a valid mapping: deliver SIGSEGV to user space
    /// (the user-space next-touch library's hook, Figure 1).
    Segv {
        /// When the kernel finishes fault processing and queues the signal.
        end: SimTime,
    },
    /// A genuine error (access outside any mapping, out of memory).
    Fatal(VmError),
}

/// Resolve the policy that governs a fresh allocation in `vma`: the VMA
/// policy, falling back to the process default when the VMA carries the
/// default first-touch policy (mirrors `get_vma_policy`).
pub(crate) fn effective_policy<'a>(space: &'a AddressSpace, vma: &'a Vma) -> &'a MemPolicy {
    if vma.policy == MemPolicy::FirstTouch {
        space.default_policy()
    } else {
        &vma.policy
    }
}

impl Kernel {
    /// Handle a fault at `addr` by the thread on `core`.
    ///
    /// Fault-handling costs are added to `b` directly: faults fire per
    /// touched page on the access hot path, and returning a fresh
    /// [`Breakdown`] per fault (heap allocation plus a full-width merge
    /// in every caller) was measurable host time.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_fault(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        addr: VirtAddr,
        write: bool,
        b: &mut Breakdown,
    ) -> FaultResolution {
        let topo = self.topology().clone();
        let cost = topo.cost();
        let local = topo.node_of_core(core);

        let Some(vma) = space.find_vma(addr) else {
            return FaultResolution::Fatal(VmError::NoVma(addr));
        };
        let prot = vma.prot;
        let huge = vma.huge;
        let vpn = if huge {
            crate::syscalls::huge_head(vma.range.start_vpn, addr.vpn())
        } else {
            addr.vpn()
        };
        // Placement decisions are pure; resolve them up front so the VMA
        // borrow does not have to outlive the page-table mutations below.
        let (policy_target, policy_fallback) = {
            let policy = effective_policy(space, vma);
            (policy.choose_node(vpn, local), policy.fallback_node(local))
        };
        let pages_covered = if huge { PAGES_PER_HUGE } else { 1 };
        let bytes = pages_covered * PAGE_SIZE;

        match space.page_table.get(vpn) {
            // ---------------------------------------------- first touch
            None => {
                if !prot.permits(write) {
                    self.counters.bump(Counter::SegvSignals);
                    self.trace.record(now, TraceEventKind::Signal { page: vpn });
                    return FaultResolution::Segv {
                        end: now + cost.page_fault_ns,
                    };
                }
                let mut t0 = now;
                let frame = match self.alloc_frame(frames, policy_target, policy_fallback) {
                    Some(f) => f,
                    None => {
                        // Allocation slow path: with reclaim enabled,
                        // evict cold pages off the target node on this
                        // thread's time and retry once before declaring
                        // OOM (typed — the machine layer decides whether
                        // that kills the thread or aborts the run).
                        let mut retried = None;
                        if self.config.pressure.reclaim {
                            let (end, freed) =
                                self.direct_reclaim(space, frames, t0, policy_target, Some(vpn), b);
                            t0 = end;
                            if freed > 0 {
                                retried = self.alloc_frame(frames, policy_target, policy_fallback);
                            }
                        }
                        match retried {
                            Some(f) => f,
                            None => return FaultResolution::Fatal(VmError::OutOfMemory),
                        }
                    }
                };
                let node = frames.node_of(frame);
                let mut flags = PteFlags::PRESENT | PteFlags::READ;
                if prot == Protection::ReadWrite {
                    flags |= PteFlags::WRITE;
                }
                if huge {
                    flags |= PteFlags::HUGE;
                }
                let prev = space.page_table.map(
                    vpn,
                    Pte {
                        frame,
                        shadow: None,
                        flags,
                    },
                );
                debug_assert!(prev.is_none(), "first touch of an already-mapped page");

                b.add(CostComponent::FaultControl, cost.page_fault_ns);
                // Allocation + zeroing, partially serialized (zone lock).
                let work = cost.first_touch_ns * pages_covered;
                let end = self.locks.pt_serialized(
                    t0 + cost.page_fault_ns,
                    work,
                    cost.pt_lock_fraction,
                    CostComponent::FaultControl,
                    b,
                );
                let mut end = self.pt_note_update(space, end, PageRange::new(vpn, vpn + 1));
                // Watermark upkeep: an allocation that leaves the node
                // below its min watermark reclaims ahead of the next one
                // (still on this thread's time), and level transitions
                // are accounted. One branch when watermarks are unset.
                if frames.watermarked() {
                    if self.config.pressure.reclaim
                        && frames.pressure_of(node) == numa_vm::PressureLevel::Min
                    {
                        let (end2, _) = self.direct_reclaim(space, frames, end, node, Some(vpn), b);
                        end = end2;
                    }
                    self.note_pressure(frames, end, node);
                }
                self.counters.bump(Counter::FirstTouchFaults);
                self.trace.record(
                    now,
                    TraceEventKind::PageFault {
                        page: vpn,
                        node: node.0,
                        write,
                        migrated: false,
                        dur_ns: end.since(now),
                    },
                );
                FaultResolution::Resolved {
                    end,
                    migrated: false,
                    node,
                }
            }

            // ------------------------------------- kernel next-touch hit
            Some(pte) if pte.is_next_touch() => {
                b.add(CostComponent::FaultControl, cost.page_fault_ns);
                let mut t = now + cost.page_fault_ns;
                let src = frames.node_of(pte.frame);
                let mut migrated = false;
                let mut node = src;
                if src == local {
                    t = self.locks.pt_serialized(
                        t,
                        cost.nt_fault_control_ns * pages_covered,
                        cost.pt_lock_fraction,
                        CostComponent::FaultControl,
                        b,
                    );
                } else {
                    // Allocate on the toucher's node; fall back to leaving
                    // the page where it is if the local bank is full — the
                    // paper's silent degradation, which the fault plan can
                    // also force (injection decided before any side effect).
                    let injected = self.inject(t, numa_sim::FaultSite::NextTouchFault);
                    let new_frame = if injected.is_some() {
                        None
                    } else {
                        self.alloc_frame(frames, local, None)
                    };
                    if let Some(new_frame) = new_frame {
                        t = self.locked_migration_copy(
                            t,
                            src,
                            local,
                            bytes,
                            cost.nt_fault_control_ns * pages_covered,
                            CostComponent::FaultControl,
                            CostComponent::FaultCopy,
                            b,
                        );
                        frames.copy_contents(pte.frame, new_frame);
                        match space.page_table.get_mut(vpn) {
                            Some(mut entry) => {
                                entry.frame = new_frame;
                                frames.free(pte.frame);
                                self.counters.bump(Counter::FramesFreed);
                                migrated = true;
                                node = local;
                                self.counters.bump(Counter::PagesMovedFault);
                                if huge {
                                    self.counters.bump(Counter::HugePagesMoved);
                                }
                            }
                            None => {
                                // Mapping vanished mid-copy: discard the
                                // copy; the fault resolution below reports
                                // the page un-migrated.
                                frames.free(new_frame);
                                self.counters.bump(Counter::FramesFreed);
                                self.degrade(t, vpn, "racing_unmap");
                            }
                        }
                    } else {
                        let reason = injected.map_or("frame_exhausted", |k| k.name());
                        self.degrade(t, vpn, reason);
                    }
                }
                if src == local {
                    self.counters.bump(Counter::PagesAlreadyPlaced);
                }
                // Restore protection per the VMA; only the faulting core's
                // TLB needs invalidating (the madvise already shot down the
                // stale entries) — the cheapness of this path is the whole
                // point of the kernel implementation (§4.3).
                let Some(mut entry) = space.page_table.get_mut(vpn) else {
                    return FaultResolution::Fatal(VmError::NoVma(addr));
                };
                entry.clear_next_touch();
                if prot == Protection::ReadOnly {
                    entry.flags = entry.flags & !PteFlags::WRITE;
                }
                drop(entry); // write back before the replica sync reads it
                t = self.pt_note_update(space, t, PageRange::new(vpn, vpn + 1));
                tlb.invalidate_local(core);
                self.counters.bump(Counter::NextTouchFaults);
                self.trace.record(
                    now,
                    TraceEventKind::PageFault {
                        page: vpn,
                        node: node.0,
                        write,
                        migrated,
                        dur_ns: t.since(now),
                    },
                );
                FaultResolution::Resolved {
                    end: t,
                    migrated,
                    node,
                }
            }

            // ------------------------------------------ protection fault
            Some(pte) if !pte.permits(write) => {
                if prot.permits(write) {
                    // PTE lagging behind a VMA-level restore: repair it.
                    let Some(mut entry) = space.page_table.get_mut(vpn) else {
                        return FaultResolution::Fatal(VmError::NoVma(addr));
                    };
                    entry.flags |= PteFlags::PRESENT | PteFlags::READ;
                    if prot == Protection::ReadWrite {
                        entry.flags |= PteFlags::WRITE;
                    }
                    let node = frames.node_of(entry.frame);
                    drop(entry); // write back before the replica sync reads it
                    b.add(CostComponent::FaultControl, cost.page_fault_ns);
                    let end = self.pt_note_update(
                        space,
                        now + cost.page_fault_ns,
                        PageRange::new(vpn, vpn + 1),
                    );
                    tlb.invalidate_local(core);
                    self.trace.record(
                        now,
                        TraceEventKind::PageFault {
                            page: vpn,
                            node: node.0,
                            write,
                            migrated: false,
                            dur_ns: cost.page_fault_ns,
                        },
                    );
                    FaultResolution::Resolved {
                        end,
                        migrated: false,
                        node,
                    }
                } else {
                    // True protection violation: user space asked for this
                    // (the mprotect-based next-touch) or it is a bug there.
                    self.counters.bump(Counter::SegvSignals);
                    self.trace.record(now, TraceEventKind::Signal { page: vpn });
                    FaultResolution::Segv {
                        end: now + cost.page_fault_ns,
                    }
                }
            }

            // --------------------------------------------- spurious fault
            Some(pte) => {
                let node = frames.node_of(pte.frame);
                FaultResolution::Resolved {
                    end: now,
                    migrated: false,
                    node,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Fixture;
    use numa_vm::{PageRange, VmaKind};

    #[test]
    fn first_touch_allocates_locally() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        // Core 7 lives on node 1 in the 4x4 preset.
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(7),
            base,
            true,
            &mut Breakdown::new(),
        );
        match r {
            FaultResolution::Resolved { node, migrated, .. } => {
                assert_eq!(node, NodeId(1));
                assert!(!migrated);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(fx.kernel.counters.get(Counter::FirstTouchFaults), 1);
        assert_eq!(fx.frames.live_on(NodeId(1)), 1);
    }

    #[test]
    fn first_touch_respects_interleave() {
        let mut fx = Fixture::new();
        let addr = fx
            .space
            .mmap(
                8 * PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::interleave_all(4),
            )
            .unwrap();
        for p in 0..8u64 {
            fx.kernel.handle_fault(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                addr + p * PAGE_SIZE,
                true,
                &mut Breakdown::new(),
            );
        }
        // Pages round-robin across nodes by vpn.
        for p in 0..8u64 {
            let pte = fx.space.page_table.get(addr.vpn() + p).unwrap();
            let expect = NodeId((((addr.vpn() + p) % 4) as u16).to_owned());
            assert_eq!(fx.frames.node_of(pte.frame), expect);
        }
    }

    #[test]
    fn next_touch_fault_migrates_to_toucher() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        // Populate from node 0.
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base,
            true,
            &mut Breakdown::new(),
        );
        let tag = {
            let pte = fx.space.page_table.get(base.vpn()).unwrap();
            fx.frames.get(pte.frame).unwrap().content_tag
        };
        // Mark and touch from node 2 (core 8).
        fx.kernel
            .madvise_next_touch(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                PageRange::new(base.vpn(), base.vpn() + 1),
            )
            .unwrap();
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime(1_000_000),
            CoreId(8),
            base,
            false,
            &mut Breakdown::new(),
        );
        match r {
            FaultResolution::Resolved { node, migrated, .. } => {
                assert!(migrated);
                assert_eq!(node, NodeId(2));
            }
            other => panic!("{other:?}"),
        }
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert_eq!(fx.frames.node_of(pte.frame), NodeId(2));
        assert_eq!(
            fx.frames.get(pte.frame).unwrap().content_tag,
            tag,
            "migration must preserve contents"
        );
        assert!(!pte.is_next_touch(), "flag cleared after migration");
        assert!(pte.permits(true), "protection restored");
        assert_eq!(fx.kernel.counters.get(Counter::PagesMovedFault), 1);
    }

    #[test]
    fn next_touch_local_touch_skips_copy() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base,
            true,
            &mut Breakdown::new(),
        );
        fx.kernel
            .madvise_next_touch(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                PageRange::new(base.vpn(), base.vpn() + 1),
            )
            .unwrap();
        // Touch from the same node (core 1 is node 0 too).
        let mut b = Breakdown::new();
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(1),
            base,
            true,
            &mut b,
        );
        match r {
            FaultResolution::Resolved { migrated, node, .. } => {
                assert!(!migrated);
                assert_eq!(node, NodeId(0));
                assert_eq!(b.get(CostComponent::FaultCopy), 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(fx.kernel.counters.get(Counter::PagesAlreadyPlaced), 1);
    }

    #[test]
    fn prot_none_touch_raises_segv() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base,
            true,
            &mut Breakdown::new(),
        );
        fx.kernel
            .mprotect(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                PageRange::new(base.vpn(), base.vpn() + 1),
                Protection::None,
                CostComponent::MprotectMark,
            )
            .unwrap();
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(5),
            base,
            false,
            &mut Breakdown::new(),
        );
        assert!(matches!(r, FaultResolution::Segv { .. }));
        assert_eq!(fx.kernel.counters.get(Counter::SegvSignals), 1);
    }

    #[test]
    fn write_to_readonly_segv_but_read_ok() {
        let mut fx = Fixture::new();
        let addr = fx
            .space
            .mmap(
                PAGE_SIZE,
                Protection::ReadOnly,
                VmaKind::PrivateAnonymous,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        // Read faults in fine.
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr,
            false,
            &mut Breakdown::new(),
        );
        assert!(matches!(r, FaultResolution::Resolved { .. }));
        // Write is a violation.
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr,
            true,
            &mut Breakdown::new(),
        );
        assert!(matches!(r, FaultResolution::Segv { .. }));
    }

    #[test]
    fn fault_outside_mappings_is_fatal() {
        let mut fx = Fixture::new();
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            VirtAddr(0x10),
            false,
            &mut Breakdown::new(),
        );
        assert!(matches!(r, FaultResolution::Fatal(VmError::NoVma(_))));
    }

    #[test]
    fn huge_fault_populates_whole_huge_page() {
        let mut fx = Fixture::with_config(crate::KernelConfig {
            huge_page_migration: true,
            ..crate::KernelConfig::default()
        });
        let addr = fx
            .kernel
            .mmap_huge(&mut fx.space, 1, MemPolicy::FirstTouch)
            .unwrap();
        // Touch the middle of the huge page.
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr + 300 * PAGE_SIZE,
            true,
            &mut Breakdown::new(),
        );
        assert!(matches!(r, FaultResolution::Resolved { .. }));
        let pte = fx.space.page_table.get(addr.vpn()).unwrap();
        assert!(pte.flags.contains(PteFlags::HUGE));
        // Only the head PTE exists; the range is covered by it.
        assert!(fx.space.page_table.get(addr.vpn() + 300).is_none());
    }

    #[test]
    fn kernel_nt_faults_do_not_shootdown_globally() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base,
            true,
            &mut Breakdown::new(),
        );
        fx.kernel
            .madvise_next_touch(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                PageRange::new(base.vpn(), base.vpn() + 1),
            )
            .unwrap();
        let episodes_before = fx.tlb.episodes();
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(8),
            base,
            true,
            &mut Breakdown::new(),
        );
        assert_eq!(
            fx.tlb.episodes(),
            episodes_before,
            "NT fault must only invalidate locally"
        );
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::test_util::Fixture;
    use numa_vm::{VmaKind, PAGE_SIZE};

    #[test]
    fn process_default_policy_governs_default_vmas() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(4);
        // set_mempolicy(interleave): the VMA has the default first-touch
        // policy, so the process default takes over.
        fx.kernel
            .set_mempolicy(&mut fx.space, SimTime::ZERO, MemPolicy::interleave_all(4));
        for p in 0..4u64 {
            fx.kernel.handle_fault(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                base + p * PAGE_SIZE,
                true,
                &mut Breakdown::new(),
            );
        }
        for p in 0..4u64 {
            let vpn = base.vpn() + p;
            let pte = fx.space.page_table.get(vpn).unwrap();
            assert_eq!(
                frames_node(&fx, pte.frame),
                NodeId((vpn % 4) as u16),
                "interleave must follow vpn"
            );
        }
    }

    #[test]
    fn vma_policy_overrides_process_default() {
        let mut fx = Fixture::new();
        fx.kernel
            .set_mempolicy(&mut fx.space, SimTime::ZERO, MemPolicy::Bind(NodeId(3)));
        let addr = fx
            .space
            .mmap(
                PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::Bind(NodeId(1)),
            )
            .unwrap();
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr,
            true,
            &mut Breakdown::new(),
        );
        let pte = fx.space.page_table.get(addr.vpn()).unwrap();
        assert_eq!(frames_node(&fx, pte.frame), NodeId(1), "VMA policy wins");
    }

    #[test]
    fn preferred_falls_back_to_local_when_full() {
        let mut fx = Fixture::new();
        // Exhaust node 2 completely.
        let cap_pages = {
            let topo = fx.kernel.topology().clone();
            topo.node(NodeId(2)).memory_bytes / PAGE_SIZE
        };
        // The fixture allocator is created with 2^21 frames per node,
        // smaller than the 8 GB spec; use its real capacity instead.
        let cap_pages = cap_pages.min(1 << 21);
        let filler = fx
            .space
            .mmap(
                cap_pages * PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::Bind(NodeId(2)),
            )
            .unwrap();
        for p in 0..cap_pages {
            fx.kernel.handle_fault(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(8),
                filler + p * PAGE_SIZE,
                true,
                &mut Breakdown::new(),
            );
        }
        assert_eq!(fx.frames.live_on(NodeId(2)), cap_pages);

        // Preferred(node 2) from a node-0 core now falls back to node 0.
        let addr = fx
            .space
            .mmap(
                PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::PrivateAnonymous,
                MemPolicy::Preferred(NodeId(2)),
            )
            .unwrap();
        let r = fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr,
            true,
            &mut Breakdown::new(),
        );
        match r {
            FaultResolution::Resolved { node, .. } => assert_eq!(node, NodeId(0)),
            other => panic!("{other:?}"),
        }
    }

    fn frames_node(fx: &Fixture, frame: numa_vm::FrameId) -> NodeId {
        fx.frames.node_of(frame)
    }
}
