//! Tier migration: transactional (non-exclusive copy) and stop-the-world.
//!
//! Heterogeneous machines pair small fast DRAM banks with large slow
//! CXL-class banks; a tiering daemon moves hot pages up and cold pages
//! down. Two per-page mechanisms are modelled, mirroring the comparison in
//! Nomad (OSDI'23):
//!
//! * **Transactional** ([`Kernel::tier_txn_begin`] /
//!   [`Kernel::tier_txn_commit`]): copy the page *without unmapping it* —
//!   the mapping stays fully usable and the page exists non-exclusively in
//!   both tiers (the PTE's shadow frame). At commit time the source
//!   frame's write generation is re-checked: unchanged means the copy is
//!   consistent and the PTE is flipped under a short page-table-lock
//!   critical section; changed means a concurrent writer dirtied the page
//!   and the copy is aborted (destination freed, mapping untouched).
//!   Writers never stall; the cost of concurrent writes is wasted copies.
//!
//! * **Stop-the-world** ([`Kernel::tier_stw_page`]): the classic
//!   `migrate_pages` discipline — unmap, copy with the cost-model fraction
//!   of the work serialized under the page-table lock, remap. Any thread
//!   touching the page during the window stalls until the migration ends.
//!   Writers are never inconsistent, but they wait.
//!
//! Both paths go through the same [`numa_sim::Resource`] lock and
//! interconnect models as every other kernel path, so migration traffic
//! and application traffic contend honestly.

use crate::Kernel;
use numa_sim::{SimTime, TraceEventKind};
use numa_stats::{Breakdown, CostComponent, Counter};
use numa_topology::{MemTier, NodeId};
use numa_vm::{AddressSpace, FrameAllocator, FrameId, PteFlags, PAGE_SIZE};

/// An in-flight transactional tier migration for one page.
#[derive(Debug, Clone, Copy)]
pub struct TierTxn {
    /// The frame the page was mapped to when the copy started.
    pub src_frame: FrameId,
    /// The destination (shadow) frame being built in the other tier.
    pub dst_frame: FrameId,
    /// Source write generation snapshotted when the copy started.
    pub gen_at_copy: u64,
    /// Fault injection marked this copy as transiently failed: the commit
    /// must abort regardless of the write-generation check.
    pub poisoned: bool,
}

/// Outcome of a transactional commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The write generation was unchanged: the PTE now points at the new
    /// tier and the old frame is freed.
    Committed,
    /// A concurrent writer dirtied the page: the copy was discarded and
    /// the mapping is untouched.
    Aborted,
}

impl Kernel {
    /// Start a transactional migration of `vpn` to `dst_node`: allocate
    /// the destination frame, copy the page through the interconnect
    /// *without* taking the mapping down, and record the source write
    /// generation. Returns the virtual time at which the copy completes —
    /// the commit ([`Kernel::tier_txn_commit`]) must run at that time.
    ///
    /// Returns `None` without side effects when the page is ineligible:
    /// unmapped, huge, next-touch-marked, already in a transaction,
    /// already on `dst_node`, or the destination bank is full.
    pub fn tier_txn_begin(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        vpn: u64,
        dst_node: NodeId,
        b: &mut Breakdown,
    ) -> Option<SimTime> {
        debug_assert!(self.config.tiering, "tiering disabled in KernelConfig");
        let topo = self.topology().clone();
        let cost = topo.cost();
        let pte = space.page_table.get(vpn)?;
        if !pte.flags.contains(PteFlags::PRESENT)
            || pte.flags.contains(PteFlags::HUGE)
            || pte.is_next_touch()
            || pte.has_shadow()
        {
            return None;
        }
        let src_node = frames.node_of(pte.frame);
        if src_node == dst_node {
            self.counters.bump(Counter::PagesAlreadyPlaced);
            return None;
        }
        // Injection decided before any side effect. Frame exhaustion and
        // unmap races degrade exactly like a full destination bank: the
        // page stays put, the daemon moves on. A transient-copy injection
        // poisons the transaction so the commit aborts — exercising the
        // same abort/retry machinery a racing writer does.
        let mut poisoned = false;
        match self.inject(now, numa_sim::FaultSite::TierPromotion) {
            None => {}
            Some(numa_sim::FaultKind::TransientCopy) => poisoned = true,
            Some(kind) => {
                self.degrade(now, vpn, kind.name());
                return None;
            }
        }
        let Some(dst_frame) = self.alloc_frame(frames, dst_node, None) else {
            self.degrade(now, vpn, "frame_exhausted");
            return None;
        };
        self.trace.record(
            now,
            TraceEventKind::MigrationBegin {
                page: vpn,
                from: src_node.0,
                to: dst_node.0,
            },
        );

        // Short critical section: allocate the shadow PTE slot and
        // snapshot the generation. Deliberately much smaller than the
        // stop-the-world control cost — no unmap, no rmap walk.
        let t = self.locks.pt_serialized(
            now,
            cost.tier_txn_control_ns,
            cost.pt_lock_fraction,
            CostComponent::FaultControl,
            b,
        );
        // The copy itself runs with no lock held: full kernel copy
        // bandwidth, contending only on links and memory controllers.
        let xfer = self.interconnect.transfer(
            &topo,
            t,
            src_node,
            dst_node,
            PAGE_SIZE,
            cost.kernel_copy_bw,
        );
        b.add(
            CostComponent::FaultCopy,
            cost.kernel_copy_ns(PAGE_SIZE) + xfer.wait_ns,
        );

        frames.copy_contents(pte.frame, dst_frame);
        let gen_at_copy = frames.write_gen(pte.frame);
        let Some(mut entry) = space.page_table.get_mut(vpn) else {
            // The mapping vanished during the copy: discard it and leave
            // whatever the racer installed; no transaction to commit.
            frames.free(dst_frame);
            self.counters.bump(Counter::FramesFreed);
            self.degrade(xfer.end, vpn, "racing_unmap");
            return None;
        };
        entry.set_shadow(dst_frame);
        drop(entry);
        self.pending_txns.insert(
            vpn,
            TierTxn {
                src_frame: pte.frame,
                dst_frame,
                gen_at_copy,
                poisoned,
            },
        );
        Some(xfer.end)
    }

    /// Attempt to commit the in-flight transactional migration of `vpn`
    /// at `now` (the copy-completion time returned by
    /// [`Kernel::tier_txn_begin`]). Re-checks the write generation:
    /// unchanged commits (PTE flip under the page-table lock, source
    /// freed), changed aborts (destination freed, mapping untouched).
    /// The TLB shootdown after a commit is batched by the caller.
    ///
    /// Panics if no transaction is pending for `vpn` — that is an
    /// engine-sequencing bug, never a workload condition.
    pub fn tier_txn_commit(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        vpn: u64,
        b: &mut Breakdown,
    ) -> (SimTime, TxnOutcome) {
        let txn = self
            .pending_txns
            .remove(&vpn)
            .unwrap_or_else(|| panic!("tier commit without begin for vpn {vpn}"));
        let topo = self.topology().clone();
        let cost = topo.cost();

        // A poisoned (fault-injected) copy aborts unconditionally.
        // Otherwise the page may have been remapped out from under the
        // transaction (e.g. a next-touch migration): treat as a dirty
        // copy.
        let clean = !txn.poisoned
            && space.page_table.get(vpn).is_some_and(|pte| {
                pte.frame == txn.src_frame && frames.write_gen(txn.src_frame) == txn.gen_at_copy
            });

        if clean {
            // Commit: flip the PTE inside a short critical section.
            let end = self.locks.pt_serialized(
                now,
                cost.tier_commit_ns,
                cost.pt_lock_fraction,
                CostComponent::FaultControl,
                b,
            );
            let mut pte = space
                .page_table
                .get_mut(vpn)
                .expect("clean transaction lost its mapping");
            let old = pte.commit_shadow();
            drop(pte);
            debug_assert_eq!(old, txn.src_frame);
            let src_node = frames.node_of(old);
            frames.free(old);
            self.counters.bump(Counter::FramesFreed);
            self.counters.bump(Counter::TierTxnCommits);
            self.trace.record(
                now,
                TraceEventKind::MigrationCommit {
                    page: vpn,
                    dur_ns: end.since(now),
                },
            );
            self.note_tier_move(frames, Some(src_node), txn.dst_frame, vpn, end);
            (end, TxnOutcome::Committed)
        } else {
            // Abort: discard the copy; the mapping was never disturbed.
            b.add(CostComponent::FaultControl, cost.tier_abort_ns);
            if let Some(mut pte) = space.page_table.get_mut(vpn) {
                if pte.has_shadow() && pte.shadow == Some(txn.dst_frame) {
                    pte.abort_shadow();
                }
            }
            frames.free(txn.dst_frame);
            self.counters.bump(Counter::FramesFreed);
            self.counters.bump(Counter::TierTxnAborts);
            self.trace.record(
                now,
                TraceEventKind::MigrationAbort {
                    page: vpn,
                    dur_ns: cost.tier_abort_ns,
                },
            );
            (now + cost.tier_abort_ns, TxnOutcome::Aborted)
        }
    }

    /// Stop-the-world migration of `vpn` to `dst_node`: unmap, copy with
    /// the cost-model fraction of the work held under the page-table
    /// lock, remap. While in flight, any touch of the page stalls until
    /// the returned completion time (see [`Kernel::tier_stw_stall_end`]).
    /// Eligibility rules match [`Kernel::tier_txn_begin`].
    pub fn tier_stw_page(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        vpn: u64,
        dst_node: NodeId,
        b: &mut Breakdown,
    ) -> Option<SimTime> {
        debug_assert!(self.config.tiering, "tiering disabled in KernelConfig");
        let pte = space.page_table.get(vpn)?;
        if !pte.flags.contains(PteFlags::PRESENT)
            || pte.flags.contains(PteFlags::HUGE)
            || pte.is_next_touch()
            || pte.has_shadow()
        {
            return None;
        }
        let src_node = frames.node_of(pte.frame);
        if src_node == dst_node {
            self.counters.bump(Counter::PagesAlreadyPlaced);
            return None;
        }
        // Injection decided before any side effect. Stop-the-world has no
        // in-flight state to retry from, so every injected kind degrades:
        // the page stays in its current tier and the daemon moves on.
        if let Some(kind) = self.inject(now, numa_sim::FaultSite::TierPromotion) {
            self.degrade(now, vpn, kind.name());
            return None;
        }
        let Some(dst_frame) = self.alloc_frame(frames, dst_node, None) else {
            self.degrade(now, vpn, "frame_exhausted");
            return None;
        };

        let cost_control = self.topology().cost().move_pages_control_ns;
        let end = self.locked_migration_copy(
            now,
            src_node,
            dst_node,
            PAGE_SIZE,
            cost_control,
            CostComponent::MovePagesControl,
            CostComponent::MovePagesCopy,
            b,
        );
        self.trace.record(
            now,
            TraceEventKind::MigrationCopy {
                page: vpn,
                from: src_node.0,
                to: dst_node.0,
                dur_ns: end.since(now),
            },
        );
        frames.copy_contents(pte.frame, dst_frame);
        let Some(mut entry) = space.page_table.get_mut(vpn) else {
            // The mapping vanished while the page was unmapped for the
            // copy: discard the copy, leave whatever the racer installed.
            frames.free(dst_frame);
            self.counters.bump(Counter::FramesFreed);
            self.degrade(end, vpn, "racing_unmap");
            return None;
        };
        entry.frame = dst_frame;
        drop(entry);
        frames.free(pte.frame);
        self.counters.bump(Counter::FramesFreed);
        self.note_tier_move(frames, Some(src_node), dst_frame, vpn, end);
        // The page is unmapped for the whole episode: record the window
        // so concurrent touches stall on it.
        self.in_flight_stw.insert(vpn, end);
        Some(end)
    }

    /// If a stop-the-world migration currently has `vpn` unmapped at
    /// `now`, the time the window closes. Expired windows are purged
    /// lazily.
    pub fn tier_stw_stall_end(&mut self, vpn: u64, now: SimTime) -> Option<SimTime> {
        match self.in_flight_stw.get(&vpn).copied() {
            Some(end) if end > now => Some(end),
            Some(_) => {
                self.in_flight_stw.remove(&vpn);
                None
            }
            None => None,
        }
    }

    /// Classify a completed move as promotion or demotion by the tiers of
    /// its endpoints.
    fn note_tier_move(
        &mut self,
        frames: &FrameAllocator,
        src_node: Option<NodeId>,
        dst_frame: FrameId,
        vpn: u64,
        at: SimTime,
    ) {
        let Some(src) = src_node else { return };
        let dst = frames.node_of(dst_frame);
        let topo = self.topology().clone();
        match (topo.tier_of(src), topo.tier_of(dst)) {
            (MemTier::Slow, MemTier::Dram) => {
                self.counters.bump(Counter::TierPromotions);
                self.trace.record(
                    at,
                    TraceEventKind::TierPromote {
                        page: vpn,
                        from: src.0,
                        to: dst.0,
                    },
                );
            }
            (MemTier::Dram, MemTier::Slow) => {
                self.counters.bump(Counter::TierDemotions);
                self.trace.record(
                    at,
                    TraceEventKind::TierDemote {
                        page: vpn,
                        from: src.0,
                        to: dst.0,
                    },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Fixture;
    use numa_topology::CoreId;

    /// Populate one page from core 0 (node 0 DRAM) and return its vpn.
    fn mapped_page(fx: &mut Fixture) -> u64 {
        let base = fx.map_anon(1);
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base,
            true,
            &mut Breakdown::new(),
        );
        base.vpn()
    }

    #[test]
    fn txn_commit_demotes_cleanly() {
        let mut fx = Fixture::tiered();
        let vpn = mapped_page(&mut fx);
        let tag = {
            let pte = fx.space.page_table.get(vpn).unwrap();
            fx.frames.get(pte.frame).unwrap().content_tag
        };
        let slow = NodeId(4);
        let mut b = Breakdown::new();
        let copy_end = fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                slow,
                &mut b,
            )
            .expect("begin");
        // Mid-flight: the page is non-exclusive, mapping fully usable.
        let pte = fx.space.page_table.get(vpn).unwrap();
        assert!(pte.has_shadow());
        assert!(pte.permits(true), "transactional copy must not unmap");
        assert_eq!(fx.frames.live_on(NodeId(0)), 1);
        assert_eq!(fx.frames.live_on(slow), 1);

        let (_, outcome) =
            fx.kernel
                .tier_txn_commit(&mut fx.space, &mut fx.frames, copy_end, vpn, &mut b);
        assert_eq!(outcome, TxnOutcome::Committed);
        let pte = fx.space.page_table.get(vpn).unwrap();
        assert!(!pte.has_shadow());
        assert_eq!(fx.frames.node_of(pte.frame), slow);
        assert_eq!(fx.frames.get(pte.frame).unwrap().content_tag, tag);
        assert_eq!(fx.frames.live_on(NodeId(0)), 0, "source freed");
        assert_eq!(fx.frames.live_total(), 1, "no frame lost or duplicated");
        assert_eq!(fx.kernel.counters.get(Counter::TierTxnCommits), 1);
        assert_eq!(fx.kernel.counters.get(Counter::TierDemotions), 1);
        assert_eq!(fx.kernel.counters.get(Counter::TierTxnAborts), 0);
    }

    #[test]
    fn txn_concurrent_write_aborts() {
        let mut fx = Fixture::tiered();
        let vpn = mapped_page(&mut fx);
        let src_frame = fx.space.page_table.get(vpn).unwrap().frame;
        let mut b = Breakdown::new();
        let copy_end = fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                NodeId(4),
                &mut b,
            )
            .expect("begin");
        // A writer dirties the page while the copy is in flight.
        fx.frames.note_write(src_frame);
        let (_, outcome) =
            fx.kernel
                .tier_txn_commit(&mut fx.space, &mut fx.frames, copy_end, vpn, &mut b);
        assert_eq!(outcome, TxnOutcome::Aborted);
        let pte = fx.space.page_table.get(vpn).unwrap();
        assert_eq!(pte.frame, src_frame, "abort leaves the source mapping");
        assert!(!pte.has_shadow());
        assert!(pte.permits(true));
        assert_eq!(fx.frames.live_on(NodeId(4)), 0, "copy discarded");
        assert_eq!(fx.frames.live_total(), 1);
        assert_eq!(fx.kernel.counters.get(Counter::TierTxnAborts), 1);
        assert_eq!(fx.kernel.counters.get(Counter::TierDemotions), 0);
    }

    #[test]
    fn stw_moves_page_and_stalls_touches() {
        let mut fx = Fixture::tiered();
        let vpn = mapped_page(&mut fx);
        let mut b = Breakdown::new();
        let end = fx
            .kernel
            .tier_stw_page(
                &mut fx.space,
                &mut fx.frames,
                SimTime(100),
                vpn,
                NodeId(4),
                &mut b,
            )
            .expect("stw");
        assert!(end > SimTime(100));
        assert_eq!(
            fx.frames
                .node_of(fx.space.page_table.get(vpn).unwrap().frame),
            NodeId(4)
        );
        // Mid-window touches stall to the end; afterwards nothing does.
        assert_eq!(fx.kernel.tier_stw_stall_end(vpn, SimTime(101)), Some(end));
        assert_eq!(fx.kernel.tier_stw_stall_end(vpn, end), None);
        assert_eq!(fx.kernel.tier_stw_stall_end(vpn, end + 1), None);
        assert_eq!(fx.kernel.counters.get(Counter::TierDemotions), 1);
        // The STW path serializes control+copy under the pt lock.
        assert!(b.get(CostComponent::MovePagesControl) > 0);
        assert!(b.get(CostComponent::MovePagesCopy) > 0);
    }

    #[test]
    fn ineligible_pages_skipped() {
        let mut fx = Fixture::tiered();
        let mut b = Breakdown::new();
        // Unmapped vpn.
        assert!(fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                9999,
                NodeId(4),
                &mut b
            )
            .is_none());
        // Already on the destination node.
        let vpn = mapped_page(&mut fx);
        assert!(fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                NodeId(0),
                &mut b
            )
            .is_none());
        assert_eq!(fx.kernel.counters.get(Counter::PagesAlreadyPlaced), 1);
        // A page already in a transaction cannot start another.
        fx.kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                NodeId(4),
                &mut b,
            )
            .expect("first begin");
        assert!(fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                NodeId(5),
                &mut b
            )
            .is_none());
    }

    #[test]
    fn promotion_counted_from_slow_bank() {
        let mut fx = Fixture::tiered();
        // Bind a page to the slow node, then transactionally promote it.
        let addr = fx
            .space
            .mmap(
                numa_vm::PAGE_SIZE,
                numa_vm::Protection::ReadWrite,
                numa_vm::VmaKind::PrivateAnonymous,
                numa_vm::MemPolicy::Bind(NodeId(4)),
            )
            .unwrap();
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr,
            true,
            &mut Breakdown::new(),
        );
        let vpn = addr.vpn();
        assert_eq!(
            fx.frames
                .node_of(fx.space.page_table.get(vpn).unwrap().frame),
            NodeId(4)
        );
        let mut b = Breakdown::new();
        let copy_end = fx
            .kernel
            .tier_txn_begin(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                vpn,
                NodeId(2),
                &mut b,
            )
            .expect("begin");
        let (_, outcome) =
            fx.kernel
                .tier_txn_commit(&mut fx.space, &mut fx.frames, copy_end, vpn, &mut b);
        assert_eq!(outcome, TxnOutcome::Committed);
        assert_eq!(fx.kernel.counters.get(Counter::TierPromotions), 1);
    }
}
