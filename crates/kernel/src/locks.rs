//! The kernel lock model.
//!
//! Two locks reproduce the contention the paper measures:
//!
//! * the **mmap lock** (`mmap_sem`): every migration syscall takes it for
//!   its base bookkeeping, which is why "parallelizing the migration does
//!   not bring any improvement for buffers smaller than 1 MB" (§4.4) — the
//!   fixed overheads of concurrent callers serialize;
//! * the **page-table lock**: a configurable fraction of *per-page*
//!   migration work (PTE updates, zone list manipulation) is serialized,
//!   which caps 4-thread scaling at the paper's observed 50–60 %
//!   improvement (Fig. 7, Amdahl with s ≈ 0.5).
//!
//! Both are [`numa_sim::Resource`]s, so waiting time is accounted and shows
//! up in the `LockWait` cost component.

use numa_sim::{Resource, SimTime, Trace, TraceEventKind};
use numa_stats::{Breakdown, CostComponent};

/// The kernel's lock set.
#[derive(Debug, Clone)]
pub struct LockSet {
    /// `mmap_sem` analogue.
    pub mmap: Resource,
    /// Page-table / zone lock analogue (one machine-wide resource; the
    /// 2.6.27 kernel's locking in this path was similarly coarse).
    pub pt: Resource,
    /// Shared trace handle; records one `LockAcquire` per acquisition.
    trace: Trace,
}

impl Default for LockSet {
    fn default() -> Self {
        LockSet::new()
    }
}

impl LockSet {
    /// Fresh, uncontended locks.
    pub fn new() -> Self {
        LockSet::with_trace(Trace::disabled())
    }

    /// Fresh locks recording acquisitions into `trace`.
    pub fn with_trace(trace: Trace) -> Self {
        LockSet {
            mmap: Resource::new("mmap_lock"),
            pt: Resource::new("pt_lock"),
            trace,
        }
    }

    /// Run `total_ns` of work starting at `now`, of which `fraction` is
    /// serialized under the page-table lock and the rest proceeds in
    /// parallel with other threads. Charges the work to `component` and
    /// any queueing delay to `LockWait`. Returns the completion time.
    pub fn pt_serialized(
        &mut self,
        now: SimTime,
        total_ns: u64,
        fraction: f64,
        component: CostComponent,
        breakdown: &mut Breakdown,
    ) -> SimTime {
        debug_assert!((0.0..=1.0).contains(&fraction));
        let serial = (total_ns as f64 * fraction).round() as u64;
        let parallel = total_ns - serial.min(total_ns);
        let acq = self.pt.acquire(now, serial);
        breakdown.add(component, total_ns);
        breakdown.add(CostComponent::LockWait, acq.wait_ns);
        self.trace.record(
            now,
            TraceEventKind::LockAcquire {
                name: "pt_lock",
                wait_ns: acq.wait_ns,
                hold_ns: serial,
            },
        );
        acq.end + parallel
    }

    /// Take the mmap lock for `hold_ns` starting at `now` (syscall base
    /// bookkeeping). Charges the hold to `component` and queueing to
    /// `LockWait`. Returns the completion time.
    pub fn mmap_locked(
        &mut self,
        now: SimTime,
        hold_ns: u64,
        component: CostComponent,
        breakdown: &mut Breakdown,
    ) -> SimTime {
        let acq = self.mmap.acquire(now, hold_ns);
        breakdown.add(component, hold_ns);
        breakdown.add(CostComponent::LockWait, acq.wait_ns);
        self.trace.record(
            now,
            TraceEventKind::LockAcquire {
                name: "mmap_lock",
                wait_ns: acq.wait_ns,
                hold_ns,
            },
        );
        acq.end
    }

    /// Reset both locks (between experiment repetitions).
    pub fn reset(&mut self) {
        self.mmap.reset();
        self.pt.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_serialized_splits_work() {
        let mut l = LockSet::new();
        let mut b = Breakdown::new();
        // 100 ns of work, half serialized, uncontended: completes at 100.
        let end = l.pt_serialized(SimTime(0), 100, 0.5, CostComponent::FaultControl, &mut b);
        assert_eq!(end, SimTime(100));
        assert_eq!(b.get(CostComponent::FaultControl), 100);
        assert_eq!(b.get(CostComponent::LockWait), 0);
    }

    #[test]
    fn two_threads_contend_on_serial_half() {
        let mut l = LockSet::new();
        let mut b = Breakdown::new();
        // Thread A holds the serialized 50 ns first.
        let end_a = l.pt_serialized(SimTime(0), 100, 0.5, CostComponent::FaultControl, &mut b);
        // Thread B arrives at the same instant: waits 50 for the lock,
        // then 50 serial + 50 parallel.
        let end_b = l.pt_serialized(SimTime(0), 100, 0.5, CostComponent::FaultControl, &mut b);
        assert_eq!(end_a, SimTime(100));
        assert_eq!(end_b, SimTime(150));
        assert_eq!(b.get(CostComponent::LockWait), 50);
    }

    #[test]
    fn fully_serialized_gives_no_overlap() {
        let mut l = LockSet::new();
        let mut b = Breakdown::new();
        let e1 = l.pt_serialized(SimTime(0), 100, 1.0, CostComponent::FaultControl, &mut b);
        let e2 = l.pt_serialized(SimTime(0), 100, 1.0, CostComponent::FaultControl, &mut b);
        assert_eq!(e1, SimTime(100));
        assert_eq!(e2, SimTime(200));
    }

    #[test]
    fn mmap_lock_serializes_bases() {
        let mut l = LockSet::new();
        let mut b = Breakdown::new();
        let e1 = l.mmap_locked(SimTime(0), 160_000, CostComponent::MovePagesControl, &mut b);
        let e2 = l.mmap_locked(SimTime(0), 160_000, CostComponent::MovePagesControl, &mut b);
        assert_eq!(e1, SimTime(160_000));
        assert_eq!(e2, SimTime(320_000), "bases must not overlap");
        assert_eq!(b.get(CostComponent::LockWait), 160_000);
    }
}
