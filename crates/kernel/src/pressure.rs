//! Memory-pressure resilience: direct reclaim, node evacuation and the
//! retry-livelock watchdog.
//!
//! Linux survives memory pressure with a layered defence — per-zone
//! watermarks wake `kswapd`, allocations that dip below the min
//! watermark reclaim directly on the allocating thread, and the OOM
//! killer is the last resort. This module gives the simulated kernel
//! the same ladder, built on the [`FrameAllocator`] watermarks:
//!
//! * [`Kernel::direct_reclaim`] — evict cold pages off a strapped node
//!   onto the nearest node with room (preferring the slow tier on
//!   tiered machines, like zone demotion), charged to the allocating
//!   thread exactly as `__alloc_pages`'s slow path is;
//! * [`Kernel::evacuate_page_step`] — one page of a node hot-remove,
//!   with the same typed partial-failure statuses as `move_pages(2)`;
//! * [`Kernel::watchdog_allow_retry`] — a virtual-time livelock
//!   watchdog over the retry machinery (engine `move_pages` retries,
//!   next-touch move retries, tier deferred retries): when a window
//!   passes with retries but zero migration progress, further retries
//!   are denied and the callers degrade instead of spinning forever.
//!
//! Everything here is **off by default** ([`PressureSettings::default`]
//! disables all three) and costs a single branch when disabled, so
//! pre-existing experiment outputs stay byte-identical.
//!
//! Deliberate simplifications, documented rather than modelled: reclaim
//! and evacuation skip the TLB-shootdown round a real kernel would run
//! per batch (the migration syscalls model it; the pressure paths fold
//! it into the per-page locked copy), and reclaim never writes to swap —
//! the simulated machines are swapless, so "reclaim" always means
//! migrating the page to another node's frames.

use crate::syscalls::PageStatus;
use crate::Kernel;
use numa_sim::{FaultKind, FaultSite, SimTime, TraceEventKind};
use numa_stats::{Breakdown, CostComponent, Counter};
use numa_topology::{MemTier, NodeId};
use numa_vm::{AddressSpace, FrameAllocator, PageRange, PteFlags, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Tuning of the retry-livelock watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// How long (virtual ns) the retry machinery may churn with zero
    /// migration progress before the watchdog fires.
    pub window_ns: u64,
    /// Minimum retries inside the window before firing — a handful of
    /// transient failures is normal operation, not a livelock.
    pub min_retries: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window_ns: 200_000,
            min_retries: 8,
        }
    }
}

/// Memory-pressure feature switches. All off by default: the pressure
/// ladder only runs in the experiments that opt in, and a disabled
/// setting costs one branch on the paths it guards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PressureSettings {
    /// Direct reclaim on allocation failure and below-min allocations
    /// (the `__alloc_pages` slow path).
    pub reclaim: bool,
    /// Most pages one reclaim pass will scan.
    pub reclaim_batch: u32,
    /// Kill the faulting thread on an unservable allocation instead of
    /// aborting the simulation (the machine layer's analogue of the OOM
    /// killer with `oom_kill_allocating_task=1`).
    pub oom_kill: bool,
    /// Retry-livelock watchdog; `None` disables it.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for PressureSettings {
    fn default() -> Self {
        PressureSettings {
            reclaim: false,
            reclaim_batch: 32,
            oom_kill: false,
            watchdog: None,
        }
    }
}

impl PressureSettings {
    /// Every pressure defence on, with default tuning — what the
    /// pressure experiment runs.
    pub fn enabled() -> Self {
        PressureSettings {
            reclaim: true,
            oom_kill: true,
            watchdog: Some(WatchdogConfig::default()),
            ..PressureSettings::default()
        }
    }
}

/// Watchdog runtime state (lives on the [`Kernel`]).
#[derive(Debug)]
pub(crate) struct Watchdog {
    window_start: SimTime,
    retries: u64,
    progress_at_start: u64,
    fired: bool,
}

impl Watchdog {
    pub(crate) fn new() -> Self {
        Watchdog {
            window_start: SimTime::ZERO,
            retries: 0,
            progress_at_start: 0,
            fired: false,
        }
    }
}

impl Kernel {
    /// Total migration progress the watchdog watches: every counter a
    /// stuck retry loop would fail to advance.
    fn progress_sum(&self) -> u64 {
        self.counters.get(Counter::PagesMovedSyscall)
            + self.counters.get(Counter::PagesMovedFault)
            + self.counters.get(Counter::PagesMovedProcess)
            + self.counters.get(Counter::TierTxnCommits)
            + self.counters.get(Counter::PagesReclaimed)
            + self.counters.get(Counter::PagesEvacuated)
    }

    /// Ask the watchdog whether a transient migration failure may be
    /// retried. Always `true` when the watchdog is disabled (one
    /// branch). Otherwise the retry is noted; if the configured window
    /// has elapsed with at least `min_retries` retries and **zero**
    /// migration progress, the watchdog fires — counter, trace event,
    /// and `false` from here on — forcing the retry loops to degrade
    /// instead of livelocking. Any progress re-arms it.
    pub fn watchdog_allow_retry(&mut self, now: SimTime) -> bool {
        let Some(cfg) = self.config.pressure.watchdog else {
            return true;
        };
        let progress = self.progress_sum();
        if progress > self.watchdog.progress_at_start {
            self.watchdog.window_start = now;
            self.watchdog.retries = 0;
            self.watchdog.progress_at_start = progress;
            self.watchdog.fired = false;
        }
        self.watchdog.retries += 1;
        if now.since(self.watchdog.window_start) >= cfg.window_ns
            && self.watchdog.retries >= cfg.min_retries
        {
            if !self.watchdog.fired {
                self.watchdog.fired = true;
                self.counters.bump(Counter::WatchdogFirings);
                self.trace.record(
                    now,
                    TraceEventKind::WatchdogFired {
                        retries: self.watchdog.retries,
                        window_ns: cfg.window_ns,
                    },
                );
            }
            return false;
        }
        true
    }

    /// Has the watchdog fired (and not been re-armed by progress)?
    /// Read-only probe for daemons that drop deferred work instead of
    /// retrying it.
    pub fn watchdog_fired(&self) -> bool {
        self.config.pressure.watchdog.is_some() && self.watchdog.fired
    }

    /// Probe `node`'s pressure level and account the transition if it
    /// changed. One branch when no watermarks are configured.
    pub fn note_pressure(&mut self, frames: &mut FrameAllocator, now: SimTime, node: NodeId) {
        if !frames.watermarked() {
            return;
        }
        if let Some(level) = frames.probe_pressure(node) {
            self.counters.bump(Counter::PressureTransitions);
            self.trace.record(
                now,
                TraceEventKind::PressureChange {
                    node: node.0,
                    level: level.name(),
                },
            );
        }
    }

    /// The destination a reclaimed/evacuated page moves to: the nearest
    /// (then lowest-numbered) online node with a free frame, other than
    /// `src`. With `prefer_slow`, slow-tier nodes rank before DRAM at
    /// any distance — reclaim on tiered machines demotes, like zone
    /// demotion under `kswapd`.
    pub(crate) fn pick_dest(
        &self,
        frames: &FrameAllocator,
        src: NodeId,
        prefer_slow: bool,
    ) -> Option<NodeId> {
        let topo = self.topology();
        let mut best: Option<((u8, u32, u16), NodeId)> = None;
        for n in topo.node_ids() {
            if n == src || frames.is_offline(n) || frames.free_on(n) == 0 {
                continue;
            }
            let rank = if prefer_slow && topo.tier_of(n) != MemTier::Slow {
                1u8
            } else {
                0
            };
            let key = (rank, topo.hops(src, n), n.0);
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, n));
            }
        }
        best.map(|(_, n)| n)
    }

    /// Direct reclaim on `node`: migrate cold resident pages to the
    /// nearest node with room until the node is back above its low
    /// watermark (or the batch limit is hit), charging the work to the
    /// calling thread — Linux's allocation slow path. Victims are taken
    /// in ascending-vpn order (deterministic; the cold end of the heap
    /// for the sequential workloads the pressure experiments run),
    /// skipping huge, replicated, next-touch-marked, tier-in-flight and
    /// the `protect_vpn` page. Per-victim [`FaultSite::Reclaim`]
    /// injections skip that victim (a pinned page), costing only the
    /// failed isolate.
    ///
    /// Returns the completion time and the number of pages reclaimed.
    pub fn direct_reclaim(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        node: NodeId,
        protect_vpn: Option<u64>,
        b: &mut Breakdown,
    ) -> (SimTime, u64) {
        let topo = self.topology().clone();
        let cost = topo.cost();
        self.counters.bump(Counter::DirectReclaims);
        let batch = u64::from(self.config.pressure.reclaim_batch);
        let prefer_slow = self.config.tiering && topo.is_tiered();
        let mut t = now;
        let mut scanned = 0u64;
        let mut reclaimed = 0u64;

        let mut victims = Vec::new();
        for vpn in space.page_table.sorted_vpns() {
            if victims.len() as u64 >= batch {
                break;
            }
            if Some(vpn) == protect_vpn {
                continue;
            }
            let Some(pte) = space.page_table.get(vpn) else {
                continue;
            };
            if pte.flags.contains(PteFlags::HUGE)
                || pte.flags.contains(PteFlags::REPLICA)
                || pte.shadow.is_some()
                || pte.is_next_touch()
            {
                continue;
            }
            if frames.node_of(pte.frame) != node {
                continue;
            }
            victims.push(vpn);
        }

        for vpn in victims {
            // Enough: back above low (with watermarks) or one frame free
            // (without — the bare alloc-failure retry needs just one).
            if reclaimed > 0 && frames.free_on(node) > frames.watermark_low(node) {
                break;
            }
            scanned += 1;
            self.counters.bump(Counter::ReclaimScans);
            if self.inject(t, FaultSite::Reclaim).is_some() {
                // Injected failure: the victim is pinned/busy. Skip it,
                // charging only the failed isolate attempt.
                self.charge_failed_page(&mut t, b, cost, CostComponent::MigratePagesWalk);
                continue;
            }
            let Some(pte) = space.page_table.get(vpn) else {
                continue;
            };
            let old_frame = pte.frame;
            let Some(dest) = self.pick_dest(frames, node, prefer_slow) else {
                break; // nowhere to put pages; the OOM path takes over
            };
            let Some(new_frame) = self.alloc_frame(frames, dest, None) else {
                break;
            };
            t = self.locked_migration_copy(
                t,
                node,
                dest,
                PAGE_SIZE,
                cost.migrate_pages_control_ns,
                CostComponent::MigratePagesWalk,
                CostComponent::FaultCopy,
                b,
            );
            frames.copy_contents(old_frame, new_frame);
            let Some(mut entry) = space.page_table.get_mut(vpn) else {
                frames.free(new_frame);
                self.counters.bump(Counter::FramesFreed);
                continue;
            };
            entry.frame = new_frame;
            drop(entry); // write back before the replica sync reads it
            frames.free(old_frame);
            self.counters.bump(Counter::FramesFreed);
            self.counters.bump(Counter::PagesReclaimed);
            t = self.pt_note_update(space, t, PageRange::new(vpn, vpn + 1));
            reclaimed += 1;
        }

        self.trace.record(
            now,
            TraceEventKind::ReclaimRun {
                node: node.0,
                scanned,
                reclaimed,
                dur_ns: t.since(now),
            },
        );
        self.note_pressure(frames, t, node);
        (t, reclaimed)
    }

    /// Mark `node` unallocatable (hot-remove step 1). Resident frames
    /// stay live and mapped — the evacuation micro-steps move them out.
    pub fn node_offline_begin(&mut self, frames: &mut FrameAllocator, now: SimTime, node: NodeId) {
        frames.set_offline(node);
        self.counters.bump(Counter::NodesOfflined);
        self.trace
            .record(now, TraceEventKind::NodeOffline { node: node.0 });
    }

    /// Bring `node` back online (allocatable again).
    pub fn node_online(&mut self, frames: &mut FrameAllocator, now: SimTime, node: NodeId) {
        frames.set_online(node);
        self.counters.bump(Counter::NodesOnlined);
        self.trace
            .record(now, TraceEventKind::NodeOnline { node: node.0 });
    }

    /// Evacuate one page off an offlining `node` (engine micro-step),
    /// with `move_pages(2)`-style partial-failure statuses: `Busy` is
    /// retryable (the engine re-queues it under its retry budget),
    /// `NoMemory`/`NotPresent` degrade — the page stays where it is,
    /// still mapped, exactly like a Linux offline aborting with
    /// `-EBUSY`. Returns `None` when there is nothing to do (page gone,
    /// already elsewhere, or unmovable huge/replicated).
    pub fn evacuate_page_step(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        vpn: u64,
        node: NodeId,
    ) -> (SimTime, Breakdown, Option<PageStatus>) {
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let mut t = now;
        let Some(pte) = space.page_table.get(vpn) else {
            return (t, b, None);
        };
        if frames.node_of(pte.frame) != node {
            return (t, b, None);
        }
        let huge = pte.flags.contains(PteFlags::HUGE);
        if (huge && !self.config.huge_page_migration) || pte.flags.contains(PteFlags::REPLICA) {
            // Unmovable here: huge without the migration extension, or a
            // replicated page (its replica set pins the home frame).
            return (t, b, None);
        }
        if pte.shadow.is_some() {
            // A transactional tier migration is mid-flight on this page;
            // come back after it commits or aborts.
            self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
            return (t, b, Some(PageStatus::Busy));
        }
        let old_frame = pte.frame;
        let bytes = if huge { cost.huge_page_size } else { PAGE_SIZE };

        // Injection decision precedes all side effects (see move_one_page).
        match self.inject(t, FaultSite::Evacuation) {
            Some(FaultKind::TransientCopy) => {
                self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
                return (t, b, Some(PageStatus::Busy));
            }
            Some(FaultKind::FrameExhausted) => {
                self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
                self.degrade(t, vpn, "frame_exhausted");
                return (t, b, Some(PageStatus::NoMemory));
            }
            Some(FaultKind::RacingUnmap) => {
                // Discovered mid-copy: the wasted copy work is real.
                t = self.locked_migration_copy(
                    t,
                    node,
                    node,
                    bytes,
                    cost.migrate_pages_control_ns,
                    CostComponent::MigratePagesWalk,
                    CostComponent::FaultCopy,
                    &mut b,
                );
                self.degrade(t, vpn, "racing_unmap");
                return (t, b, Some(PageStatus::NotPresent));
            }
            None => {}
        }

        let Some(dest) = self.pick_dest(frames, node, false) else {
            self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
            self.degrade(t, vpn, "no_destination");
            return (t, b, Some(PageStatus::NoMemory));
        };
        let Some(new_frame) = self.alloc_frame(frames, dest, None) else {
            self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
            self.degrade(t, vpn, "frame_exhausted");
            return (t, b, Some(PageStatus::NoMemory));
        };
        let copy_start = t;
        t = self.locked_migration_copy(
            t,
            node,
            dest,
            bytes,
            cost.migrate_pages_control_ns,
            CostComponent::MigratePagesWalk,
            CostComponent::FaultCopy,
            &mut b,
        );
        self.trace.record(
            copy_start,
            TraceEventKind::MigrationCopy {
                page: vpn,
                from: node.0,
                to: dest.0,
                dur_ns: t.since(copy_start),
            },
        );
        frames.copy_contents(old_frame, new_frame);
        let Some(mut entry) = space.page_table.get_mut(vpn) else {
            frames.free(new_frame);
            self.counters.bump(Counter::FramesFreed);
            self.degrade(t, vpn, "racing_unmap");
            return (t, b, Some(PageStatus::NotPresent));
        };
        entry.frame = new_frame;
        drop(entry); // write back before the replica sync reads it
        frames.free(old_frame);
        self.counters.bump(Counter::FramesFreed);
        self.counters.bump(Counter::PagesEvacuated);
        if huge {
            self.counters.bump(Counter::HugePagesMoved);
        }
        t = self.pt_note_update(space, t, PageRange::new(vpn, vpn + 1));
        (t, b, Some(PageStatus::Moved(dest)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Fixture;
    use crate::{FaultResolution, KernelConfig};
    use numa_sim::FaultPlan;
    use numa_topology::{presets, CoreId};
    use numa_vm::VmError;
    use std::sync::Arc;

    fn pressured() -> KernelConfig {
        KernelConfig {
            pressure: PressureSettings::enabled(),
            ..KernelConfig::default()
        }
    }

    /// A fixture whose allocator has only `cap` frames per node.
    fn small_fixture(config: KernelConfig, cap: u64) -> Fixture {
        let mut fx = Fixture::with_config(config);
        fx.frames = numa_vm::FrameAllocator::new(4, cap);
        fx
    }

    fn touch(fx: &mut Fixture, addr: numa_vm::VirtAddr, core: CoreId) -> FaultResolution {
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            core,
            addr,
            true,
            &mut Breakdown::new(),
        )
    }

    #[test]
    fn pressure_defaults_are_off() {
        let s = PressureSettings::default();
        assert!(!s.reclaim && !s.oom_kill && s.watchdog.is_none());
        let on = PressureSettings::enabled();
        assert!(on.reclaim && on.oom_kill && on.watchdog.is_some());
    }

    #[test]
    fn direct_reclaim_frees_room_on_the_strapped_node() {
        // 4 frames per node; fill node 0 via Bind, then reclaim.
        let mut fx = small_fixture(pressured(), 4);
        let addr = fx
            .space
            .mmap(
                4 * PAGE_SIZE,
                numa_vm::Protection::ReadWrite,
                numa_vm::VmaKind::PrivateAnonymous,
                numa_vm::MemPolicy::Bind(NodeId(0)),
            )
            .unwrap();
        for p in 0..4 {
            assert!(matches!(
                touch(&mut fx, addr + p * PAGE_SIZE, CoreId(0)),
                FaultResolution::Resolved { .. }
            ));
        }
        assert_eq!(fx.frames.free_on(NodeId(0)), 0);
        let (_, reclaimed) = fx.kernel.direct_reclaim(
            &mut fx.space,
            &mut fx.frames,
            SimTime::ZERO,
            NodeId(0),
            None,
            &mut Breakdown::new(),
        );
        assert!(reclaimed > 0, "reclaim must evict something");
        assert!(fx.frames.free_on(NodeId(0)) > 0);
        // Evicted pages stay mapped, on other nodes, contents intact.
        let pte = fx.space.page_table.get(addr.vpn()).unwrap();
        assert_ne!(fx.frames.node_of(pte.frame), NodeId(0));
        assert_eq!(
            fx.kernel.counters.get(Counter::PagesReclaimed),
            reclaimed,
            "counter matches return value"
        );
        assert_eq!(fx.kernel.counters.get(Counter::DirectReclaims), 1);
    }

    #[test]
    fn reclaim_demotes_toward_the_slow_tier_when_tiered() {
        let topo = Arc::new(presets::tiered_4p2());
        let mut fx = Fixture {
            kernel: Kernel::new(
                topo,
                KernelConfig {
                    tiering: true,
                    pressure: PressureSettings::enabled(),
                    ..KernelConfig::default()
                },
            ),
            space: numa_vm::AddressSpace::new(),
            frames: numa_vm::FrameAllocator::new(6, 8),
            tlb: numa_vm::Tlb::new(16),
        };
        let addr = fx
            .space
            .mmap(
                8 * PAGE_SIZE,
                numa_vm::Protection::ReadWrite,
                numa_vm::VmaKind::PrivateAnonymous,
                numa_vm::MemPolicy::Bind(NodeId(0)),
            )
            .unwrap();
        for p in 0..8 {
            touch(&mut fx, addr + p * PAGE_SIZE, CoreId(0));
        }
        fx.kernel.direct_reclaim(
            &mut fx.space,
            &mut fx.frames,
            SimTime::ZERO,
            NodeId(0),
            None,
            &mut Breakdown::new(),
        );
        // Demoted pages land on the slow node behind node 0, not a DRAM
        // peer (zone-demotion preference).
        assert!(
            fx.frames.live_on(NodeId(4)) > 0,
            "expected slow-tier demotion"
        );
        assert_eq!(fx.frames.live_on(NodeId(1)), 0);
    }

    #[test]
    fn fault_path_reclaims_then_allocates_instead_of_oom() {
        let mut fx = small_fixture(pressured(), 4);
        let addr = fx
            .space
            .mmap(
                5 * PAGE_SIZE,
                numa_vm::Protection::ReadWrite,
                numa_vm::VmaKind::PrivateAnonymous,
                numa_vm::MemPolicy::Bind(NodeId(0)),
            )
            .unwrap();
        // 4 touches fill node 0; the 5th (Bind: no policy fallback) must
        // direct-reclaim and then succeed.
        for p in 0..5 {
            let r = touch(&mut fx, addr + p * PAGE_SIZE, CoreId(0));
            assert!(
                matches!(r, FaultResolution::Resolved { .. }),
                "page {p}: {r:?}"
            );
        }
        assert!(fx.kernel.counters.get(Counter::PagesReclaimed) > 0);
    }

    #[test]
    fn oom_is_typed_when_reclaim_finds_nothing() {
        // Pressure on, but the whole machine is full: reclaim has
        // nowhere to move pages, so the fault ends in a typed OOM.
        let mut fx = small_fixture(pressured(), 2);
        let addr = fx
            .space
            .mmap(
                9 * PAGE_SIZE,
                numa_vm::Protection::ReadWrite,
                numa_vm::VmaKind::PrivateAnonymous,
                numa_vm::MemPolicy::interleave_all(4),
            )
            .unwrap();
        let mut fatal = 0;
        for p in 0..9 {
            if let FaultResolution::Fatal(e) = touch(&mut fx, addr + p * PAGE_SIZE, CoreId(0)) {
                assert!(matches!(e, VmError::OutOfMemory));
                fatal += 1;
            }
        }
        assert_eq!(fatal, 1, "8 frames fit, the 9th page must OOM");
    }

    #[test]
    fn evacuation_moves_page_and_survives_injected_faults() {
        use numa_sim::{FaultKind, FaultSite};
        let run = |plan: Option<FaultPlan>| {
            let mut fx = Fixture::new();
            let base = fx.map_anon(1);
            touch(&mut fx, base, CoreId(0));
            if let Some(plan) = plan {
                fx.kernel.set_fault_plan(plan);
            }
            fx.kernel
                .node_offline_begin(&mut fx.frames, SimTime::ZERO, NodeId(0));
            let (_, _, st) = fx.kernel.evacuate_page_step(
                &mut fx.space,
                &mut fx.frames,
                SimTime::ZERO,
                base.vpn(),
                NodeId(0),
            );
            (fx, base, st)
        };

        // Clean run: page lands on the nearest online node (node 1).
        let (fx, base, st) = run(None);
        assert_eq!(st, Some(PageStatus::Moved(NodeId(1))));
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert_eq!(fx.frames.node_of(pte.frame), NodeId(1));
        assert_eq!(fx.kernel.counters.get(Counter::PagesEvacuated), 1);
        assert_eq!(fx.kernel.counters.get(Counter::NodesOfflined), 1);

        // Transient copy failure: Busy (retryable), page untouched.
        let plan = FaultPlan::new(0).with_schedule(
            FaultSite::Evacuation,
            FaultKind::TransientCopy,
            vec![0],
        );
        let (fx, base, st) = run(Some(plan));
        assert_eq!(st, Some(PageStatus::Busy));
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert_eq!(fx.frames.node_of(pte.frame), NodeId(0), "page stays put");

        // Frame exhaustion: degrades, page stays mapped on the source.
        let plan = FaultPlan::new(0).with_schedule(
            FaultSite::Evacuation,
            FaultKind::FrameExhausted,
            vec![0],
        );
        let (fx, base, st) = run(Some(plan));
        assert_eq!(st, Some(PageStatus::NoMemory));
        assert!(fx.space.page_table.get(base.vpn()).is_some());
        assert_eq!(fx.kernel.counters.get(Counter::MigrationsDegraded), 1);
    }

    #[test]
    fn online_reverses_offline() {
        let mut fx = Fixture::new();
        fx.kernel
            .node_offline_begin(&mut fx.frames, SimTime::ZERO, NodeId(2));
        assert!(fx.frames.is_offline(NodeId(2)));
        assert!(fx.frames.alloc(NodeId(2)).is_none());
        fx.kernel
            .node_online(&mut fx.frames, SimTime::ZERO, NodeId(2));
        assert!(!fx.frames.is_offline(NodeId(2)));
        assert!(fx.frames.alloc(NodeId(2)).is_some());
        assert_eq!(fx.kernel.counters.get(Counter::NodesOnlined), 1);
    }

    #[test]
    fn watchdog_fires_without_progress_and_rearms_on_progress() {
        let mut fx = Fixture::with_config(pressured());
        let cfg = fx.kernel.config.pressure.watchdog.unwrap();
        // Disabled watchdog always allows.
        let mut plain = Fixture::new();
        assert!(plain.kernel.watchdog_allow_retry(SimTime(1 << 40)));

        // Retries inside the window are allowed.
        for i in 0..cfg.min_retries {
            assert!(fx.kernel.watchdog_allow_retry(SimTime(i)), "retry {i}");
        }
        // Past the window with zero progress: denied, counted, sticky.
        let late = SimTime(cfg.window_ns + 1);
        assert!(!fx.kernel.watchdog_allow_retry(late));
        assert!(fx.kernel.watchdog_fired());
        assert!(!fx.kernel.watchdog_allow_retry(late + 1));
        assert_eq!(fx.kernel.counters.get(Counter::WatchdogFirings), 1);

        // Progress re-arms it.
        fx.kernel.counters.bump(Counter::PagesMovedSyscall);
        assert!(fx.kernel.watchdog_allow_retry(late + 2));
        assert!(!fx.kernel.watchdog_fired());
    }

    #[test]
    fn pressure_transitions_are_counted_once_per_change() {
        let mut fx = small_fixture(pressured(), 8);
        fx.frames.set_watermarks(NodeId(0), 4, 2);
        for _ in 0..3 {
            fx.frames.alloc(NodeId(0)).unwrap();
        }
        // free = 5 > low: still normal, no transition.
        fx.kernel
            .note_pressure(&mut fx.frames, SimTime::ZERO, NodeId(0));
        assert_eq!(fx.kernel.counters.get(Counter::PressureTransitions), 0);
        fx.frames.alloc(NodeId(0)).unwrap(); // free = 4 == low
        fx.kernel
            .note_pressure(&mut fx.frames, SimTime::ZERO, NodeId(0));
        assert_eq!(fx.kernel.counters.get(Counter::PressureTransitions), 1);
        // Repeat probe at the same level: no double count.
        fx.kernel
            .note_pressure(&mut fx.frames, SimTime::ZERO, NodeId(0));
        assert_eq!(fx.kernel.counters.get(Counter::PressureTransitions), 1);
    }
}
