//! Unit tests for the §6 future-work extensions: read-only replication
//! and huge-page migration, at the kernel API level.

use crate::test_util::Fixture;
use crate::{FaultResolution, KernelConfig};
use numa_sim::SimTime;
use numa_stats::{Breakdown, Counter};
use numa_topology::{CoreId, NodeId};
use numa_vm::{MemPolicy, PageRange, Protection, VirtAddr, VmaKind, PAGES_PER_HUGE, PAGE_SIZE};

fn replication_fixture() -> (Fixture, VirtAddr) {
    let mut fx = Fixture::with_config(KernelConfig {
        replication: true,
        ..KernelConfig::default()
    });
    let addr = fx
        .space
        .mmap(
            4 * PAGE_SIZE,
            Protection::ReadOnly,
            VmaKind::PrivateAnonymous,
            MemPolicy::Bind(NodeId(0)),
        )
        .unwrap();
    for p in 0..4 {
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            addr + p * PAGE_SIZE,
            false,
            &mut Breakdown::new(),
        );
    }
    (fx, addr)
}

#[test]
fn replication_creates_one_replica_per_other_node() {
    let (mut fx, addr) = replication_fixture();
    let range = PageRange::new(addr.vpn(), addr.vpn() + 4);
    let live_before = fx.frames.live_total();
    fx.kernel
        .replicate_read_only(&mut fx.space, &mut fx.frames, SimTime::ZERO, range)
        .unwrap();
    // 4 pages x 3 extra nodes.
    assert_eq!(fx.frames.live_total(), live_before + 12);
    assert_eq!(fx.kernel.counters.get(Counter::PagesReplicated), 4);
    for p in 0..4u64 {
        assert!(fx.kernel.has_replicas(addr.vpn() + p));
        // Nearest replica from node 3 is node 3 itself.
        let (n, _) = fx
            .kernel
            .nearest_replica(addr.vpn() + p, NodeId(3))
            .unwrap();
        assert_eq!(n, NodeId(3));
    }
}

#[test]
fn replication_requires_read_only() {
    let mut fx = Fixture::with_config(KernelConfig {
        replication: true,
        ..KernelConfig::default()
    });
    let addr = fx.map_anon(2); // ReadWrite
    let range = PageRange::new(addr.vpn(), addr.vpn() + 2);
    let err = fx
        .kernel
        .replicate_read_only(&mut fx.space, &mut fx.frames, SimTime::ZERO, range)
        .unwrap_err();
    assert!(matches!(err, numa_vm::VmError::Unsupported(_)));
}

#[test]
fn replication_gated_by_config() {
    let (mut fx, addr) = {
        // Same setup but replication disabled.
        let mut fx = Fixture::new();
        let addr = fx
            .space
            .mmap(
                PAGE_SIZE,
                Protection::ReadOnly,
                VmaKind::PrivateAnonymous,
                MemPolicy::Bind(NodeId(0)),
            )
            .unwrap();
        (fx, addr)
    };
    let range = PageRange::new(addr.vpn(), addr.vpn() + 1);
    assert!(fx
        .kernel
        .replicate_read_only(&mut fx.space, &mut fx.frames, SimTime::ZERO, range)
        .is_err());
}

#[test]
fn unreplicate_frees_replica_frames() {
    let (mut fx, addr) = replication_fixture();
    let range = PageRange::new(addr.vpn(), addr.vpn() + 4);
    let live_before = fx.frames.live_total();
    fx.kernel
        .replicate_read_only(&mut fx.space, &mut fx.frames, SimTime::ZERO, range)
        .unwrap();
    fx.kernel.unreplicate(&mut fx.space, &mut fx.frames, range);
    assert_eq!(fx.frames.live_total(), live_before, "replicas freed");
    assert!(!fx.kernel.has_replicas(addr.vpn()));
    // The home page is still mapped and readable.
    let r = fx.kernel.handle_fault(
        &mut fx.space,
        &mut fx.frames,
        &mut fx.tlb,
        SimTime::ZERO,
        CoreId(0),
        addr,
        false,
        &mut Breakdown::new(),
    );
    assert!(matches!(r, FaultResolution::Resolved { .. }));
}

#[test]
fn huge_page_next_touch_migrates_whole_2mb() {
    let mut fx = Fixture::with_config(KernelConfig {
        huge_page_migration: true,
        ..KernelConfig::default()
    });
    let addr = fx
        .kernel
        .mmap_huge(&mut fx.space, 2 << 20, MemPolicy::Bind(NodeId(0)))
        .unwrap();
    // Populate (one fault covers the huge page).
    fx.kernel.handle_fault(
        &mut fx.space,
        &mut fx.frames,
        &mut fx.tlb,
        SimTime::ZERO,
        CoreId(0),
        addr,
        true,
        &mut Breakdown::new(),
    );
    assert_eq!(
        fx.frames.live_on(NodeId(0)),
        1,
        "one frame entry per huge page"
    );

    fx.kernel
        .madvise_next_touch(
            &mut fx.space,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            PageRange::new(addr.vpn(), addr.vpn() + PAGES_PER_HUGE),
        )
        .unwrap();
    // Touch the middle from node 1.
    let mut b = Breakdown::new();
    let r = fx.kernel.handle_fault(
        &mut fx.space,
        &mut fx.frames,
        &mut fx.tlb,
        SimTime::ZERO,
        CoreId(4),
        addr + 300 * PAGE_SIZE,
        true,
        &mut b,
    );
    match r {
        FaultResolution::Resolved { migrated, node, .. } => {
            assert!(migrated);
            assert_eq!(node, NodeId(1));
            // The copy must be a 2 MB copy, not a 4 kB one: at 1 GB/s
            // and 55% lock serialization, well over 1 ms of copy cost.
            assert!(
                b.get(numa_stats::CostComponent::FaultCopy) > 800_000,
                "2 MB copy expected, got {} ns",
                b.get(numa_stats::CostComponent::FaultCopy)
            );
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(fx.kernel.counters.get(Counter::HugePagesMoved), 1);
    assert_eq!(fx.frames.live_on(NodeId(1)), 1);
    assert_eq!(fx.frames.live_on(NodeId(0)), 0);
}

#[test]
fn huge_pages_skipped_by_migrate_pages_when_disabled() {
    // A huge mapping created with the feature on, then migrate_pages run
    // by a kernel with the feature off, must leave it in place.
    let mut fx = Fixture::with_config(KernelConfig {
        huge_page_migration: true,
        ..KernelConfig::default()
    });
    let addr = fx
        .kernel
        .mmap_huge(&mut fx.space, 2 << 20, MemPolicy::Bind(NodeId(0)))
        .unwrap();
    fx.kernel.handle_fault(
        &mut fx.space,
        &mut fx.frames,
        &mut fx.tlb,
        SimTime::ZERO,
        CoreId(0),
        addr,
        true,
        &mut Breakdown::new(),
    );
    fx.kernel.config.huge_page_migration = false;
    let r = fx
        .kernel
        .migrate_pages(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            &[NodeId(0)],
            &[NodeId(1)],
        )
        .unwrap();
    assert_eq!(r.moved, 0, "huge page must be skipped");
    assert_eq!(fx.frames.live_on(NodeId(0)), 1);
}
