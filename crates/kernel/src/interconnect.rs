//! The interconnect and memory-controller contention model.
//!
//! Every byte that crosses node boundaries occupies (a) each
//! HyperTransport link along the route and (b) the memory controllers at
//! both ends, for `bytes / bandwidth` of virtual time. A transfer holds all
//! of these *simultaneously* (pipelined cut-through, not store-and-forward),
//! so a copy's own duration is set by the copier (CPU copy loop or DMA
//! rate), while the occupation windows are what make *other* traffic queue.
//!
//! This is the mechanism behind two of the paper's observations:
//! concurrent migrations share link bandwidth (Fig. 7 saturation), and LU's
//! biggest wins come from removing "congestion when multiple threads access
//! each others' NUMA memory across a single HyperTransport link" (§4.5).

use numa_sim::{Resource, SimTime};
use numa_topology::{NodeId, Topology};

/// Link and memory-controller resources for one machine.
#[derive(Debug)]
pub struct Interconnect {
    links: Vec<Resource>,
    /// Per-link bandwidth (bytes/ns), indexed like `links`.
    link_bw: Vec<f64>,
    mem_ctl: Vec<Resource>,
    /// Per-node DRAM bandwidth (bytes/ns).
    mem_bw: Vec<f64>,
}

/// Outcome of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// When the transfer actually started (after queueing behind earlier
    /// traffic on any of the involved resources).
    pub start: SimTime,
    /// When the *initiator* is done (start + initiator-limited duration).
    pub end: SimTime,
    /// Queueing delay before the transfer began.
    pub wait_ns: u64,
}

impl Interconnect {
    /// Build resources matching `topo`.
    pub fn new(topo: &Topology) -> Self {
        let mut links = Vec::with_capacity(topo.link_count());
        let mut link_bw = Vec::with_capacity(topo.link_count());
        for i in 0..topo.link_count() {
            let id = numa_topology::LinkId(i as u16);
            links.push(Resource::new(format!("link{}", i)));
            link_bw.push(topo.link(id).bandwidth_bytes_per_ns);
        }
        let mut mem_ctl = Vec::with_capacity(topo.node_count());
        let mut mem_bw = Vec::with_capacity(topo.node_count());
        for n in topo.node_ids() {
            mem_ctl.push(Resource::new(format!("mc{}", n.0)));
            mem_bw.push(topo.node(n).dram_bw_bytes_per_ns);
        }
        Interconnect {
            links,
            link_bw,
            mem_ctl,
            mem_bw,
        }
    }

    /// Number of link resources.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Move `bytes` from `src` to `dst` starting no earlier than `now`,
    /// with the *initiator* limited to `initiator_bw` bytes/ns (the kernel
    /// copy loop runs at ~1 GB/s, a user-space SSE copy at ~2 GB/s, §4.2).
    ///
    /// The transfer occupies every route link and both memory controllers
    /// for their own `bytes/bandwidth` windows; the initiator finishes
    /// after `bytes/initiator_bw`.
    pub fn transfer(
        &mut self,
        topo: &Topology,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        initiator_bw: f64,
    ) -> TransferOutcome {
        debug_assert!(initiator_bw > 0.0);
        let route = topo.route(src, dst);
        // Find the earliest instant the read side is free. The
        // destination controller is *occupied* but not *waited on*:
        // migration writes are posted through the write buffers, so a
        // busy destination slows later readers there, not this copy.
        let mut start = now;
        for l in route {
            start = start.max(self.links[l.index()].busy_until());
        }
        start = start.max(self.mem_ctl[src.index()].busy_until());
        // Occupy them for their own service windows.
        for l in route {
            let svc = (bytes as f64 / self.link_bw[l.index()]).round() as u64;
            self.links[l.index()].occupy(start, svc);
        }
        let src_svc = (bytes as f64 / self.mem_bw[src.index()]).round() as u64;
        self.mem_ctl[src.index()].occupy(start, src_svc);
        if dst != src {
            let dst_svc = (bytes as f64 / self.mem_bw[dst.index()]).round() as u64;
            self.mem_ctl[dst.index()].occupy(start, dst_svc);
        }
        let duration = (bytes as f64 / initiator_bw).round() as u64;
        TransferOutcome {
            start,
            end: start + duration,
            wait_ns: start.since(now),
        }
    }

    /// Occupy the route for a latency-bound access of `bytes` (application
    /// reads/writes). Like [`Interconnect::transfer`] but the initiator
    /// duration is supplied by the caller's latency/bandwidth model.
    pub fn access(
        &mut self,
        topo: &Topology,
        now: SimTime,
        from: NodeId,
        mem: NodeId,
        bytes: u64,
        duration_ns: u64,
    ) -> TransferOutcome {
        let route = topo.route(from, mem);
        let mut start = now;
        for l in route {
            start = start.max(self.links[l.index()].busy_until());
        }
        start = start.max(self.mem_ctl[mem.index()].busy_until());
        for l in route {
            let svc = (bytes as f64 / self.link_bw[l.index()]).round() as u64;
            self.links[l.index()].occupy(start, svc);
        }
        let svc = (bytes as f64 / self.mem_bw[mem.index()]).round() as u64;
        self.mem_ctl[mem.index()].occupy(start, svc);
        TransferOutcome {
            start,
            end: start + duration_ns,
            wait_ns: start.since(now),
        }
    }

    /// Total queueing-visible busy time on one link (diagnostics).
    pub fn link_busy_ns(&self, link: usize) -> u64 {
        self.links[link].total_busy_ns()
    }

    /// The link resources, in link-id order (utilisation reporting).
    pub fn link_resources(&self) -> &[Resource] {
        &self.links
    }

    /// The memory-controller resources, in node-id order (utilisation
    /// reporting).
    pub fn mem_resources(&self) -> &[Resource] {
        &self.mem_ctl
    }

    /// Total busy time on one node's memory controller (diagnostics).
    pub fn mem_busy_ns(&self, node: NodeId) -> u64 {
        self.mem_ctl[node.index()].total_busy_ns()
    }

    /// Reset all resources (between experiment repetitions).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
        for m in &mut self.mem_ctl {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets;

    #[test]
    fn local_transfer_uses_only_local_mc() {
        let topo = presets::opteron_4p();
        let mut ic = Interconnect::new(&topo);
        let t = ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(0), 4096, 1.0);
        assert_eq!(t.start, SimTime(0));
        assert_eq!(t.end, SimTime(4096)); // 4 kB at 1 GB/s
        assert!(ic.mem_busy_ns(NodeId(0)) > 0);
        assert_eq!(ic.link_busy_ns(0), 0);
    }

    #[test]
    fn remote_transfer_occupies_route() {
        let topo = presets::opteron_4p();
        let mut ic = Interconnect::new(&topo);
        // 0 -> 3 is two hops on the square.
        ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(3), 4096, 1.0);
        let busy: u64 = (0..topo.link_count()).map(|l| ic.link_busy_ns(l)).sum();
        // Two links each busy 4096/4.0 = 1024 ns.
        assert_eq!(busy, 2048);
        assert!(ic.mem_busy_ns(NodeId(0)) > 0);
        assert!(ic.mem_busy_ns(NodeId(3)) > 0);
        assert_eq!(ic.mem_busy_ns(NodeId(1)), 0);
    }

    #[test]
    fn concurrent_copies_share_link_bandwidth() {
        // Two 1 GB/s kernel copies over one 4 GB/s link: the second queues
        // only behind the first's *link window* (1/4 of its duration), not
        // behind the whole copy.
        let topo = presets::two_node();
        let mut ic = Interconnect::new(&topo);
        let t1 = ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(1), 4096, 1.0);
        let t2 = ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(1), 4096, 1.0);
        assert_eq!(t1.end, SimTime(4096));
        // Second starts when the first's link occupation (1024 ns) ends.
        assert_eq!(t2.start, SimTime(1024));
        assert_eq!(t2.end, SimTime(1024 + 4096));
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let topo = presets::opteron_4p();
        let mut ic = Interconnect::new(&topo);
        // 0->1 and 2->3 use different links and different MCs.
        let a = ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(1), 4096, 1.0);
        let b = ic.transfer(&topo, SimTime(0), NodeId(2), NodeId(3), 4096, 1.0);
        assert_eq!(a.start, SimTime(0));
        assert_eq!(b.start, SimTime(0));
    }

    #[test]
    fn access_charges_supplied_duration() {
        let topo = presets::two_node();
        let mut ic = Interconnect::new(&topo);
        let t = ic.access(&topo, SimTime(10), NodeId(0), NodeId(1), 64, 100);
        assert_eq!(t.start, SimTime(10));
        assert_eq!(t.end, SimTime(110));
    }

    #[test]
    fn reset_clears_state() {
        let topo = presets::two_node();
        let mut ic = Interconnect::new(&topo);
        ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(1), 4096, 1.0);
        ic.reset();
        assert_eq!(ic.link_busy_ns(0), 0);
        let t = ic.transfer(&topo, SimTime(0), NodeId(0), NodeId(1), 4096, 1.0);
        assert_eq!(t.start, SimTime(0));
    }
}
