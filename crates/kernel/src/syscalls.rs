//! The migration and placement syscalls.
//!
//! * [`Kernel::move_pages`] — §2.3/§3.1, with the quadratic and patched
//!   destination-node lookups both implemented (the lookup is *actually
//!   performed* in host code, so the complexity difference is real, and its
//!   modelled virtual-time cost is charged on top);
//! * [`Kernel::migrate_pages`] — §2.3, whole-address-space walk;
//! * [`Kernel::madvise_next_touch`] — §3.3, Figure 2 left half;
//! * [`Kernel::mprotect`] — §3.2 (the user-space next-touch building block);
//! * [`Kernel::mbind`] / [`Kernel::set_mempolicy`] — §2.3 placement;
//! * [`Kernel::mmap_huge`] and [`Kernel::replicate_read_only`] — the §6
//!   future-work extensions.

use crate::Kernel;
use numa_sim::{SimTime, TraceEventKind};
use numa_stats::{Breakdown, CostComponent, Counter};
use numa_topology::{CoreId, NodeId};
use numa_vm::{
    AddressSpace, FrameAllocator, MemPolicy, PageRange, Protection, PteFlags, Tlb, VirtAddr,
    VmError, VmaKind, PAGES_PER_HUGE, PAGE_SIZE,
};

/// Completion time and cost decomposition of one syscall.
#[derive(Debug, Clone)]
pub struct SyscallOutcome {
    /// Virtual time at which the syscall returns.
    pub end: SimTime,
    /// Where the time went.
    pub breakdown: Breakdown,
}

/// Per-page status reported by `move_pages` (the syscall's status array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageStatus {
    /// Page migrated; now on this node.
    Moved(NodeId),
    /// Page was already on the requested node.
    AlreadyThere(NodeId),
    /// Page not present (never touched, or unmapped by a racer mid-copy)
    /// — `-ENOENT`.
    NotPresent,
    /// Address not covered by any mapping — `-EFAULT`.
    NoVma,
    /// Destination node out of frames — `-ENOMEM`. Degradable: the page
    /// stays on its source node and the caller keeps running.
    NoMemory,
    /// Transient failure (page momentarily pinned/locked) — `-EBUSY`.
    /// Retryable: the engine and the user-space runtime re-attempt these
    /// under their retry policies.
    Busy,
}

/// Result of a `move_pages` call.
#[derive(Debug, Clone)]
pub struct MovePagesResult {
    /// Timing.
    pub outcome: SyscallOutcome,
    /// One status per requested page, in request order.
    pub status: Vec<PageStatus>,
    /// Number of pages actually copied.
    pub moved: u64,
}

impl Kernel {
    /// `move_pages(2)`: migrate each `pages[i]` to `dest[i]`.
    ///
    /// With `config.patched_move_pages == false` this performs (and
    /// charges for) the historical per-page linear scan over the
    /// destination-node array, reproducing the quadratic complexity the
    /// paper diagnosed (§3.1, Fig. 4 "no patch" curve).
    #[allow(clippy::too_many_arguments)]
    pub fn move_pages(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        pages: &[VirtAddr],
        dest: &[NodeId],
    ) -> Result<MovePagesResult, VmError> {
        if pages.len() != dest.len() {
            return Err(VmError::Unsupported("pages/dest length mismatch"));
        }
        self.trace
            .record(now, TraceEventKind::SyscallEnter { name: "move_pages" });
        let (mut t, mut b) = self.move_pages_begin(now);

        let n = pages.len();
        let unpatched_n = if self.config.patched_move_pages { 0 } else { n };
        let mut status = Vec::with_capacity(n);
        let mut moved = 0u64;
        for (i, addr) in pages.iter().enumerate() {
            // Destination lookup: the bug vs the fix. With the historical
            // implementation the scan is really executed, so host-side
            // profiles show the same quadratic shape the paper saw; its
            // modelled virtual-time cost is charged by `move_page_step`.
            let dst = if self.config.patched_move_pages {
                dest[i]
            } else {
                quadratic_lookup(dest, i)
            };
            let (end, sb, st) = self.move_page_step(space, frames, t, *addr, dst, unpatched_n);
            t = end;
            b.merge(&sb);
            if matches!(st, PageStatus::Moved(_)) {
                moved += 1;
            }
            status.push(st);
        }

        // One batched shootdown for the whole call.
        let (end, sb) = self.migration_shootdown(tlb, t, core);
        t = end;
        b.merge(&sb);

        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "move_pages",
                pages: moved,
                dur_ns: t.since(now),
            },
        );
        Ok(MovePagesResult {
            outcome: SyscallOutcome {
                end: t,
                breakdown: b,
            },
            status,
            moved,
        })
    }

    /// The base bookkeeping of a `move_pages` call (taking the mmap lock),
    /// exposed so the machine engine can execute syscalls page-by-page and
    /// keep concurrent callers correctly interleaved in virtual time.
    pub fn move_pages_begin(&mut self, now: SimTime) -> (SimTime, Breakdown) {
        let mut b = Breakdown::new();
        let cost = self.topology().cost();
        let base = cost.move_pages_base_ns;
        let end = if cost.mmap_lock_serializes_base {
            self.locks
                .mmap_locked(now, base, CostComponent::MovePagesControl, &mut b)
        } else {
            b.add(CostComponent::MovePagesControl, base);
            now + base
        };
        (end, b)
    }

    /// Migrate one page of an in-progress `move_pages` call (engine
    /// micro-step). `unpatched_n` is the destination-array length, used to
    /// charge the historical quadratic lookup when the kernel is
    /// un-patched. Returns the completion time, costs, and the page status.
    #[allow(clippy::too_many_arguments)]
    pub fn move_page_step(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        addr: VirtAddr,
        dest: NodeId,
        unpatched_n: usize,
    ) -> (SimTime, Breakdown, PageStatus) {
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let mut t = now;
        if !self.config.patched_move_pages && unpatched_n > 0 {
            let lookup_ns =
                (cost.unpatched_lookup_ns_per_entry * unpatched_n as f64).round() as u64;
            b.add(CostComponent::QuadraticLookup, lookup_ns);
            t += lookup_ns;
        }
        let status = self.move_one_page(space, frames, &mut t, &mut b, addr, dest, cost);
        if matches!(status, PageStatus::Moved(_)) {
            self.counters.add(Counter::PagesMovedSyscall, 1);
        }
        (t, b, status)
    }

    /// The batched TLB shootdown that ends a migration syscall (engine
    /// micro-step).
    pub fn migration_shootdown(
        &mut self,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
    ) -> (SimTime, Breakdown) {
        let mut b = Breakdown::new();
        let hit = tlb.shootdown_all(core);
        self.counters.bump(Counter::TlbShootdowns);
        let flush = self.topology().cost().tlb_flush_ns(hit);
        b.add(CostComponent::TlbFlush, flush);
        self.trace
            .record(now, TraceEventKind::TlbShootdown { dur_ns: flush });
        (now + flush, b)
    }

    /// The base bookkeeping of `migrate_pages` (engine micro-path).
    pub fn migrate_pages_begin(&mut self, now: SimTime) -> (SimTime, Breakdown) {
        let mut b = Breakdown::new();
        let cost = self.topology().cost();
        let base = cost.migrate_pages_base_ns;
        let end = if cost.mmap_lock_serializes_base {
            self.locks
                .mmap_locked(now, base, CostComponent::MigratePagesWalk, &mut b)
        } else {
            b.add(CostComponent::MigratePagesWalk, base);
            now + base
        };
        (end, b)
    }

    /// Migrate one page of an in-progress `migrate_pages` walk (engine
    /// micro-step): move the page at `vpn` if its frame is on a node in
    /// `from`, to the positionally-corresponding node in `to`.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_page_step(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        vpn: u64,
        from: &[NodeId],
        to: &[NodeId],
    ) -> (SimTime, Breakdown, Option<PageStatus>) {
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let mut t = now;
        let Some(pte) = space.page_table.get(vpn) else {
            return (t, b, None);
        };
        if pte.flags.contains(PteFlags::HUGE) && !self.config.huge_page_migration {
            return (t, b, None);
        }
        let old_frame = pte.frame;
        let huge = pte.flags.contains(PteFlags::HUGE);
        let src = frames.node_of(old_frame);
        let Some(pos) = from.iter().position(|n| *n == src) else {
            return (t, b, None);
        };
        let dst = to[pos];
        if src == dst {
            t = self.locks.pt_serialized(
                t,
                cost.migrate_pages_control_ns,
                cost.pt_lock_fraction,
                CostComponent::MigratePagesWalk,
                &mut b,
            );
            self.counters.bump(Counter::PagesAlreadyPlaced);
            return (t, b, Some(PageStatus::AlreadyThere(dst)));
        }
        let bytes = if huge { cost.huge_page_size } else { PAGE_SIZE };
        // Injection decision precedes all side effects (see move_one_page).
        match self.inject(t, numa_sim::FaultSite::MigratePagesCopy) {
            Some(numa_sim::FaultKind::TransientCopy) => {
                self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
                return (t, b, Some(PageStatus::Busy));
            }
            Some(numa_sim::FaultKind::FrameExhausted) => {
                self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
                self.degrade(t, vpn, "frame_exhausted");
                return (t, b, Some(PageStatus::NoMemory));
            }
            Some(numa_sim::FaultKind::RacingUnmap) => {
                t = self.locked_migration_copy(
                    t,
                    src,
                    dst,
                    bytes,
                    cost.migrate_pages_control_ns,
                    CostComponent::MigratePagesWalk,
                    CostComponent::FaultCopy,
                    &mut b,
                );
                self.degrade(t, vpn, "racing_unmap");
                return (t, b, Some(PageStatus::NotPresent));
            }
            None => {}
        }
        let Some(new_frame) = self.alloc_frame(frames, dst, None) else {
            self.charge_failed_page(&mut t, &mut b, cost, CostComponent::MigratePagesWalk);
            self.degrade(t, vpn, "frame_exhausted");
            return (t, b, Some(PageStatus::NoMemory));
        };
        let copy_start = t;
        t = self.locked_migration_copy(
            t,
            src,
            dst,
            bytes,
            cost.migrate_pages_control_ns,
            CostComponent::MigratePagesWalk,
            CostComponent::FaultCopy,
            &mut b,
        );
        self.trace.record(
            copy_start,
            TraceEventKind::MigrationCopy {
                page: vpn,
                from: src.0,
                to: dst.0,
                dur_ns: t.since(copy_start),
            },
        );
        frames.copy_contents(old_frame, new_frame);
        let Some(mut entry) = space.page_table.get_mut(vpn) else {
            // Mapping vanished mid-copy: discard the copy, report the
            // page gone (typed status, not an abort).
            frames.free(new_frame);
            self.counters.bump(Counter::FramesFreed);
            self.degrade(t, vpn, "racing_unmap");
            return (t, b, Some(PageStatus::NotPresent));
        };
        entry.frame = new_frame;
        drop(entry); // write back before the replica sync reads it
        frames.free(old_frame);
        self.counters.bump(Counter::FramesFreed);
        self.counters.add(Counter::PagesMovedProcess, 1);
        t = self.pt_note_update(space, t, PageRange::new(vpn, vpn + 1));
        (t, b, Some(PageStatus::Moved(dst)))
    }

    /// Migrate a single page for `move_pages`; shared by the huge-page
    /// extension (which moves `PAGES_PER_HUGE` base pages at once).
    #[allow(clippy::too_many_arguments)]
    fn move_one_page(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        t: &mut SimTime,
        b: &mut Breakdown,
        addr: VirtAddr,
        dst: NodeId,
        cost: &numa_topology::CostModel,
    ) -> PageStatus {
        let Some(vma) = space.find_vma(addr) else {
            return PageStatus::NoVma;
        };
        let huge = vma.huge;
        let vma_start = vma.range.start_vpn;
        let vpn = if huge {
            huge_head(vma_start, addr.vpn())
        } else {
            addr.vpn()
        };
        let Some(pte) = space.page_table.get(vpn) else {
            // A not-present page still costs the lookup and isolate
            // attempt under the page-table lock (cheaper than a move).
            self.charge_failed_page(t, b, cost, CostComponent::MovePagesControl);
            return PageStatus::NotPresent;
        };
        let old_frame = pte.frame;
        let src = frames.node_of(old_frame);

        if src == dst {
            // Control work only, partially serialized on the page-table
            // lock (§4.2: "intensive locking and page-table
            // manipulations").
            *t = self.locks.pt_serialized(
                *t,
                cost.move_pages_control_ns,
                cost.pt_lock_fraction,
                CostComponent::MovePagesControl,
                b,
            );
            self.counters.bump(Counter::PagesAlreadyPlaced);
            return PageStatus::AlreadyThere(dst);
        }

        // Fault injection is decided before any side effect (allocation,
        // lock, interconnect), so a disabled injector leaves this path
        // byte-identical and an injected fault charges only failure costs.
        match self.inject(*t, numa_sim::FaultSite::MovePagesCopy) {
            Some(numa_sim::FaultKind::TransientCopy) => {
                self.charge_failed_page(t, b, cost, CostComponent::MovePagesControl);
                return PageStatus::Busy;
            }
            Some(numa_sim::FaultKind::FrameExhausted) => {
                self.charge_failed_page(t, b, cost, CostComponent::MovePagesControl);
                self.degrade(*t, vpn, "frame_exhausted");
                return PageStatus::NoMemory;
            }
            Some(numa_sim::FaultKind::RacingUnmap) => {
                // The unmap is discovered mid-copy: the copy work is
                // wasted but its cost (and contention) is real.
                *t = self.locked_migration_copy(
                    *t,
                    src,
                    dst,
                    if huge { cost.huge_page_size } else { PAGE_SIZE },
                    cost.move_pages_control_ns,
                    CostComponent::MovePagesControl,
                    CostComponent::MovePagesCopy,
                    b,
                );
                self.degrade(*t, vpn, "racing_unmap");
                return PageStatus::NotPresent;
            }
            None => {}
        }

        let Some(new_frame) = self.alloc_frame(frames, dst, None) else {
            self.charge_failed_page(t, b, cost, CostComponent::MovePagesControl);
            self.degrade(*t, vpn, "frame_exhausted");
            return PageStatus::NoMemory;
        };
        let bytes = if huge { cost.huge_page_size } else { PAGE_SIZE };
        let copy_start = *t;
        *t = self.locked_migration_copy(
            *t,
            src,
            dst,
            bytes,
            cost.move_pages_control_ns,
            CostComponent::MovePagesControl,
            CostComponent::MovePagesCopy,
            b,
        );
        self.trace.record(
            copy_start,
            TraceEventKind::MigrationCopy {
                page: vpn,
                from: src.0,
                to: dst.0,
                dur_ns: t.since(copy_start),
            },
        );

        frames.copy_contents(old_frame, new_frame);
        // Typed propagation instead of an `expect`: if the mapping
        // vanished while the copy ran, discard the copy and report the
        // page gone rather than aborting the simulation.
        let Some(mut entry) = space.page_table.get_mut(vpn) else {
            frames.free(new_frame);
            self.counters.bump(Counter::FramesFreed);
            self.degrade(*t, vpn, "racing_unmap");
            return PageStatus::NotPresent;
        };
        entry.frame = new_frame;
        drop(entry); // write back before the replica sync reads it
        frames.free(old_frame);
        self.counters.bump(Counter::FramesFreed);
        if huge {
            self.counters.bump(Counter::HugePagesMoved);
        }
        *t = self.pt_note_update(space, *t, PageRange::new(vpn, vpn + 1));
        PageStatus::Moved(dst)
    }

    /// Charge the (cheaper) cost of a page that could not be migrated:
    /// the kernel still walked the page tables and attempted the isolate
    /// under the page-table lock before bailing, but no copy ever ran.
    pub(crate) fn charge_failed_page(
        &mut self,
        t: &mut SimTime,
        b: &mut Breakdown,
        cost: &numa_topology::CostModel,
        component: CostComponent,
    ) {
        *t = self.locks.pt_serialized(
            *t,
            cost.move_pages_control_ns,
            cost.pt_lock_fraction,
            component,
            b,
        );
    }

    /// Account a migration that degraded gracefully: the page stays on
    /// its source node and the caller keeps running.
    pub(crate) fn degrade(&mut self, now: SimTime, vpn: u64, reason: &'static str) {
        self.counters.bump(Counter::MigrationsDegraded);
        self.trace
            .record(now, TraceEventKind::MigrationDegraded { page: vpn, reason });
    }

    /// `migrate_pages(2)`: move every page currently on a node in `from`
    /// to the positionally-corresponding node in `to`, walking the whole
    /// address space in order (§2.3, §4.2).
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_pages(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        from: &[NodeId],
        to: &[NodeId],
    ) -> Result<MovePagesResult, VmError> {
        if from.is_empty() || from.len() != to.len() {
            return Err(VmError::Unsupported("from/to node sets mismatch"));
        }
        self.trace.record(
            now,
            TraceEventKind::SyscallEnter {
                name: "migrate_pages",
            },
        );
        let (mut t, mut b) = self.migrate_pages_begin(now);

        let mut moved = 0u64;
        let mut status = Vec::new();
        // The ordered walk is what gives migrate_pages its better locality
        // and lower per-page control cost (§4.2).
        for vpn in space.page_table.sorted_vpns() {
            let (end, sb, st) = self.migrate_page_step(space, frames, t, vpn, from, to);
            t = end;
            b.merge(&sb);
            if let Some(st) = st {
                if matches!(st, PageStatus::Moved(_)) {
                    moved += 1;
                }
                status.push(st);
            }
        }

        let (end, sb) = self.migration_shootdown(tlb, t, core);
        t = end;
        b.merge(&sb);

        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "migrate_pages",
                pages: moved,
                dur_ns: t.since(now),
            },
        );
        Ok(MovePagesResult {
            outcome: SyscallOutcome {
                end: t,
                breakdown: b,
            },
            status,
            moved,
        })
    }

    /// `madvise(addr, len, MADV_MIGRATE_NEXT_TOUCH)` (§3.3): clear the
    /// access bits of every *present* page in the range and set the
    /// next-touch PTE flag; the next touching thread's fault migrates the
    /// page to its node. Pages not yet faulted in are untouched — they
    /// will first-touch correctly anyway.
    #[allow(clippy::too_many_arguments)]
    pub fn madvise_next_touch(
        &mut self,
        space: &mut AddressSpace,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        range: PageRange,
    ) -> Result<SyscallOutcome, VmError> {
        if !self.config.kernel_next_touch {
            return Err(VmError::Unsupported("kernel next-touch disabled"));
        }
        // The paper's implementation only supports private anonymous
        // memory (§6); the extension lifts that.
        if !self.config.next_touch_shared {
            let mut vpn = range.start_vpn;
            while vpn < range.end_vpn {
                let Some(vma) = space.find_vma(VirtAddr::from_vpn(vpn)) else {
                    return Err(VmError::NoVma(VirtAddr::from_vpn(vpn)));
                };
                if vma.kind != VmaKind::PrivateAnonymous {
                    return Err(VmError::Unsupported(
                        "next-touch on non-private mapping (enable next_touch_shared)",
                    ));
                }
                vpn = vma.range.end_vpn;
            }
        }

        self.trace
            .record(now, TraceEventKind::SyscallEnter { name: "madvise" });
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let mut marked = 0u64;
        // One linear slab walk marks the whole range — mapped pages come
        // back in ascending vpn order, matching the old per-page loop.
        space.page_table.update_range(range, |_vpn, pte| {
            if pte.flags.contains(PteFlags::HUGE) || !pte.is_next_touch() {
                pte.mark_next_touch();
                marked += 1;
            }
        });
        let ns = cost.madvise_base_ns + cost.madvise_per_page_ns * marked;
        b.add(CostComponent::Madvise, ns);
        let mut t = now + ns;
        t = self.pt_note_update(space, t, range);

        // Removing access bits requires a shootdown so no stale TLB entry
        // lets a core skip the fault.
        if marked > 0 {
            let hit = tlb.shootdown_all(core);
            self.counters.bump(Counter::TlbShootdowns);
            let flush = cost.tlb_flush_ns(hit);
            b.add(CostComponent::TlbFlush, flush);
            t += flush;
        }
        self.counters.add(Counter::PagesMarkedNextTouch, marked);
        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "madvise",
                pages: marked,
                dur_ns: t.since(now),
            },
        );
        Ok(SyscallOutcome {
            end: t,
            breakdown: b,
        })
    }

    /// `munmap(2)` of the mapping that starts at `addr`: tear down the
    /// VMA, free every backing frame, and flush stale translations.
    ///
    /// The PT teardown walk is charged like the madvise range walk (base
    /// plus per-present-page), serialized under the mmap lock when the
    /// cost model says base bookkeeping holds it. Multitenant churn leans
    /// on this path: a departing tenant's frames return to the shared pool
    /// only once its unmap has paid the teardown and shootdown.
    pub fn munmap(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        addr: VirtAddr,
    ) -> Result<SyscallOutcome, VmError> {
        self.trace
            .record(now, TraceEventKind::SyscallEnter { name: "munmap" });
        let freed = space.munmap(addr)?;
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let pages = freed.len() as u64;
        let ns = cost.madvise_base_ns + cost.madvise_per_page_ns * pages;
        let mut t = if cost.mmap_lock_serializes_base {
            self.locks
                .mmap_locked(now, ns, CostComponent::Other, &mut b)
        } else {
            b.add(CostComponent::Other, ns);
            now + ns
        };
        for f in freed {
            frames.free(f);
            self.counters.bump(Counter::FramesFreed);
        }
        // Any core may hold stale translations for the torn-down range.
        if pages > 0 {
            let hit = tlb.shootdown_all(core);
            self.counters.bump(Counter::TlbShootdowns);
            let flush = cost.tlb_flush_ns(hit);
            b.add(CostComponent::TlbFlush, flush);
            t += flush;
        }
        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "munmap",
                pages,
                dur_ns: t.since(now),
            },
        );
        Ok(SyscallOutcome {
            end: t,
            breakdown: b,
        })
    }

    /// `mprotect(2)` over a page range. `component` states why the caller
    /// is changing protection so the Figure-6 breakdown can distinguish
    /// the user-space next-touch *mark* from its *restore*.
    #[allow(clippy::too_many_arguments)]
    pub fn mprotect(
        &mut self,
        space: &mut AddressSpace,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        range: PageRange,
        prot: Protection,
        component: CostComponent,
    ) -> Result<SyscallOutcome, VmError> {
        space.mprotect(range, prot)?;
        self.trace
            .record(now, TraceEventKind::SyscallEnter { name: "mprotect" });
        // Keep PTE access bits consistent with the new VMA protection
        // (preserving the next-touch and huge flags) in one linear slab
        // walk over the range.
        space.page_table.update_range(range, |_vpn, pte| {
            let keep = pte.flags & (PteFlags::NEXT_TOUCH | PteFlags::HUGE | PteFlags::REPLICA);
            let mut flags = PteFlags::PRESENT | keep;
            match prot {
                Protection::None => {}
                Protection::ReadOnly => flags |= PteFlags::READ,
                Protection::ReadWrite => flags |= PteFlags::READ | PteFlags::WRITE,
            }
            // A next-touch-marked page stays fault-on-touch.
            if pte.flags.contains(PteFlags::NEXT_TOUCH) {
                flags = (flags & !(PteFlags::READ | PteFlags::WRITE)) | PteFlags::NEXT_TOUCH;
            }
            pte.flags = flags;
        });
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let ns = cost.mprotect_base_ns + cost.mprotect_per_page_ns * range.pages();
        b.add(component, ns);
        let mut t = now + ns;
        t = self.pt_note_update(space, t, range);

        // Every mprotect flushes the TLB on all processors (§3.3 names
        // this as a key overhead of the user-space model).
        let hit = tlb.shootdown_all(core);
        self.counters.bump(Counter::TlbShootdowns);
        let flush = cost.tlb_flush_ns(hit);
        b.add(CostComponent::TlbFlush, flush);
        t += flush;

        self.counters.bump(Counter::MprotectCalls);
        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "mprotect",
                pages: range.pages(),
                dur_ns: t.since(now),
            },
        );
        Ok(SyscallOutcome {
            end: t,
            breakdown: b,
        })
    }

    /// `mbind(2)`: set the placement policy of a range.
    pub fn mbind(
        &mut self,
        space: &mut AddressSpace,
        now: SimTime,
        range: PageRange,
        policy: MemPolicy,
    ) -> Result<SyscallOutcome, VmError> {
        space.for_each_vma_in(range, |vma| vma.policy = policy.clone())?;
        let cost = self.topology().cost();
        let mut b = Breakdown::new();
        b.add(CostComponent::Other, cost.mbind_base_ns);
        self.trace.record(
            now,
            TraceEventKind::SyscallExit {
                name: "mbind",
                pages: range.pages(),
                dur_ns: cost.mbind_base_ns,
            },
        );
        Ok(SyscallOutcome {
            end: now + cost.mbind_base_ns,
            breakdown: b,
        })
    }

    /// `mbind(2)` with `MPOL_MF_MOVE`: set the policy **and** migrate the
    /// already-populated pages that violate it, like the real flag. Pages
    /// land where the policy would have placed them at fault time (with
    /// the caller's node standing in for "local").
    #[allow(clippy::too_many_arguments)]
    pub fn mbind_move(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        tlb: &mut Tlb,
        now: SimTime,
        core: CoreId,
        range: PageRange,
        policy: MemPolicy,
    ) -> Result<MovePagesResult, VmError> {
        self.mbind(space, now, range, policy.clone())?;
        let local = self.topology().node_of_core(core);
        let (mut t, mut b) = self.move_pages_begin(now);
        let mut moved = 0u64;
        let mut status = Vec::new();
        // One linear walk snapshots the mapped vpns of the range; the
        // per-page move steps below mutate the table, so they run off the
        // snapshot (each step only touches its own vpn).
        let mapped: Vec<u64> = space.page_table.walk_range(range).map(|(v, _)| v).collect();
        for vpn in mapped {
            let Some(pte) = space.page_table.get(vpn) else {
                continue;
            };
            let want = policy.choose_node(vpn, local);
            if frames.node_of(pte.frame) == want {
                self.counters.bump(Counter::PagesAlreadyPlaced);
                status.push(PageStatus::AlreadyThere(want));
                continue;
            }
            let (end, sb, st) =
                self.move_page_step(space, frames, t, VirtAddr::from_vpn(vpn), want, 0);
            t = end;
            b.merge(&sb);
            if matches!(st, PageStatus::Moved(_)) {
                moved += 1;
            }
            status.push(st);
        }
        let (end, sb) = self.migration_shootdown(tlb, t, core);
        t = end;
        b.merge(&sb);
        Ok(MovePagesResult {
            outcome: SyscallOutcome {
                end: t,
                breakdown: b,
            },
            status,
            moved,
        })
    }

    /// `set_mempolicy(2)`: set the process-default policy.
    pub fn set_mempolicy(
        &mut self,
        space: &mut AddressSpace,
        now: SimTime,
        policy: MemPolicy,
    ) -> SyscallOutcome {
        space.set_default_policy(policy);
        let cost = self.topology().cost();
        let mut b = Breakdown::new();
        b.add(CostComponent::Other, cost.mbind_base_ns);
        SyscallOutcome {
            end: now + cost.mbind_base_ns,
            breakdown: b,
        }
    }

    /// Map `len` bytes backed by huge pages (extension). Requires
    /// `config.huge_page_migration`; the mapping length is rounded up to a
    /// whole number of huge pages.
    pub fn mmap_huge(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        policy: MemPolicy,
    ) -> Result<VirtAddr, VmError> {
        if !self.config.huge_page_migration {
            return Err(VmError::Unsupported("huge pages disabled"));
        }
        let cost = self.topology().cost();
        let rounded = len.div_ceil(cost.huge_page_size) * cost.huge_page_size;
        let addr = space.mmap(
            rounded,
            Protection::ReadWrite,
            VmaKind::PrivateAnonymous,
            policy,
        )?;
        space.set_vma_huge(addr)?;
        Ok(addr)
    }

    /// Replicate every present read-only page of `range` onto all nodes
    /// (extension, §6: "replicating read-only pages among NUMA nodes so as
    /// to achieve local access performance from anywhere"). The range's
    /// protection must already be read-only; writes to replicated pages
    /// are not supported.
    #[allow(clippy::too_many_arguments)]
    pub fn replicate_read_only(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        now: SimTime,
        range: PageRange,
    ) -> Result<SyscallOutcome, VmError> {
        if !self.config.replication {
            return Err(VmError::Unsupported("replication disabled"));
        }
        // Validate protection first.
        let mut vpn = range.start_vpn;
        while vpn < range.end_vpn {
            let Some(vma) = space.find_vma(VirtAddr::from_vpn(vpn)) else {
                return Err(VmError::NoVma(VirtAddr::from_vpn(vpn)));
            };
            if vma.prot != Protection::ReadOnly {
                return Err(VmError::Unsupported("replication requires read-only range"));
            }
            vpn = vma.range.end_vpn;
        }
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut b = Breakdown::new();
        let mut t = now;
        let mut replicated = 0u64;
        // Snapshot mapped (vpn, frame) pairs in one walk; the loop body
        // allocates and flags, which needs the table mutable.
        let mapped: Vec<(u64, numa_vm::FrameId)> = space
            .page_table
            .walk_range(range)
            .map(|(v, p)| (v, p.frame))
            .collect();
        for (vpn, home_frame) in mapped {
            let home = frames.node_of(home_frame);
            let mut copies = Vec::new();
            for node in topo.node_ids() {
                if node == home {
                    continue;
                }
                let Some(f) = self.alloc_frame(frames, node, None) else {
                    continue;
                };
                let xfer = self.interconnect.transfer(
                    &topo,
                    t,
                    home,
                    node,
                    PAGE_SIZE,
                    cost.kernel_copy_bw,
                );
                b.add(CostComponent::Other, xfer.end.since(t));
                t = xfer.end;
                frames.copy_contents(home_frame, f);
                copies.push((node, f));
            }
            if !copies.is_empty() {
                copies.push((home, home_frame));
                self.replicas_mut().insert(vpn, copies);
                replicated += 1;
                if let Some(mut entry) = space.page_table.get_mut(vpn) {
                    entry.flags |= PteFlags::REPLICA;
                }
            }
        }
        self.counters.add(Counter::PagesReplicated, replicated);
        t = self.pt_note_update(space, t, range);
        Ok(SyscallOutcome {
            end: t,
            breakdown: b,
        })
    }

    /// Drop all replicas in `range`, freeing their frames (needed before a
    /// replicated page can be written or migrated).
    pub fn unreplicate(
        &mut self,
        space: &mut AddressSpace,
        frames: &mut FrameAllocator,
        range: PageRange,
    ) {
        let mapped: Vec<(u64, numa_vm::FrameId)> = space
            .page_table
            .walk_range(range)
            .map(|(v, p)| (v, p.frame))
            .collect();
        for (vpn, home_frame) in mapped {
            if let Some(copies) = self.replicas_mut().remove(&vpn) {
                for (_, f) in copies {
                    if f != home_frame {
                        frames.free(f);
                    }
                }
            }
            if let Some(mut pte) = space.page_table.get_mut(vpn) {
                pte.flags = pte.flags & !PteFlags::REPLICA;
            }
        }
        // unreplicate has no virtual-time position of its own; propagate
        // the flag change to PT replicas without charging anything.
        let _ = space.pt_note_update(range);
    }
}

/// The historical `do_pages_move` lookup: scan the whole destination array
/// to find slot `i`'s node. Deliberately O(n): the host really pays it.
fn quadratic_lookup(dest: &[NodeId], i: usize) -> NodeId {
    let mut found = dest[0];
    for (j, node) in dest.iter().enumerate() {
        // The real code compared user-space pointers per chunk; the
        // structural point is the full scan per processed page.
        if j == i {
            found = *node;
        }
    }
    found
}

/// Head vpn of the huge page containing `vpn` within a VMA starting at
/// `vma_start` (huge framing is relative to the VMA base).
pub(crate) fn huge_head(vma_start: u64, vpn: u64) -> u64 {
    vma_start + (vpn - vma_start) / PAGES_PER_HUGE * PAGES_PER_HUGE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::Fixture;
    use crate::FaultResolution;

    fn touch_all(fx: &mut Fixture, base: VirtAddr, pages: u64, core: CoreId) -> SimTime {
        let mut t = SimTime::ZERO;
        for p in 0..pages {
            match fx.kernel.handle_fault(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                t,
                core,
                base + p * PAGE_SIZE,
                true,
                &mut Breakdown::new(),
            ) {
                FaultResolution::Resolved { end, .. } => t = end,
                other => panic!("unexpected fault outcome {other:?}"),
            }
        }
        t
    }

    #[test]
    fn move_pages_moves_to_requested_nodes() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(4);
        // Populate on node 0 (core 0).
        touch_all(&mut fx, base, 4, CoreId(0));
        let pages: Vec<VirtAddr> = (0..4).map(|p| base + p * PAGE_SIZE).collect();
        let dest = vec![NodeId(1); 4];
        let r = fx
            .kernel
            .move_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime(1_000_000),
                CoreId(0),
                &pages,
                &dest,
            )
            .unwrap();
        assert_eq!(r.moved, 4);
        assert!(r.status.iter().all(|s| *s == PageStatus::Moved(NodeId(1))));
        for p in &pages {
            let pte = fx.space.page_table.get(p.vpn()).unwrap();
            assert_eq!(fx.frames.node_of(pte.frame), NodeId(1));
        }
    }

    #[test]
    fn move_pages_preserves_contents() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        touch_all(&mut fx, base, 1, CoreId(0));
        let tag_before = {
            let pte = fx.space.page_table.get(base.vpn()).unwrap();
            fx.frames.get(pte.frame).unwrap().content_tag
        };
        fx.kernel
            .move_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                &[base],
                &[NodeId(2)],
            )
            .unwrap();
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert_eq!(fx.frames.get(pte.frame).unwrap().content_tag, tag_before);
    }

    #[test]
    fn move_pages_statuses() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(3);
        // Only page 0 populated.
        touch_all(&mut fx, base, 1, CoreId(0));
        let pages = vec![
            base,             // present, on node 0
            base + PAGE_SIZE, // not present
            VirtAddr(0x10),   // no vma
        ];
        let dest = vec![NodeId(0), NodeId(1), NodeId(1)];
        let r = fx
            .kernel
            .move_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                &pages,
                &dest,
            )
            .unwrap();
        assert_eq!(r.status[0], PageStatus::AlreadyThere(NodeId(0)));
        assert_eq!(r.status[1], PageStatus::NotPresent);
        assert_eq!(r.status[2], PageStatus::NoVma);
        assert_eq!(r.moved, 0);
    }

    #[test]
    fn move_pages_length_mismatch_rejected() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(1);
        let err = fx
            .kernel
            .move_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                &[base],
                &[],
            )
            .unwrap_err();
        assert!(matches!(err, VmError::Unsupported(_)));
    }

    /// Pins the Linux `move_pages(2)` partial-failure contract: a per-page
    /// failure is reported in the status array and the syscall keeps
    /// processing the remaining pages instead of aborting the batch.
    #[test]
    fn move_pages_partial_failure_keeps_processing() {
        use numa_sim::{FaultKind, FaultPlan, FaultSite};
        let mut fx = Fixture::new();
        let base = fx.map_anon(3);
        touch_all(&mut fx, base, 3, CoreId(0));
        // ENOMEM on the first copy attempt only.
        fx.kernel.set_fault_plan(FaultPlan::new(0).with_schedule(
            FaultSite::MovePagesCopy,
            FaultKind::FrameExhausted,
            vec![0],
        ));
        let pages: Vec<VirtAddr> = (0..3).map(|p| base + p * PAGE_SIZE).collect();
        let r = fx
            .kernel
            .move_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime(1_000_000),
                CoreId(0),
                &pages,
                &[NodeId(1); 3],
            )
            .unwrap();
        assert_eq!(
            r.status,
            vec![
                PageStatus::NoMemory,
                PageStatus::Moved(NodeId(1)),
                PageStatus::Moved(NodeId(1)),
            ]
        );
        assert_eq!(r.moved, 2);
        // Graceful degradation: the failed page stays on its source node,
        // still mapped and readable.
        let pte = fx.space.page_table.get(pages[0].vpn()).unwrap();
        assert_eq!(fx.frames.node_of(pte.frame), NodeId(0));
        assert_eq!(fx.kernel.counters.get(Counter::MigrationsDegraded), 1);
    }

    /// Pins the cost model for failed pages: a page that fails the
    /// isolate/copy still costs something (the page-table walk under the
    /// lock), but strictly less than a page that is actually copied.
    #[test]
    fn failed_page_charges_less_than_moved_page() {
        use numa_sim::{FaultKind, FaultPlan, FaultSite};
        let run_one = |plan: Option<FaultPlan>| -> (PageStatus, u64) {
            let mut fx = Fixture::new();
            let base = fx.map_anon(1);
            touch_all(&mut fx, base, 1, CoreId(0));
            if let Some(plan) = plan {
                fx.kernel.set_fault_plan(plan);
            }
            let r = fx
                .kernel
                .move_pages(
                    &mut fx.space,
                    &mut fx.frames,
                    &mut fx.tlb,
                    SimTime(1_000_000),
                    CoreId(0),
                    &[base],
                    &[NodeId(1)],
                )
                .unwrap();
            (r.status[0], r.outcome.end.since(SimTime(1_000_000)))
        };
        let (ok_status, moved_cost) = run_one(None);
        assert_eq!(ok_status, PageStatus::Moved(NodeId(1)));
        for kind in [FaultKind::TransientCopy, FaultKind::FrameExhausted] {
            let plan = FaultPlan::new(0).with_schedule(FaultSite::MovePagesCopy, kind, vec![0]);
            let (status, failed_cost) = run_one(Some(plan));
            assert_ne!(status, PageStatus::Moved(NodeId(1)), "{kind:?}");
            assert!(failed_cost > 0, "{kind:?}: failure must not be free");
            assert!(
                failed_cost < moved_cost,
                "{kind:?}: failed page cost {failed_cost} must be below \
                 moved cost {moved_cost}"
            );
        }
        // A racing unmap is discovered mid-copy: the wasted copy work is
        // still charged, so it is *not* cheaper than a successful move.
        let plan = FaultPlan::new(0).with_schedule(
            FaultSite::MovePagesCopy,
            FaultKind::RacingUnmap,
            vec![0],
        );
        let (status, unmap_cost) = run_one(Some(plan));
        assert_eq!(status, PageStatus::NotPresent);
        assert!(unmap_cost >= moved_cost);
    }

    #[test]
    fn unpatched_is_slower_and_quadratic() {
        // Same workload through both kernels; the unpatched one must charge
        // the extra lookup time, superlinearly in page count.
        let cost_of = |patched: bool, pages: u64| -> u64 {
            let mut fx = Fixture::with_config(KernelConfigPatched(patched));
            let base = fx.map_anon(pages);
            touch_all(&mut fx, base, pages, CoreId(0));
            let addrs: Vec<VirtAddr> = (0..pages).map(|p| base + p * PAGE_SIZE).collect();
            let dest = vec![NodeId(1); pages as usize];
            let r = fx
                .kernel
                .move_pages(
                    &mut fx.space,
                    &mut fx.frames,
                    &mut fx.tlb,
                    SimTime(10_000_000),
                    CoreId(0),
                    &addrs,
                    &dest,
                )
                .unwrap();
            r.outcome.end.since(SimTime(10_000_000))
        };
        #[allow(non_snake_case)]
        fn KernelConfigPatched(patched: bool) -> crate::KernelConfig {
            crate::KernelConfig {
                patched_move_pages: patched,
                ..crate::KernelConfig::default()
            }
        }
        let p256 = cost_of(true, 256);
        let u256 = cost_of(false, 256);
        let p1024 = cost_of(true, 1024);
        let u1024 = cost_of(false, 1024);
        assert!(u256 > p256);
        // Patched scales ~linearly; unpatched superlinearly.
        let patched_ratio = p1024 as f64 / p256 as f64;
        let unpatched_ratio = u1024 as f64 / u256 as f64;
        assert!(patched_ratio < 5.0, "patched ratio {patched_ratio}");
        assert!(
            unpatched_ratio > patched_ratio * 1.5,
            "unpatched {unpatched_ratio} vs patched {patched_ratio}"
        );
    }

    #[test]
    fn migrate_pages_moves_whole_space() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(8);
        touch_all(&mut fx, base, 8, CoreId(0)); // all on node 0
        let r = fx
            .kernel
            .migrate_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                &[NodeId(0)],
                &[NodeId(2)],
            )
            .unwrap();
        assert_eq!(r.moved, 8);
        for p in 0..8u64 {
            let pte = fx.space.page_table.get(base.vpn() + p).unwrap();
            assert_eq!(fx.frames.node_of(pte.frame), NodeId(2));
        }
    }

    #[test]
    fn migrate_pages_ignores_other_nodes() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(2);
        // Page 0 touched from node 0, page 1 from node 1 (core 4 is on
        // node 1 in the 4x4 preset).
        touch_all(&mut fx, base, 1, CoreId(0));
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(4),
            base + PAGE_SIZE,
            true,
            &mut Breakdown::new(),
        );
        let r = fx
            .kernel
            .migrate_pages(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                &[NodeId(0)],
                &[NodeId(3)],
            )
            .unwrap();
        assert_eq!(r.moved, 1);
        let pte1 = fx.space.page_table.get(base.vpn() + 1).unwrap();
        assert_eq!(
            fx.frames.node_of(pte1.frame),
            NodeId(1),
            "node-1 page untouched"
        );
    }

    #[test]
    fn madvise_marks_only_present_pages() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(4);
        touch_all(&mut fx, base, 2, CoreId(0));
        let range = PageRange::new(base.vpn(), base.vpn() + 4);
        fx.kernel
            .madvise_next_touch(&mut fx.space, &mut fx.tlb, SimTime::ZERO, CoreId(0), range)
            .unwrap();
        assert!(fx.space.page_table.get(base.vpn()).unwrap().is_next_touch());
        assert!(fx
            .space
            .page_table
            .get(base.vpn() + 1)
            .unwrap()
            .is_next_touch());
        assert!(fx.space.page_table.get(base.vpn() + 2).is_none());
        assert_eq!(fx.kernel.counters.get(Counter::PagesMarkedNextTouch), 2);
    }

    #[test]
    fn madvise_requires_feature_and_private_mapping() {
        let mut fx = Fixture::with_config(crate::KernelConfig {
            kernel_next_touch: false,
            ..crate::KernelConfig::default()
        });
        let base = fx.map_anon(1);
        let range = PageRange::new(base.vpn(), base.vpn() + 1);
        assert!(fx
            .kernel
            .madvise_next_touch(&mut fx.space, &mut fx.tlb, SimTime::ZERO, CoreId(0), range)
            .is_err());

        // Shared mapping without the extension.
        let mut fx = Fixture::new();
        let addr = fx
            .space
            .mmap(
                PAGE_SIZE,
                Protection::ReadWrite,
                VmaKind::SharedAnonymous,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let range = PageRange::new(addr.vpn(), addr.vpn() + 1);
        let err = fx
            .kernel
            .madvise_next_touch(&mut fx.space, &mut fx.tlb, SimTime::ZERO, CoreId(0), range)
            .unwrap_err();
        assert!(matches!(err, VmError::Unsupported(_)));
    }

    #[test]
    fn mprotect_updates_pte_bits_and_counts_flush() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(2);
        touch_all(&mut fx, base, 2, CoreId(0));
        let range = PageRange::new(base.vpn(), base.vpn() + 2);
        fx.kernel
            .mprotect(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                range,
                Protection::None,
                CostComponent::MprotectMark,
            )
            .unwrap();
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert!(!pte.permits(false) && !pte.permits(true));
        assert!(fx.tlb.episodes() >= 1);

        fx.kernel
            .mprotect(
                &mut fx.space,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                range,
                Protection::ReadWrite,
                CostComponent::MprotectRestore,
            )
            .unwrap();
        let pte = fx.space.page_table.get(base.vpn()).unwrap();
        assert!(pte.permits(true));
    }

    #[test]
    fn mbind_move_relocates_offenders() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(8);
        touch_all(&mut fx, base, 8, CoreId(0)); // all on node 0
        let range = PageRange::new(base.vpn(), base.vpn() + 8);
        let r = fx
            .kernel
            .mbind_move(
                &mut fx.space,
                &mut fx.frames,
                &mut fx.tlb,
                SimTime::ZERO,
                CoreId(0),
                range,
                MemPolicy::interleave_all(4),
            )
            .unwrap();
        // vpn % 4 == 0 pages were already right (if base vpn aligned
        // appropriately, 2 of 8); the rest moved.
        assert_eq!(
            r.moved + fx.kernel.counters.get(Counter::PagesAlreadyPlaced),
            8
        );
        for p in 0..8u64 {
            let vpn = base.vpn() + p;
            let pte = fx.space.page_table.get(vpn).unwrap();
            assert_eq!(
                fx.frames.node_of(pte.frame),
                NodeId((vpn % 4) as u16),
                "page {p} must satisfy the interleave policy"
            );
        }
        // Policy itself also set for future faults.
        assert!(matches!(
            fx.space.find_vma(base).unwrap().policy,
            MemPolicy::Interleave(_)
        ));
    }

    #[test]
    fn mbind_sets_policy() {
        let mut fx = Fixture::new();
        let base = fx.map_anon(4);
        let range = PageRange::new(base.vpn(), base.vpn() + 4);
        fx.kernel
            .mbind(
                &mut fx.space,
                SimTime::ZERO,
                range,
                MemPolicy::Bind(NodeId(3)),
            )
            .unwrap();
        assert_eq!(
            fx.space.find_vma(base).unwrap().policy,
            MemPolicy::Bind(NodeId(3))
        );
    }

    #[test]
    fn huge_mmap_requires_feature() {
        let mut fx = Fixture::new();
        assert!(fx
            .kernel
            .mmap_huge(&mut fx.space, 1 << 20, MemPolicy::FirstTouch)
            .is_err());
        let mut fx = Fixture::with_config(crate::KernelConfig {
            huge_page_migration: true,
            ..crate::KernelConfig::default()
        });
        let addr = fx
            .kernel
            .mmap_huge(&mut fx.space, 1 << 20, MemPolicy::FirstTouch)
            .unwrap();
        let vma = fx.space.find_vma(addr).unwrap();
        assert!(vma.huge);
        // Rounded up to one huge page.
        assert_eq!(vma.range.pages(), PAGES_PER_HUGE);
    }

    #[test]
    fn quadratic_lookup_finds_right_slot() {
        let dest = vec![NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(quadratic_lookup(&dest, 0), NodeId(0));
        assert_eq!(quadratic_lookup(&dest, 2), NodeId(2));
    }

    #[test]
    fn huge_head_math() {
        assert_eq!(huge_head(0, 0), 0);
        assert_eq!(huge_head(0, 511), 0);
        assert_eq!(huge_head(0, 512), 512);
        assert_eq!(huge_head(100, 100 + 513), 100 + 512);
    }
}
