//! Property-based tests for the migration syscalls: placement follows the
//! request, contents survive, frames are conserved — for arbitrary page
//! subsets, destinations and orderings.

use numa_kernel::{Kernel, KernelConfig, PageStatus};
use numa_sim::SimTime;
use numa_stats::Breakdown;
use numa_topology::{presets, CoreId, NodeId};
use numa_vm::{
    AddressSpace, FrameAllocator, MemPolicy, Protection, Tlb, VirtAddr, VmaKind, PAGE_SIZE,
};
use proptest::prelude::*;
use std::sync::Arc;

struct Fx {
    kernel: Kernel,
    space: AddressSpace,
    frames: FrameAllocator,
    tlb: Tlb,
}

fn fixture(patched: bool) -> Fx {
    let topo = Arc::new(presets::opteron_4p());
    let frames = FrameAllocator::new(topo.node_count(), 1 << 20);
    let tlb = Tlb::new(topo.core_count());
    Fx {
        kernel: Kernel::new(
            topo,
            KernelConfig {
                patched_move_pages: patched,
                ..KernelConfig::default()
            },
        ),
        space: AddressSpace::new(),
        frames,
        tlb,
    }
}

fn map_and_populate(fx: &mut Fx, pages: u64) -> VirtAddr {
    let base = fx
        .space
        .mmap(
            pages * PAGE_SIZE,
            Protection::ReadWrite,
            VmaKind::PrivateAnonymous,
            MemPolicy::FirstTouch,
        )
        .unwrap();
    for p in 0..pages {
        fx.kernel.handle_fault(
            &mut fx.space,
            &mut fx.frames,
            &mut fx.tlb,
            SimTime::ZERO,
            CoreId(0),
            base + p * PAGE_SIZE,
            true,
            &mut Breakdown::new(),
        );
    }
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// move_pages with arbitrary (page, destination) requests: every
    /// Moved/AlreadyThere page ends on its requested node, contents are
    /// preserved, frame counts are conserved, and repeating the call is
    /// idempotent (all AlreadyThere).
    #[test]
    fn move_pages_arbitrary_requests(
        picks in proptest::collection::vec((0u64..32, 0u16..4), 1..40),
        patched in any::<bool>(),
    ) {
        let mut fx = fixture(patched);
        let base = map_and_populate(&mut fx, 32);
        let tags: Vec<u64> = (0..32u64)
            .map(|p| {
                let pte = fx.space.page_table.get(base.vpn() + p).unwrap();
                fx.frames.get(pte.frame).unwrap().content_tag
            })
            .collect();
        let live_before = fx.frames.live_total();

        // One request per page: conflicting picks resolve to the last
        // destination (matching what a caller would actually request).
        let mut last_dest_list: Vec<(u64, NodeId)> = Vec::new();
        for (p, n) in &picks {
            if let Some(slot) = last_dest_list.iter_mut().find(|(q, _)| q == p) {
                slot.1 = NodeId(*n);
            } else {
                last_dest_list.push((*p, NodeId(*n)));
            }
        }
        let pages: Vec<VirtAddr> = last_dest_list.iter().map(|(p, _)| base + p * PAGE_SIZE).collect();
        let dest: Vec<NodeId> = last_dest_list.iter().map(|(_, n)| *n).collect();
        let r = fx.kernel.move_pages(
            &mut fx.space, &mut fx.frames, &mut fx.tlb,
            SimTime::ZERO, CoreId(0), &pages, &dest,
        ).unwrap();

        // Later requests for the same page override earlier ones only in
        // execution order; check each page ends where its *last* request
        // sent it.
        let mut last_dest = std::collections::HashMap::new();
        for (p, n) in &picks {
            last_dest.insert(*p, NodeId(*n));
        }
        for (p, want) in &last_dest {
            let pte = fx.space.page_table.get(base.vpn() + p).unwrap();
            prop_assert_eq!(fx.frames.node_of(pte.frame), *want, "page {}", p);
        }
        // Contents preserved everywhere.
        for p in 0..32u64 {
            let pte = fx.space.page_table.get(base.vpn() + p).unwrap();
            prop_assert_eq!(
                fx.frames.get(pte.frame).unwrap().content_tag,
                tags[p as usize],
                "page {} content", p
            );
        }
        // Conservation: one live frame per mapped page, no leaks.
        prop_assert_eq!(fx.frames.live_total(), live_before);
        // Statuses are only Moved/AlreadyThere for valid pages.
        for st in &r.status {
            prop_assert!(matches!(st, PageStatus::Moved(_) | PageStatus::AlreadyThere(_)));
        }

        // Idempotence.
        let r2 = fx.kernel.move_pages(
            &mut fx.space, &mut fx.frames, &mut fx.tlb,
            SimTime(r.outcome.end.ns()), CoreId(0), &pages, &dest,
        ).unwrap();
        prop_assert_eq!(r2.moved, 0, "second identical call moves nothing");
    }

    /// The next-touch cycle for arbitrary subsets: marked pages migrate to
    /// the toucher, unmarked pages stay, flags always end cleared on
    /// touched pages.
    #[test]
    fn next_touch_subset(
        marked in proptest::collection::btree_set(0u64..24, 0..24),
        toucher_core in 0u16..16,
    ) {
        let mut fx = fixture(true);
        let base = map_and_populate(&mut fx, 24);
        let dest_node = fx.kernel.topology().node_of_core(CoreId(toucher_core));

        for p in &marked {
            fx.kernel.madvise_next_touch(
                &mut fx.space, &mut fx.tlb, SimTime::ZERO, CoreId(0),
                numa_vm::PageRange::new(base.vpn() + p, base.vpn() + p + 1),
            ).unwrap();
        }
        // Touch everything from the chosen core.
        for p in 0..24u64 {
            fx.kernel.handle_fault(
                &mut fx.space, &mut fx.frames, &mut fx.tlb,
                SimTime::ZERO, CoreId(toucher_core), base + p * PAGE_SIZE, false,
            &mut Breakdown::new(),);
        }
        for p in 0..24u64 {
            let pte = fx.space.page_table.get(base.vpn() + p).unwrap();
            prop_assert!(!pte.is_next_touch(), "flags cleared");
            let node = fx.frames.node_of(pte.frame);
            if marked.contains(&p) {
                prop_assert_eq!(node, dest_node, "marked page {} follows toucher", p);
            } else {
                prop_assert_eq!(node, NodeId(0), "unmarked page {} stays", p);
            }
        }
    }

    /// Virtual time is monotone through any sequence of syscalls, and
    /// every syscall charges a positive cost.
    #[test]
    fn syscall_time_monotone(ops in proptest::collection::vec(0u8..3, 1..20)) {
        let mut fx = fixture(true);
        let base = map_and_populate(&mut fx, 8);
        let range = numa_vm::PageRange::new(base.vpn(), base.vpn() + 8);
        let mut t = SimTime::ZERO;
        for op in ops {
            let end = match op {
                0 => {
                    let pages: Vec<VirtAddr> = (0..8).map(|p| base + p * PAGE_SIZE).collect();
                    let dest = vec![NodeId(1); 8];
                    fx.kernel.move_pages(
                        &mut fx.space, &mut fx.frames, &mut fx.tlb, t, CoreId(0),
                        &pages, &dest,
                    ).unwrap().outcome.end
                }
                1 => fx.kernel.madvise_next_touch(
                    &mut fx.space, &mut fx.tlb, t, CoreId(0), range,
                ).unwrap().end,
                _ => fx.kernel.mprotect(
                    &mut fx.space, &mut fx.tlb, t, CoreId(0), range,
                    Protection::ReadWrite, numa_stats::CostComponent::MprotectRestore,
                ).unwrap().end,
            };
            prop_assert!(end > t, "syscalls must cost time");
            t = end;
        }
    }

    /// The un-patched lookup charge grows superlinearly while the patched
    /// one stays linear — for any request size pair (n, 8n) with n large
    /// enough that the lookup term is visible over the copy cost.
    #[test]
    fn quadratic_charge_property(n in 64u64..200) {
        let run = |patched: bool, pages: u64| {
            let mut fx = fixture(patched);
            let base = map_and_populate(&mut fx, pages);
            let addrs: Vec<VirtAddr> = (0..pages).map(|p| base + p * PAGE_SIZE).collect();
            let dest = vec![NodeId(1); pages as usize];
            fx.kernel.move_pages(
                &mut fx.space, &mut fx.frames, &mut fx.tlb,
                SimTime::ZERO, CoreId(0), &addrs, &dest,
            ).unwrap().outcome.end.ns()
        };
        let p1 = run(true, n);
        let p8 = run(true, 8 * n);
        let u1 = run(false, n);
        let u8 = run(false, 8 * n);
        // Subtract the shared base overhead before comparing growth.
        let base_ns = 160_000u64;
        let patched_growth = (p8 - base_ns) as f64 / (p1 - base_ns) as f64;
        let unpatched_growth = (u8 - base_ns) as f64 / (u1 - base_ns) as f64;
        prop_assert!(patched_growth < 9.0, "patched ~linear: {patched_growth}");
        prop_assert!(
            unpatched_growth > patched_growth * 1.3,
            "unpatched superlinear: {unpatched_growth} vs {patched_growth}"
        );
    }
}
