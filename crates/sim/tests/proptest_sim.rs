//! Property-based tests for the discrete-event primitives.

use numa_sim::{
    BarrierOutcome, BarrierState, HeapReadyQueue, ReadyQueue, Resource, SimTime, Splitmix64, Trace,
    TraceEventKind,
};
use proptest::prelude::*;

fn fault_kind(page: u64) -> TraceEventKind {
    TraceEventKind::PageFault {
        page,
        node: 0,
        write: false,
        migrated: false,
        dur_ns: 1,
    }
}

proptest! {
    /// Resource FIFO semantics: for requests issued in nondecreasing
    /// time order, every acquisition starts no earlier than requested,
    /// never overlaps the previous one, and total busy time equals the
    /// sum of service times.
    #[test]
    fn resource_fifo_invariants(
        reqs in proptest::collection::vec((0u64..1000, 1u64..100), 1..50)
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut r = Resource::new("r");
        let mut prev_end = SimTime::ZERO;
        let mut total_svc = 0u64;
        for (t, svc) in sorted {
            let a = r.acquire(SimTime(t), svc);
            prop_assert!(a.start >= SimTime(t));
            prop_assert!(a.start >= prev_end, "no overlap");
            prop_assert_eq!(a.end, a.start + svc);
            prop_assert_eq!(a.wait_ns, a.start.since(SimTime(t)));
            prev_end = a.end;
            total_svc += svc;
        }
        prop_assert_eq!(r.total_busy_ns(), total_svc);
    }

    /// The wait time of a request equals exactly the unfinished service
    /// ahead of it (work conservation for same-instant bursts).
    #[test]
    fn resource_burst_wait(svcs in proptest::collection::vec(1u64..50, 1..20)) {
        let mut r = Resource::new("r");
        let mut ahead = 0u64;
        for svc in svcs {
            let a = r.acquire(SimTime::ZERO, svc);
            prop_assert_eq!(a.wait_ns, ahead);
            ahead += svc;
        }
    }

    /// ReadyQueue is a stable priority queue: pops come out sorted by
    /// time, and equal times preserve insertion order.
    #[test]
    fn ready_queue_stable_sort(items in proptest::collection::vec(0u64..20, 1..100)) {
        let mut q = ReadyQueue::new();
        for (i, t) in items.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO among equal times");
                }
            }
            prop_assert_eq!(SimTime(items[idx]), t, "payload matches its key");
            last = Some((t, idx));
            count += 1;
        }
        prop_assert_eq!(count, items.len());
    }

    /// ReadyQueue's observable behaviour is independent of its initial
    /// capacity and survives reuse (interleaved push/pop, the engine's
    /// once-per-micro-op pattern): every step of an arbitrary op sequence
    /// produces identical pops, peeks, and lengths on a `new()` queue, a
    /// zero-capacity queue, and an over-provisioned one — and matches a
    /// stable-sort model, so FIFO tie-breaking holds across drains.
    #[test]
    fn ready_queue_capacity_and_reuse_invariant(
        cap in 0usize..32,
        ops in proptest::collection::vec(proptest::option::weighted(0.6, 0u64..10), 1..200)
    ) {
        let mut plain = ReadyQueue::new();
        let mut zero = ReadyQueue::with_capacity(0);
        let mut sized = ReadyQueue::with_capacity(cap);
        // Model: a vec of (time, seq) pairs, popped by min time then min seq.
        let mut model: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for op in ops {
            match op {
                Some(t) => {
                    plain.push(SimTime(t), seq);
                    zero.push(SimTime(t), seq);
                    sized.push(SimTime(t), seq);
                    model.push((t, seq));
                    seq += 1;
                }
                None => {
                    let want = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s))| (t, s))
                        .map(|(i, _)| i);
                    let expect = want.map(|i| model.remove(i));
                    let got = plain.pop();
                    prop_assert_eq!(got, zero.pop());
                    prop_assert_eq!(got, sized.pop());
                    prop_assert_eq!(got, expect.map(|(t, s)| (SimTime(t), s)));
                }
            }
            let head = model.iter().map(|&(t, _)| t).min().map(SimTime);
            prop_assert_eq!(plain.peek_time(), head);
            prop_assert_eq!(zero.peek_time(), head);
            prop_assert_eq!(sized.peek_time(), head);
            prop_assert_eq!(plain.len(), model.len());
            prop_assert_eq!(plain.is_empty(), model.is_empty());
        }
    }

    /// Lockstep equivalence of the calendar [`ReadyQueue`] against the
    /// [`HeapReadyQueue`] reference model over random push/pop
    /// interleavings. The time generator deliberately mixes three
    /// regimes: dense small times (same-instant FIFO ties land in one
    /// calendar bucket), mid-range times (cursor advances across bucket
    /// years), and far-future times (events park on the overflow rung
    /// and must migrate back in exact order). Pops must match pair for
    /// pair — time AND payload — at every step, as must peeks/lengths.
    #[test]
    fn calendar_queue_lockstep_with_heap_reference(
        ops in proptest::collection::vec(
            proptest::option::weighted(0.65, (0u64..12, 0u64..200_000)),
            1..300,
        )
    ) {
        // Map each pushed (regime, raw) pair onto one of the five time
        // regimes (the compat proptest has no `prop_oneof`).
        let time_of = |regime: u64, raw: u64| -> u64 {
            match regime {
                0..=3 => raw % 6,                  // same-instant ties
                4..=7 => raw % 2_000,              // intra-ring days
                8 | 9 => raw,                      // multi-year advance
                10 => (1u64 << 40) + raw % 50,     // deep overflow rung
                _ => u64::MAX,                     // saturated SimTime
            }
        };
        let mut cal = ReadyQueue::new();
        let mut heap = HeapReadyQueue::new();
        let mut seq = 0usize;
        for op in ops {
            match op {
                Some((regime, raw)) => {
                    let t = time_of(regime, raw);
                    cal.push(SimTime(t), seq);
                    heap.push(SimTime(t), seq);
                    seq += 1;
                }
                None => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }
        // Drain: the full remaining pop sequences must coincide.
        while let Some(expect) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(expect));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    /// A barrier of size n releases exactly once per episode, at the max
    /// arrival time, naming every earlier arriver.
    #[test]
    fn barrier_release_complete(
        n in 1usize..10,
        times in proptest::collection::vec(0u64..1000, 10)
    ) {
        let mut b = BarrierState::new(n);
        let mut released = false;
        for tid in 0..n {
            match b.arrive(tid, SimTime(times[tid])) {
                BarrierOutcome::Wait => prop_assert!(tid + 1 < n, "only last releases"),
                BarrierOutcome::Release { release_at, waiters } => {
                    prop_assert_eq!(tid + 1, n);
                    let max = times[..n].iter().copied().max().unwrap();
                    prop_assert_eq!(release_at, SimTime(max));
                    let mut w = waiters;
                    w.sort();
                    prop_assert_eq!(w, (0..n - 1).collect::<Vec<_>>());
                    released = true;
                }
            }
        }
        prop_assert!(released);
        prop_assert_eq!(b.episodes(), 1);
    }

    /// Splitmix64 is a pure function of its seed: identical streams, and
    /// `below(b)` stays in range while hitting more than one residue for
    /// non-trivial bounds.
    #[test]
    fn rng_determinism_and_range(seed in any::<u64>(), bound in 2u64..1000) {
        let mut a = Splitmix64::new(seed);
        let mut b = Splitmix64::new(seed);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let x = a.below(bound);
            prop_assert_eq!(x, b.below(bound));
            prop_assert!(x < bound);
            seen.insert(x);
        }
        prop_assert!(seen.len() > 1, "200 draws from [0,{bound}) hit one value");
    }

    /// Shuffle is a permutation for any content.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in proptest::collection::vec(any::<u32>(), 0..100)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        Splitmix64::new(seed).shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    /// Trace bounded-buffer invariant: at every step `len() <= capacity`,
    /// and `dropped` counts exactly the events that fell out of the ring.
    #[test]
    fn trace_bounded_buffer(capacity in 0usize..16, n in 0u64..100) {
        let t = Trace::with_capacity(capacity);
        for i in 0..n {
            t.record(SimTime(i), fault_kind(i));
            prop_assert!(t.len() <= capacity);
            prop_assert_eq!(t.len() as u64 + t.dropped(), i + 1);
        }
        prop_assert_eq!(t.len(), (n as usize).min(capacity));
        prop_assert_eq!(t.dropped(), n - t.len() as u64);
        // The retained events are exactly the most recent ones, in order.
        let pages: Vec<u64> = t.snapshot().iter().map(|e| match e.kind {
            TraceEventKind::PageFault { page, .. } => page,
            _ => unreachable!(),
        }).collect();
        let expected: Vec<u64> = (n - t.len() as u64..n).collect();
        prop_assert_eq!(pages, expected);
    }

    /// Under any mix of FIFO acquisitions and externally-synchronised
    /// occupations, accounted busy time never exceeds the busy horizon —
    /// i.e. `utilisation(busy_until) <= 1.0`.
    #[test]
    fn resource_utilisation_at_most_one(
        steps in proptest::collection::vec(
            (any::<bool>(), 0u64..1000, 0u64..100), 1..60)
    ) {
        let mut r = Resource::new("r");
        for (is_occupy, t, svc) in steps {
            if is_occupy {
                r.occupy(SimTime(t), svc);
            } else {
                r.acquire(SimTime(t), svc);
            }
            prop_assert!(r.total_busy_ns() <= r.busy_until().ns());
            if r.busy_until().ns() > 0 {
                prop_assert!(r.utilisation(r.busy_until()) <= 1.0);
            }
        }
    }

    /// SimTime arithmetic never panics and saturates instead of wrapping.
    #[test]
    fn simtime_saturates(a in any::<u64>(), b in any::<u64>()) {
        let t = SimTime(a) + b;
        prop_assert!(t.ns() >= a || t.ns() == u64::MAX);
        prop_assert_eq!(SimTime(a).since(SimTime(b)), a.saturating_sub(b));
    }
}
