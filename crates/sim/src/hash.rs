//! A fast, deterministic hasher for host-side lookup tables.
//!
//! The simulator's hottest maps (page table, frame table, cache residency)
//! are keyed by small integers and hit several times per simulated page
//! touch. `std`'s default SipHash is DoS-resistant but an order of
//! magnitude slower than needed for trusted in-process keys, and its
//! per-process random seed is wasted here: no simulation result may depend
//! on iteration order anyway (that would be a determinism bug), so the
//! fixed-seed multiply-xor scheme below is both faster and *more*
//! reproducible.
//!
//! The mixing function is the Fx scheme used by the Rust compiler's own
//! interning tables: `state = (state.rotate_left(5) ^ word) * K` with a
//! golden-ratio-derived odd constant. Good enough dispersion for
//! page-number keys, one multiply per word.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (2^64 / phi).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A non-cryptographic, fixed-seed hasher for trusted integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (str keys etc.): fold 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible, so
/// serde and `HashMap::default()` keep working unchanged).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast fixed-seed hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast fixed-seed hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn nearby_keys_disperse() {
        // Page numbers are dense; consecutive keys must not collide in the
        // low bits the table indexes by.
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        let mut low_bits: Vec<u64> = (0..256u64).map(|v| hash(v) & 0xff).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 128,
            "dense keys collapse to {} buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(5, 50);
        assert_eq!(m.get(&5), Some(&50));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }

    #[test]
    fn str_keys_hash_consistently() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("pt_lock".into(), 1);
        assert_eq!(m.get("pt_lock"), Some(&1));
    }
}
