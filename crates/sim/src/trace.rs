//! Structured event tracing.
//!
//! The kernel, machine and runtime layers record one typed [`TraceEvent`]
//! per interesting transition: page faults, migration begin/copy/commit/
//! abort, syscall enter/exit, lock acquisitions (with queueing delay), TLB
//! shootdowns, barriers, tier promotions/demotions, op start/end, and
//! per-micro-op cost spans. A [`Trace`] is a cheaply-clonable handle onto a
//! single shared ring buffer, so the machine, the kernel and the kernel's
//! lock set all append to the same stream without threading `&mut`
//! references through every call chain (the simulator is single-threaded;
//! interior mutability here costs one `RefCell` borrow per record).
//!
//! Disabled tracing costs a single `Cell` load per potential record site —
//! no allocation, no formatting — so experiment binaries pay nothing unless
//! `--trace` is given. Enabled tracing is ring-buffered: long runs keep the
//! most recent `capacity` events and count the rest in [`Trace::dropped`].
//!
//! [`Trace::chrome_trace_json`] exports the buffer in Chrome trace-event
//! format (loadable in Perfetto / `chrome://tracing`): each simulated thread
//! becomes a track, duration-bearing events become complete (`"X"`) spans
//! and the rest become instants. [`Trace::component_totals`] sums the
//! [`TraceEventKind::Span`] events into a [`Breakdown`] so tests can
//! reconcile the trace against the cost tables it claims to explain.

use crate::SimTime;
use numa_stats::json::Json;
use numa_stats::{Breakdown, CostComponent};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Thread id used for events not attributable to a simulated thread.
pub const SYSTEM_TID: usize = usize::MAX;

/// What happened. Node fields are raw node indices (`u16`) rather than
/// `numa_topology::NodeId` so the sim crate stays topology-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A page fault was resolved (first touch or next-touch).
    PageFault {
        page: u64,
        node: u16,
        write: bool,
        migrated: bool,
        dur_ns: u64,
    },
    /// A fault escalated to SIGSEGV delivery (user-level next-touch).
    Signal { page: u64 },
    /// Entry into a simulated syscall.
    SyscallEnter { name: &'static str },
    /// Return from a simulated syscall; `dur_ns` measured from its enter.
    SyscallExit {
        name: &'static str,
        pages: u64,
        dur_ns: u64,
    },
    /// A migration transaction opened for `page`.
    MigrationBegin { page: u64, from: u16, to: u16 },
    /// The data copy of one page migration.
    MigrationCopy {
        page: u64,
        from: u16,
        to: u16,
        dur_ns: u64,
    },
    /// A migration transaction committed.
    MigrationCommit { page: u64, dur_ns: u64 },
    /// A migration transaction aborted (page dirtied mid-copy, etc).
    MigrationAbort { page: u64, dur_ns: u64 },
    /// A kernel lock was acquired after `wait_ns` of queueing.
    LockAcquire {
        name: &'static str,
        wait_ns: u64,
        hold_ns: u64,
    },
    /// A TLB shootdown / remote invalidation round.
    TlbShootdown { dur_ns: u64 },
    /// A thread released from barrier `id`.
    Barrier { id: usize },
    /// A page moved up a tier (e.g. CXL -> DRAM).
    TierPromote { page: u64, from: u16, to: u16 },
    /// A page moved down a tier.
    TierDemote { page: u64, from: u16, to: u16 },
    /// A scripted op began executing.
    OpStart { op: &'static str },
    /// A scripted op finished; `dur_ns` measured from its start.
    OpEnd { op: &'static str, dur_ns: u64 },
    /// Cost attributed to one component while executing a micro-op. The
    /// engine emits these by diffing the breakdown around each micro-op, so
    /// summing them reproduces the run's `Breakdown` exactly.
    Span {
        component: CostComponent,
        dur_ns: u64,
    },
    /// The fault-injection plan fired at a migration decision point
    /// (site/kind names from `faultinject`).
    FaultInjected {
        site: &'static str,
        kind: &'static str,
    },
    /// A migration attempt is being retried after a transient failure;
    /// `attempts_left` counts the remaining budget after this retry.
    MigrationRetry { page: u64, attempts_left: u32 },
    /// A migration degraded gracefully: the page stays on its source node
    /// and the workload keeps running.
    MigrationDegraded { page: u64, reason: &'static str },
    /// Page-table replica write-through or reconcile: `entries` PTEs were
    /// published to replicas (ptplace subsystem).
    PtReplicaSync { entries: u64, dur_ns: u64 },
    /// A single-homed page table migrated to follow its thread (numaPTE);
    /// `entries` PTEs were copied.
    PtMigrate { entries: u64, dur_ns: u64 },
    /// A node's memory-pressure level changed (sampled at the
    /// allocator's probe points; level names from `PressureLevel`).
    PressureChange { node: u16, level: &'static str },
    /// One reclaim run: `scanned` victims considered, `reclaimed` pages
    /// demoted/migrated away from `node`.
    ReclaimRun {
        node: u16,
        scanned: u64,
        reclaimed: u64,
        dur_ns: u64,
    },
    /// A node was marked offline (unallocatable) for hot-remove.
    NodeOffline { node: u16 },
    /// A node was brought back online.
    NodeOnline { node: u16 },
    /// The OOM policy killed the allocating process after reclaim and
    /// every fallback node failed (`node` is the exhausted target).
    OomKill { node: u16 },
    /// The retry-livelock watchdog fired: `retries` retries in a
    /// `window_ns` window with zero migration progress.
    WatchdogFired { retries: u64, window_ns: u64 },
}

impl TraceEventKind {
    /// Short category label (Chrome trace "name" field).
    pub fn label(&self) -> String {
        match self {
            TraceEventKind::PageFault { migrated, .. } => {
                if *migrated {
                    "page_fault_migrate".to_string()
                } else {
                    "page_fault".to_string()
                }
            }
            TraceEventKind::Signal { .. } => "sigsegv".to_string(),
            TraceEventKind::SyscallEnter { name } => format!("{name}_enter"),
            TraceEventKind::SyscallExit { name, .. } => name.to_string(),
            TraceEventKind::MigrationBegin { .. } => "migration_begin".to_string(),
            TraceEventKind::MigrationCopy { .. } => "migration_copy".to_string(),
            TraceEventKind::MigrationCommit { .. } => "migration_commit".to_string(),
            TraceEventKind::MigrationAbort { .. } => "migration_abort".to_string(),
            TraceEventKind::LockAcquire { name, .. } => format!("lock:{name}"),
            TraceEventKind::TlbShootdown { .. } => "tlb_shootdown".to_string(),
            TraceEventKind::Barrier { .. } => "barrier".to_string(),
            TraceEventKind::TierPromote { .. } => "tier_promote".to_string(),
            TraceEventKind::TierDemote { .. } => "tier_demote".to_string(),
            TraceEventKind::OpStart { op } => format!("{op}_start"),
            TraceEventKind::OpEnd { op, .. } => format!("op:{op}"),
            TraceEventKind::Span { component, .. } => format!("span:{}", component.label()),
            TraceEventKind::FaultInjected { site, kind } => format!("fault:{kind}@{site}"),
            TraceEventKind::MigrationRetry { .. } => "migration_retry".to_string(),
            TraceEventKind::MigrationDegraded { .. } => "migration_degraded".to_string(),
            TraceEventKind::PtReplicaSync { .. } => "pt_replica_sync".to_string(),
            TraceEventKind::PtMigrate { .. } => "pt_migrate".to_string(),
            TraceEventKind::PressureChange { level, .. } => format!("pressure:{level}"),
            TraceEventKind::ReclaimRun { .. } => "reclaim_run".to_string(),
            TraceEventKind::NodeOffline { .. } => "node_offline".to_string(),
            TraceEventKind::NodeOnline { .. } => "node_online".to_string(),
            TraceEventKind::OomKill { .. } => "oom_kill".to_string(),
            TraceEventKind::WatchdogFired { .. } => "watchdog_fired".to_string(),
        }
    }

    /// Duration for span-like events; `None` renders as an instant.
    pub fn dur_ns(&self) -> Option<u64> {
        match self {
            TraceEventKind::PageFault { dur_ns, .. }
            | TraceEventKind::SyscallExit { dur_ns, .. }
            | TraceEventKind::MigrationCopy { dur_ns, .. }
            | TraceEventKind::MigrationCommit { dur_ns, .. }
            | TraceEventKind::MigrationAbort { dur_ns, .. }
            | TraceEventKind::TlbShootdown { dur_ns }
            | TraceEventKind::OpEnd { dur_ns, .. }
            | TraceEventKind::Span { dur_ns, .. }
            | TraceEventKind::PtReplicaSync { dur_ns, .. }
            | TraceEventKind::PtMigrate { dur_ns, .. }
            | TraceEventKind::ReclaimRun { dur_ns, .. } => Some(*dur_ns),
            TraceEventKind::LockAcquire { hold_ns, .. } => Some(*hold_ns),
            _ => None,
        }
    }

    /// Event-specific fields as an ordered JSON object (Chrome trace "args").
    pub fn args_json(&self) -> Json {
        match *self {
            TraceEventKind::PageFault {
                page,
                node,
                write,
                migrated,
                ..
            } => Json::obj()
                .set("page", page)
                .set("node", node)
                .set("write", write)
                .set("migrated", migrated),
            TraceEventKind::Signal { page } => Json::obj().set("page", page),
            TraceEventKind::SyscallEnter { .. } => Json::obj(),
            TraceEventKind::SyscallExit { pages, .. } => Json::obj().set("pages", pages),
            TraceEventKind::MigrationBegin { page, from, to } => Json::obj()
                .set("page", page)
                .set("from", from)
                .set("to", to),
            TraceEventKind::MigrationCopy { page, from, to, .. } => Json::obj()
                .set("page", page)
                .set("from", from)
                .set("to", to),
            TraceEventKind::MigrationCommit { page, .. } => Json::obj().set("page", page),
            TraceEventKind::MigrationAbort { page, .. } => Json::obj().set("page", page),
            TraceEventKind::LockAcquire { wait_ns, .. } => Json::obj().set("wait_ns", wait_ns),
            TraceEventKind::TlbShootdown { .. } => Json::obj(),
            TraceEventKind::Barrier { id } => Json::obj().set("id", id),
            TraceEventKind::TierPromote { page, from, to }
            | TraceEventKind::TierDemote { page, from, to } => Json::obj()
                .set("page", page)
                .set("from", from)
                .set("to", to),
            TraceEventKind::OpStart { .. } => Json::obj(),
            TraceEventKind::OpEnd { .. } => Json::obj(),
            TraceEventKind::Span { component, .. } => {
                Json::obj().set("component", component.label())
            }
            TraceEventKind::FaultInjected { site, kind } => {
                Json::obj().set("site", site).set("kind", kind)
            }
            TraceEventKind::MigrationRetry {
                page,
                attempts_left,
            } => Json::obj()
                .set("page", page)
                .set("attempts_left", attempts_left),
            TraceEventKind::MigrationDegraded { page, reason } => {
                Json::obj().set("page", page).set("reason", reason)
            }
            TraceEventKind::PtReplicaSync { entries, .. }
            | TraceEventKind::PtMigrate { entries, .. } => Json::obj().set("entries", entries),
            TraceEventKind::PressureChange { node, level } => {
                Json::obj().set("node", node).set("level", level)
            }
            TraceEventKind::ReclaimRun {
                node,
                scanned,
                reclaimed,
                ..
            } => Json::obj()
                .set("node", node)
                .set("scanned", scanned)
                .set("reclaimed", reclaimed),
            TraceEventKind::NodeOffline { node } | TraceEventKind::NodeOnline { node } => {
                Json::obj().set("node", node)
            }
            TraceEventKind::OomKill { node } => Json::obj().set("node", node),
            TraceEventKind::WatchdogFired { retries, window_ns } => Json::obj()
                .set("retries", retries)
                .set("window_ns", window_ns),
        }
    }
}

/// One traced transition in a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event. For duration-bearing kinds this is the
    /// START of the span; the duration lives inside [`TraceEvent::kind`].
    pub at: SimTime,
    /// Simulated thread id ([`SYSTEM_TID`] for system-wide events).
    pub tid: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ns] t{:<3} {} {}",
            self.at.ns(),
            self.tid,
            self.kind.label(),
            self.kind.args_json(),
        )
    }
}

#[derive(Debug, Default)]
struct TraceBuf {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: Cell<bool>,
    cur_tid: Cell<usize>,
    buf: RefCell<TraceBuf>,
}

/// A cheaply-clonable handle onto a shared bounded trace buffer.
///
/// All clones observe the same buffer and enablement flag, so enabling the
/// machine's handle also enables the kernel's and the lock set's.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Rc<Inner>,
}

impl Trace {
    /// A trace that records nothing (until [`Trace::enable`] is called).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A trace that keeps the most recent `capacity` events.
    /// `capacity == 0` retains nothing but still counts drops.
    pub fn with_capacity(capacity: usize) -> Self {
        let t = Trace::default();
        t.enable(capacity);
        t
    }

    /// Turn tracing on with the given ring capacity, clearing old events.
    pub fn enable(&self, capacity: usize) {
        let mut buf = self.inner.buf.borrow_mut();
        buf.capacity = capacity;
        buf.events = VecDeque::with_capacity(capacity.min(4096));
        buf.dropped = 0;
        self.inner.enabled.set(true);
    }

    /// Is tracing on?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Set the thread id attributed to subsequent [`Trace::record`] calls
    /// from layers (kernel, locks) that don't know the current thread.
    pub fn set_thread(&self, tid: usize) {
        self.inner.cur_tid.set(tid);
    }

    /// Record an event attributed to the current thread (no-op when
    /// disabled — one `Cell` load, nothing else).
    pub fn record(&self, at: SimTime, kind: TraceEventKind) {
        if !self.inner.enabled.get() {
            return;
        }
        self.record_for(at, self.inner.cur_tid.get(), kind);
    }

    /// Record an event for an explicit thread id.
    pub fn record_for(&self, at: SimTime, tid: usize, kind: TraceEventKind) {
        if !self.inner.enabled.get() {
            return;
        }
        let mut buf = self.inner.buf.borrow_mut();
        if buf.capacity == 0 {
            // Degenerate ring: retain nothing, but account the event.
            buf.dropped += 1;
            return;
        }
        while buf.events.len() >= buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(TraceEvent { at, tid, kind });
    }

    /// Snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.buf.borrow().events.iter().copied().collect()
    }

    /// Number of events evicted (or never retained) due to the capacity
    /// bound.
    pub fn dropped(&self) -> u64 {
        self.inner.buf.borrow().dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.buf.borrow().events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained events and reset the drop counter, keeping the
    /// enablement flag and capacity.
    pub fn clear(&self) {
        let mut buf = self.inner.buf.borrow_mut();
        buf.events.clear();
        buf.dropped = 0;
    }

    /// Sum the retained [`TraceEventKind::Span`] events into a
    /// [`Breakdown`]. With sufficient capacity this reproduces the run's
    /// breakdown exactly (the engine emits spans by diffing it).
    pub fn component_totals(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for e in self.inner.buf.borrow().events.iter() {
            if let TraceEventKind::Span { component, dur_ns } = e.kind {
                b.add(component, dur_ns);
            }
        }
        b
    }

    /// Export the retained events as a Chrome trace-event JSON document
    /// (loadable in Perfetto / `chrome://tracing`). Timestamps convert from
    /// virtual nanoseconds to the format's microseconds; each simulated
    /// thread renders as its own track.
    pub fn chrome_trace_json(&self) -> String {
        let buf = self.inner.buf.borrow();
        let mut events: Vec<Json> = Vec::with_capacity(buf.events.len() + 8);
        // Name the thread tracks first (metadata events).
        let mut tids: Vec<usize> = buf.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let name = if *tid == SYSTEM_TID {
                "system".to_string()
            } else {
                format!("thread {tid}")
            };
            events.push(
                Json::obj()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", 0u64)
                    .set("tid", chrome_tid(*tid))
                    .set("args", Json::obj().set("name", name)),
            );
        }
        for e in buf.events.iter() {
            let ts = e.at.ns() as f64 / 1000.0;
            let base = Json::obj()
                .set("name", e.kind.label())
                .set("cat", "sim")
                .set("pid", 0u64)
                .set("tid", chrome_tid(e.tid))
                .set("ts", ts);
            let ev = match e.kind.dur_ns() {
                Some(dur) => base
                    .set("ph", "X")
                    .set("dur", dur as f64 / 1000.0)
                    .set("args", e.kind.args_json()),
                None => base
                    .set("ph", "i")
                    .set("s", "t")
                    .set("args", e.kind.args_json()),
            };
            events.push(ev);
        }
        Json::obj()
            .set("traceEvents", Json::Arr(events))
            .set("displayTimeUnit", "ns")
            .set("droppedEvents", buf.dropped)
            .to_string()
    }
}

/// Chrome trace tids are ints; map [`SYSTEM_TID`] to a small sentinel track.
fn chrome_tid(tid: usize) -> u64 {
    if tid == SYSTEM_TID {
        999_999
    } else {
        tid as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u64) -> TraceEventKind {
        TraceEventKind::PageFault {
            page,
            node: 0,
            write: true,
            migrated: false,
            dur_ns: 100,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Trace::disabled();
        t.record(SimTime(1), ev(1));
        assert!(t.is_empty());
        assert!(!t.enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_eviction() {
        let t = Trace::with_capacity(2);
        t.record(SimTime(1), ev(1));
        t.record(SimTime(2), ev(2));
        t.record(SimTime(3), ev(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let pages: Vec<u64> = t
            .snapshot()
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::PageFault { page, .. } => page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![2, 3]);
    }

    #[test]
    fn zero_capacity_stays_empty_and_counts_drops() {
        // Regression: `len() == capacity` checked before push meant a
        // capacity-0 trace grew unbounded after the first record.
        let t = Trace::with_capacity(0);
        for i in 0..100 {
            t.record(SimTime(i), ev(i));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 100);
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = Trace::disabled();
        let b = a.clone();
        a.enable(8);
        assert!(b.enabled());
        b.set_thread(3);
        b.record(SimTime(5), ev(9));
        assert_eq!(a.len(), 1);
        assert_eq!(a.snapshot()[0].tid, 3);
    }

    #[test]
    fn display_formats_typed_events() {
        let e = TraceEvent {
            at: SimTime(42),
            tid: 3,
            kind: TraceEventKind::MigrationCopy {
                page: 7,
                from: 0,
                to: 1,
                dur_ns: 1024,
            },
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("t3"));
        assert!(s.contains("migration_copy"));
        assert!(s.contains("\"page\":7"));
    }

    #[test]
    fn component_totals_sums_spans() {
        let t = Trace::with_capacity(16);
        t.record(
            SimTime(0),
            TraceEventKind::Span {
                component: CostComponent::FaultCopy,
                dur_ns: 80,
            },
        );
        t.record(
            SimTime(1),
            TraceEventKind::Span {
                component: CostComponent::FaultCopy,
                dur_ns: 20,
            },
        );
        t.record(SimTime(2), ev(1)); // non-span events are ignored
        let b = t.component_totals();
        assert_eq!(b.get(CostComponent::FaultCopy), 100);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let t = Trace::with_capacity(16);
        t.set_thread(0);
        t.record(SimTime(1000), ev(1));
        t.set_thread(1);
        t.record(SimTime(2000), TraceEventKind::Barrier { id: 0 });
        let text = t.chrome_trace_json();
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 metadata + 2 events.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        let fault = &events[2];
        assert_eq!(fault.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(fault.get("ts").and_then(Json::as_f64), Some(1.0));
        let barrier = &events[3];
        assert_eq!(barrier.get("ph").and_then(Json::as_str), Some("i"));
    }
}
