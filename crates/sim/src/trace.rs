//! Optional event tracing.
//!
//! When enabled, the machine layer records one [`TraceEvent`] per
//! interesting transition (fault, migration, barrier, syscall). Disabled
//! tracing is free apart from a branch; enabled tracing is ring-buffered so
//! long runs can keep the tail without unbounded memory growth.

use crate::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One traced transition in a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Simulated thread id (usize::MAX for system-wide events).
    pub tid: usize,
    /// Event description (static category + formatted detail).
    pub what: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12} ns] t{:<3} {}",
            self.at.ns(),
            self.tid,
            self.what
        )
    }
}

/// A bounded trace buffer.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A trace that keeps the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Is tracing on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, tid: usize, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            tid,
            what: what.into(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime(1), 0, "fault");
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn bounded_eviction() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime(1), 0, "a");
        t.record(SimTime(2), 0, "b");
        t.record(SimTime(3), 0, "c");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let kinds: Vec<&str> = t.events().map(|e| e.what.as_str()).collect();
        assert_eq!(kinds, vec!["b", "c"]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: SimTime(42),
            tid: 3,
            what: "migrate page 7".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("t3"));
        assert!(s.contains("migrate page 7"));
    }
}
