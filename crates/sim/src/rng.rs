//! A tiny deterministic PRNG.
//!
//! Simulations must be bit-for-bit reproducible from a seed (DESIGN.md §7),
//! so the engine carries its own generator instead of depending on ambient
//! thread-local randomness. SplitMix64 is the standard seeding/stream
//! generator: one u64 of state, full 2^64 period, passes BigCrush when used
//! as intended here (workload shuffling and jitter, not cryptography).

/// SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Splitmix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Splitmix64::new(42);
        let mut b = Splitmix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Splitmix64::new(1);
        let mut b = Splitmix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Splitmix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Splitmix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Splitmix64::new(3);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Splitmix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn below_zero_bound_panics() {
        Splitmix64::new(0).below(0);
    }
}
