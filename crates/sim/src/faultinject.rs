//! Deterministic, seed-driven fault injection for the migration paths.
//!
//! The real kernel's migration machinery fails in ordinary operation:
//! `move_pages` returns a per-page status array (`-EBUSY`, `-ENOENT`,
//! `-ENOMEM`), next-touch migration silently leaves a page in place when
//! the copy cannot proceed, and a racing `munmap` can pull a mapping out
//! from under an in-flight copy. The simulator's kernel consults a
//! [`FaultInjector`] at each of those decision points so chaos experiments
//! can *exercise* the failure handling deterministically.
//!
//! Design constraints (DESIGN.md §11):
//!
//! * **Zero behavioural change when disabled.** [`FaultInjector::disabled`]
//!   is the default on every kernel; a consult is then a single branch
//!   with no RNG draw, no counter and no trace event, so every experiment
//!   output is byte-identical to a build without the subsystem.
//! * **Determinism.** Decisions derive only from the plan seed and the
//!   per-site consult index — one [`Splitmix64`] stream per site, seeded
//!   from `seed ^ site`, so adding consults at one site never perturbs
//!   another, and identical `(seed, plan)` pairs reproduce identical fault
//!   sequences regardless of host parallelism.
//! * **Faults are decided before side effects.** Call sites consult the
//!   injector before allocating frames or touching locks/interconnect, so
//!   an injected failure charges only the failed-path cost.

use crate::rng::Splitmix64;
use serde::{Deserialize, Serialize};

/// A migration decision point where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// Per-page copy inside `move_pages` (also the user-space next-touch
    /// library, which migrates regions with `move_pages`).
    MovePagesCopy,
    /// Per-page copy inside the `migrate_pages` address-space walk.
    MigratePagesCopy,
    /// The kernel next-touch fault-path migration.
    NextTouchFault,
    /// Tier promotion/demotion (transactional begin/commit and
    /// stop-the-world).
    TierPromotion,
    /// Per-victim demotion inside direct reclaim / `kreclaimd` (the
    /// memory-pressure subsystem's cold-page eviction copy).
    Reclaim,
    /// Per-page copy while evacuating a node marked for hot-remove.
    Evacuation,
}

/// All sites, in stream order.
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::MovePagesCopy,
    FaultSite::MigratePagesCopy,
    FaultSite::NextTouchFault,
    FaultSite::TierPromotion,
    FaultSite::Reclaim,
    FaultSite::Evacuation,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::MovePagesCopy => 0,
            FaultSite::MigratePagesCopy => 1,
            FaultSite::NextTouchFault => 2,
            FaultSite::TierPromotion => 3,
            FaultSite::Reclaim => 4,
            FaultSite::Evacuation => 5,
        }
    }

    /// Stable short name (trace events, JSON output).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::MovePagesCopy => "move_pages_copy",
            FaultSite::MigratePagesCopy => "migrate_pages_copy",
            FaultSite::NextTouchFault => "next_touch_fault",
            FaultSite::TierPromotion => "tier_promotion",
            FaultSite::Reclaim => "reclaim",
            FaultSite::Evacuation => "evacuation",
        }
    }
}

/// What kind of failure is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Transient copy failure (`-EBUSY`-like): the page is momentarily
    /// pinned or locked elsewhere. Retryable — the caller may re-attempt.
    TransientCopy,
    /// Destination-node frame exhaustion (`-ENOMEM`): degradable — the
    /// page stays on its source node and the workload keeps running.
    FrameExhausted,
    /// A racing unmap pulled the mapping out mid-copy (`-ENOENT`): the
    /// copy is wasted and discarded; the mapping is left as found.
    RacingUnmap,
}

impl FaultKind {
    /// Stable short name (trace events, JSON output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientCopy => "transient_copy",
            FaultKind::FrameExhausted => "frame_exhausted",
            FaultKind::RacingUnmap => "racing_unmap",
        }
    }
}

/// One injection rule: at `site`, fail with `kind` — probabilistically
/// (`rate_ppm` in parts per million of consults) and/or on an explicit
/// `schedule` of zero-based consult indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Where the rule applies.
    pub site: FaultSite,
    /// What is injected.
    pub kind: FaultKind,
    /// Probability per consult, in parts per million (0 = never).
    pub rate_ppm: u32,
    /// Explicit consult indices (per site, zero-based) that always fail,
    /// independent of `rate_ppm`. Must be sorted ascending.
    pub schedule: Vec<u64>,
}

/// A deterministic fault plan: a seed plus an ordered rule list. The first
/// rule that fires at a consult wins.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-site decision streams.
    pub seed: u64,
    /// Rules, evaluated in order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no rules) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a probabilistic rule.
    pub fn with_rate(mut self, site: FaultSite, kind: FaultKind, rate_ppm: u32) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            rate_ppm,
            schedule: Vec::new(),
        });
        self
    }

    /// Add an explicit schedule: the given per-site consult indices fail
    /// with `kind`.
    pub fn with_schedule(
        mut self,
        site: FaultSite,
        kind: FaultKind,
        mut indices: Vec<u64>,
    ) -> Self {
        indices.sort_unstable();
        self.rules.push(FaultRule {
            site,
            kind,
            rate_ppm: 0,
            schedule: indices,
        });
        self
    }

    /// The chaos-sweep mix: at every site (including the pressure-path
    /// `Reclaim`/`Evacuation` sites), transient copy failures at
    /// `rate_ppm`, frame exhaustion at half that, and racing unmaps at a
    /// quarter (sites with an in-flight copy against a live mapping —
    /// an unmap race needs a copy to race with).
    pub fn chaos(seed: u64, rate_ppm: u32) -> Self {
        let mut plan = FaultPlan::new(seed);
        for site in FAULT_SITES {
            plan = plan.with_rate(site, FaultKind::TransientCopy, rate_ppm);
            plan = plan.with_rate(site, FaultKind::FrameExhausted, rate_ppm / 2);
            if matches!(
                site,
                FaultSite::MovePagesCopy | FaultSite::MigratePagesCopy | FaultSite::Evacuation
            ) {
                plan = plan.with_rate(site, FaultKind::RacingUnmap, rate_ppm / 4);
            }
        }
        plan
    }

    /// Does any rule ever fire?
    pub fn is_vacuous(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.rate_ppm == 0 && r.schedule.is_empty())
    }

    /// A one-line human description for tables and logs.
    pub fn describe(&self) -> String {
        if self.rules.is_empty() {
            return format!("seed {}, no rules", self.seed);
        }
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                let mut s = format!("{}@{}", r.kind.name(), r.site.name());
                if r.rate_ppm > 0 {
                    s.push_str(&format!(" {}ppm", r.rate_ppm));
                }
                if !r.schedule.is_empty() {
                    s.push_str(&format!(" +{} scheduled", r.schedule.len()));
                }
                s
            })
            .collect();
        format!("seed {}: {}", self.seed, rules.join(", "))
    }
}

/// The per-kernel injector: owns the plan, one decision stream and one
/// consult counter per site. Single-threaded like everything else in the
/// simulator — each [`crate::SimTime`]-ordered consult advances exactly
/// one stream, so decisions are a pure function of `(plan, consult
/// history)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    enabled: bool,
    plan: FaultPlan,
    streams: [Splitmix64; FAULT_SITES.len()],
    consults: [u64; FAULT_SITES.len()],
    injected: u64,
}

impl FaultInjector {
    /// The default injector: never fires, adds one branch per consult.
    pub fn disabled() -> Self {
        FaultInjector {
            enabled: false,
            plan: FaultPlan::default(),
            streams: std::array::from_fn(|_| Splitmix64::new(0)),
            consults: [0; FAULT_SITES.len()],
            injected: 0,
        }
    }

    /// An injector following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        // Distinct stream per site: mixing the site index into the seed
        // keeps sites independent (consults at one never shift another's
        // decisions).
        let streams = std::array::from_fn(|i| {
            Splitmix64::new(plan.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)))
        });
        FaultInjector {
            enabled: true,
            plan,
            streams,
            consults: [0; FAULT_SITES.len()],
            injected: 0,
        }
    }

    /// Is injection on at all? One branch; lets call sites skip failure
    /// bookkeeping entirely in ordinary runs.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Consults made at `site` so far.
    pub fn consults_at(&self, site: FaultSite) -> u64 {
        self.consults[site.index()]
    }

    /// Ask whether the operation at `site` should fail, and how. Advances
    /// the site's consult index; `None` means proceed normally.
    #[inline]
    pub fn consult(&mut self, site: FaultSite) -> Option<FaultKind> {
        if !self.enabled {
            return None;
        }
        self.consult_slow(site)
    }

    fn consult_slow(&mut self, site: FaultSite) -> Option<FaultKind> {
        let i = site.index();
        let idx = self.consults[i];
        self.consults[i] += 1;
        for rule in &self.plan.rules {
            if rule.site != site {
                continue;
            }
            if rule.schedule.binary_search(&idx).is_ok() {
                self.injected += 1;
                return Some(rule.kind);
            }
            if rule.rate_ppm > 0 && self.streams[i].below(1_000_000) < u64::from(rule.rate_ppm) {
                self.injected += 1;
                return Some(rule.kind);
            }
        }
        None
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..10_000 {
            assert_eq!(inj.consult(FaultSite::MovePagesCopy), None);
        }
        assert_eq!(inj.injected(), 0);
        // Disabled consults do not even count — zero bookkeeping.
        assert_eq!(inj.consults_at(FaultSite::MovePagesCopy), 0);
    }

    #[test]
    fn vacuous_plan_never_fires_but_counts() {
        let mut inj = FaultInjector::new(FaultPlan::new(7));
        for _ in 0..1000 {
            assert_eq!(inj.consult(FaultSite::NextTouchFault), None);
        }
        assert_eq!(inj.consults_at(FaultSite::NextTouchFault), 1000);
        assert_eq!(inj.injected(), 0);
        assert!(FaultPlan::new(7).is_vacuous());
        assert!(FaultPlan::chaos(7, 0).is_vacuous());
        assert!(!FaultPlan::chaos(7, 1000).is_vacuous());
    }

    #[test]
    fn identical_plans_reproduce_identical_decisions() {
        let mk = || {
            let mut inj = FaultInjector::new(FaultPlan::chaos(42, 100_000));
            let mut out = Vec::new();
            for i in 0..500 {
                let site = FAULT_SITES[i % FAULT_SITES.len()];
                out.push(inj.consult(site));
            }
            out
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sites_are_independent_streams() {
        // Decisions at one site must not depend on how often another was
        // consulted in between.
        let mut a = FaultInjector::new(FaultPlan::chaos(9, 200_000));
        let mut b = FaultInjector::new(FaultPlan::chaos(9, 200_000));
        let mut da = Vec::new();
        let mut db = Vec::new();
        for _ in 0..200 {
            da.push(a.consult(FaultSite::MovePagesCopy));
        }
        for _ in 0..200 {
            // Interleave heavy traffic at another site.
            let _ = b.consult(FaultSite::TierPromotion);
            db.push(b.consult(FaultSite::MovePagesCopy));
            let _ = b.consult(FaultSite::NextTouchFault);
        }
        assert_eq!(da, db);
    }

    #[test]
    fn schedule_fires_exactly_on_listed_indices() {
        let plan = FaultPlan::new(0).with_schedule(
            FaultSite::MigratePagesCopy,
            FaultKind::RacingUnmap,
            vec![2, 5],
        );
        let mut inj = FaultInjector::new(plan);
        let fired: Vec<bool> = (0..8)
            .map(|_| inj.consult(FaultSite::MigratePagesCopy).is_some())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false]
        );
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn rates_fire_roughly_proportionally() {
        let mut inj = FaultInjector::new(FaultPlan::new(3).with_rate(
            FaultSite::MovePagesCopy,
            FaultKind::TransientCopy,
            250_000,
        ));
        let n = 10_000;
        let fired = (0..n)
            .filter(|_| inj.consult(FaultSite::MovePagesCopy).is_some())
            .count();
        let frac = fired as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "rate 25% fired {frac}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1)
            .with_schedule(FaultSite::TierPromotion, FaultKind::FrameExhausted, vec![0])
            .with_rate(
                FaultSite::TierPromotion,
                FaultKind::TransientCopy,
                1_000_000,
            );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.consult(FaultSite::TierPromotion),
            Some(FaultKind::FrameExhausted)
        );
        assert_eq!(
            inj.consult(FaultSite::TierPromotion),
            Some(FaultKind::TransientCopy)
        );
    }

    #[test]
    fn pressure_sites_are_wired_into_chaos() {
        assert_eq!(FaultSite::Reclaim.name(), "reclaim");
        assert_eq!(FaultSite::Evacuation.name(), "evacuation");
        let plan = FaultPlan::chaos(1, 10_000);
        for site in [FaultSite::Reclaim, FaultSite::Evacuation] {
            assert!(
                plan.rules
                    .iter()
                    .any(|r| r.site == site && r.rate_ppm == 10_000),
                "chaos plan must cover {}",
                site.name()
            );
        }
        // Adding the pressure sites must not perturb decisions at the
        // original sites: stream seeding is positional and the original
        // four indices are unchanged.
        let mut inj = FaultInjector::new(FaultPlan::chaos(9, 200_000));
        let mut with_noise = FaultInjector::new(FaultPlan::chaos(9, 200_000));
        let mut da = Vec::new();
        let mut db = Vec::new();
        for _ in 0..200 {
            da.push(inj.consult(FaultSite::MovePagesCopy));
            let _ = with_noise.consult(FaultSite::Reclaim);
            db.push(with_noise.consult(FaultSite::MovePagesCopy));
            let _ = with_noise.consult(FaultSite::Evacuation);
        }
        assert_eq!(da, db);
    }

    #[test]
    fn plan_description_is_stable() {
        let plan =
            FaultPlan::new(5).with_rate(FaultSite::MovePagesCopy, FaultKind::TransientCopy, 1000);
        assert_eq!(
            plan.describe(),
            "seed 5: transient_copy@move_pages_copy 1000ppm"
        );
    }
}
