//! The time-ordered run queue.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, item)` pairs with deterministic FIFO tie-breaking.
///
/// When several simulated threads become runnable at the same virtual
/// instant, the one that was *enqueued first* runs first. Plain
/// `BinaryHeap` ordering on `(time, item)` would instead break ties by item
/// id, which silently couples simulation results to thread numbering — a
/// determinism hazard the sequence counter removes.
#[derive(Debug, Clone)]
pub struct ReadyQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, OrdWrap<T>)>>,
    seq: u64,
}

/// Wrapper that deliberately ignores `T` in the ordering so ties are broken
/// purely by the sequence number.
#[derive(Debug, Clone)]
struct OrdWrap<T>(T);

impl<T> PartialEq for OrdWrap<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdWrap<T> {}
impl<T> PartialOrd for OrdWrap<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdWrap<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for ReadyQueue<T> {
    fn default() -> Self {
        ReadyQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> ReadyQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// An empty queue with room for `capacity` items before reallocating.
    /// Engines that push/pop once per micro-op size the queue to the
    /// thread count up front so the heap never grows mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        ReadyQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedule `item` to run at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        self.heap.push(Reverse((time, self.seq, OrdWrap(item))));
        self.seq += 1;
    }

    /// Remove and return the earliest `(time, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse((t, _, w))| (t, w.0))
    }

    /// The earliest scheduled time without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ReadyQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo_not_by_value() {
        let mut q = ReadyQueue::new();
        // Push in an order that differs from the natural value ordering.
        q.push(SimTime(5), 9u32);
        q.push(SimTime(5), 1u32);
        q.push(SimTime(5), 4u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![9, 1, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = ReadyQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
