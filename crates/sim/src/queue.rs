//! The time-ordered run queue.
//!
//! Two implementations share one contract — pops come out ordered by
//! `(time, enqueue order)`:
//!
//! * [`ReadyQueue`] — a calendar queue (Brown 1988): events hash into a
//!   ring of day-width buckets by quantized [`SimTime`], far-future
//!   events park on an overflow rung, and a monotone day cursor scans
//!   forward. Push is O(1); pop touches one (usually tiny) bucket. This
//!   is the engine's production queue.
//! * [`HeapReadyQueue`] — the original `BinaryHeap` formulation, kept as
//!   the executable reference model the calendar queue is lockstep
//!   proptested against (`tests/proptest_sim.rs`).
//!
//! When several simulated threads become runnable at the same virtual
//! instant, the one that was *enqueued first* runs first. Ordering on
//! `(time, item)` would instead break ties by item id, which silently
//! couples simulation results to thread numbering — a determinism hazard
//! the sequence counter removes. Both implementations order by the exact
//! `(time, seq)` pair, so their pop sequences are identical element for
//! element (the lockstep proptest pins this).

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the calendar bucket width in virtual nanoseconds. 256 ns per
/// bucket sits just above the typical micro-op duration (a page touch is
/// tens to a few hundred ns), so consecutive pops usually advance the
/// cursor by at most one day.
const DAY_SHIFT: u32 = 8;

/// Number of buckets in the calendar ring (power of two). The horizon —
/// how far ahead an event may be and still live in the ring — is
/// `BUCKETS << DAY_SHIFT` = 16 µs; anything later waits on the overflow
/// rung until the cursor's year reaches it.
const BUCKETS: usize = 64;

/// Ring-index mask (`BUCKETS` is a power of two).
const BUCKET_MASK: u64 = BUCKETS as u64 - 1;

/// One scheduled event: the instant, the FIFO tie-break ticket, and the
/// caller's payload. The quantized day is cached so the locate scan is a
/// single integer compare per entry.
#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    day: u64,
    seq: u64,
    item: T,
}

/// Quantized day of an instant.
#[inline]
fn day_of(time: SimTime) -> u64 {
    time.0 >> DAY_SHIFT
}

/// Cached location of the current minimum entry (always inside a bucket:
/// the locate pass migrates any eligible overflow entries first). Lets
/// the engine's peek-then-pop fast-path pattern pay the bucket scan once.
#[derive(Debug, Clone, Copy)]
struct Front {
    bucket: usize,
    idx: usize,
    time: SimTime,
    seq: u64,
}

/// A calendar queue of `(time, item)` pairs with deterministic FIFO
/// tie-breaking — see the module docs for the layout and the ordering
/// contract it shares with [`HeapReadyQueue`].
#[derive(Debug, Clone)]
pub struct ReadyQueue<T> {
    /// The calendar ring. Bucket `b` holds events whose quantized day is
    /// congruent to `b` modulo [`BUCKETS`]; a bucket may hold events of
    /// several "years" at once, so the scan matches on the exact day.
    buckets: Vec<Vec<Entry<T>>>,
    /// One occupancy bit per bucket (`BUCKETS` = 64 = one machine word):
    /// the cursor jumps to the next occupied bucket with a rotate +
    /// `trailing_zeros` instead of walking empty days one by one — the
    /// virtual-time strides between engine quanta span thousands of
    /// bucket widths, so the walk, not the scan, would dominate.
    occupied: u64,
    /// Far-future events (beyond the ring horizon at push time), in
    /// arrival order. Migrated into the ring before the cursor can reach
    /// their day.
    overflow: Vec<Entry<T>>,
    /// Smallest quantized day on the overflow rung (`u64::MAX` if empty).
    overflow_min_day: u64,
    /// The scan cursor: every event of any earlier day has been popped.
    day: u64,
    /// Events currently in the ring (excludes the overflow rung).
    ring_len: usize,
    /// Total events queued.
    len: usize,
    /// Next FIFO ticket.
    seq: u64,
    /// Cached minimum, if located and not yet invalidated.
    front: Option<Front>,
}

impl<T> Default for ReadyQueue<T> {
    fn default() -> Self {
        ReadyQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: 0,
            overflow: Vec::new(),
            overflow_min_day: u64::MAX,
            day: 0,
            ring_len: 0,
            len: 0,
            seq: 0,
            front: None,
        }
    }
}

impl<T> ReadyQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// An empty queue sized for about `capacity` concurrently queued
    /// items. Engines that push/pop once per micro-op size the queue to
    /// the thread count up front so no bucket grows mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = ReadyQueue::new();
        // Concurrent events cluster in neighbouring days; give the first
        // few buckets room rather than spreading tiny reservations.
        for b in q.buckets.iter_mut().take(8) {
            b.reserve(capacity.div_ceil(8));
        }
        q
    }

    /// Schedule `item` to run at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        let d = day_of(time);
        // Events are almost always scheduled at or after the cursor, but
        // nothing breaks if one lands earlier: the cursor backs up and
        // the forward scan re-covers the day.
        if d < self.day {
            self.day = d;
        }
        let entry = Entry {
            time,
            day: d,
            seq,
            item,
        };
        if d < self.day + BUCKETS as u64 {
            let bucket = (d & BUCKET_MASK) as usize;
            self.buckets[bucket].push(entry);
            self.occupied |= 1 << bucket;
            self.ring_len += 1;
            // A new entry beats the cached front only if strictly earlier
            // (its ticket is the largest yet, so equal times lose).
            if let Some(f) = self.front {
                if time < f.time {
                    self.front = Some(Front {
                        bucket,
                        idx: self.buckets[bucket].len() - 1,
                        time,
                        seq,
                    });
                }
            }
        } else {
            // Beyond the horizon: the overflow rung. It cannot beat the
            // cached front — the front's day is inside the ring window,
            // hence strictly earlier than `d`.
            self.overflow.push(entry);
            self.overflow_min_day = self.overflow_min_day.min(d);
        }
        self.len += 1;
    }

    /// Remove and return the earliest `(time, item)` (FIFO among equal
    /// times).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let f = self.locate_min()?;
        self.front = None;
        self.ring_len -= 1;
        self.len -= 1;
        let entry = self.buckets[f.bucket].swap_remove(f.idx);
        if self.buckets[f.bucket].is_empty() {
            self.occupied &= !(1 << f.bucket);
        }
        debug_assert_eq!(entry.seq, f.seq);
        Some((entry.time, entry.item))
    }

    /// The earliest scheduled time without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.locate_min().map(|f| f.time)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Find (and cache) the minimum `(time, seq)` entry, advancing the
    /// day cursor past empty days and pulling overflow events into the
    /// ring before the cursor can reach their day.
    fn locate_min(&mut self) -> Option<Front> {
        if self.len == 0 {
            return None;
        }
        if let Some(f) = self.front {
            return Some(f);
        }
        if self.ring_len == 0 {
            // Ring drained: jump the cursor straight to the earliest
            // overflow day instead of scanning empty days toward it.
            self.day = self.overflow_min_day;
        }
        self.migrate_overflow();
        let mut misses = 0usize;
        loop {
            debug_assert!(self.ring_len > 0, "locate with an empty ring");
            debug_assert_ne!(self.occupied, 0, "ring entries but no occupancy bit");
            // Jump the cursor to the next occupied bucket at or after the
            // current day. Cursor jumps never out-run overflow migration:
            // a jump moves at most BUCKETS-1 days, and everything that
            // close was already inside the migration horizon.
            let jump = self
                .occupied
                .rotate_right((self.day & BUCKET_MASK) as u32)
                .trailing_zeros() as u64;
            if jump > 0 {
                self.day += jump;
                self.migrate_overflow();
            }
            let bucket = (self.day & BUCKET_MASK) as usize;
            let mut best: Option<Front> = None;
            for (idx, e) in self.buckets[bucket].iter().enumerate() {
                if e.day == self.day && best.is_none_or(|b| (e.time, e.seq) < (b.time, b.seq)) {
                    best = Some(Front {
                        bucket,
                        idx,
                        time: e.time,
                        seq: e.seq,
                    });
                }
            }
            if best.is_some() {
                self.front = best;
                return best;
            }
            // The bucket held only future-year events. A few such misses
            // are cheaper than bookkeeping; a streak means the events are
            // stacked years ahead, so jump straight to the earliest day.
            misses += 1;
            if misses >= 4 {
                let ring_min = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| e.day)
                    .min()
                    .expect("ring entries exist");
                self.day = ring_min.min(self.overflow_min_day);
                self.migrate_overflow();
                continue;
            }
            // Skip to the next occupied bucket strictly after this one
            // (this bucket's own events are at least a full year out).
            let rot = self.occupied.rotate_right(bucket as u32) & !1;
            self.day += if rot == 0 {
                BUCKETS as u64
            } else {
                rot.trailing_zeros() as u64
            };
            self.migrate_overflow();
        }
    }

    /// Move every overflow event whose day is inside the current ring
    /// window into its bucket. Called whenever the cursor (re)starts or
    /// advances, so an overflow event is ring-resident a full year before
    /// the cursor can reach its day. The guard is inlined — on the
    /// engine's hot path the rung is empty or far away, and the check is
    /// one compare.
    #[inline]
    fn migrate_overflow(&mut self) {
        if self.overflow_min_day < self.day + BUCKETS as u64 {
            self.migrate_overflow_slow();
        }
    }

    #[cold]
    fn migrate_overflow_slow(&mut self) {
        let horizon = self.day + BUCKETS as u64;
        let mut min_day = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let d = self.overflow[i].day;
            if d < horizon {
                let entry = self.overflow.swap_remove(i);
                let bucket = (d & BUCKET_MASK) as usize;
                self.buckets[bucket].push(entry);
                self.occupied |= 1 << bucket;
                self.ring_len += 1;
            } else {
                min_day = min_day.min(d);
                i += 1;
            }
        }
        self.overflow_min_day = min_day;
        // Bucket contents moved; any cached location may be stale.
        self.front = None;
    }
}

/// The original min-heap of `(time, seq, item)` triples — the reference
/// model for the calendar [`ReadyQueue`], ordered by the identical
/// `(time, seq)` key. Kept because an executable specification this
/// small is the cheapest possible correctness anchor for the calendar
/// queue's bucket/overflow bookkeeping.
#[derive(Debug, Clone)]
pub struct HeapReadyQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, OrdWrap<T>)>>,
    seq: u64,
}

/// Wrapper that deliberately ignores `T` in the ordering so ties are broken
/// purely by the sequence number.
#[derive(Debug, Clone)]
struct OrdWrap<T>(T);

impl<T> PartialEq for OrdWrap<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdWrap<T> {}
impl<T> PartialOrd for OrdWrap<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdWrap<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for HeapReadyQueue<T> {
    fn default() -> Self {
        HeapReadyQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> HeapReadyQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        HeapReadyQueue::default()
    }

    /// Schedule `item` to run at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        self.heap.push(Reverse((time, self.seq, OrdWrap(item))));
        self.seq += 1;
    }

    /// Remove and return the earliest `(time, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse((t, _, w))| (t, w.0))
    }

    /// The earliest scheduled time without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ReadyQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo_not_by_value() {
        let mut q = ReadyQueue::new();
        // Push in an order that differs from the natural value ordering.
        q.push(SimTime(5), 9u32);
        q.push(SimTime(5), 1u32);
        q.push(SimTime(5), 4u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![9, 1, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = ReadyQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_overflow_rung() {
        // Beyond the 16 µs horizon: parked on the rung, then popped in
        // exact order once the cursor's year reaches them.
        let mut q = ReadyQueue::new();
        q.push(SimTime(1 << 30), 3u32);
        q.push(SimTime(5), 1u32);
        q.push(SimTime((1 << 30) - 1), 2u32);
        q.push(SimTime(1 << 30), 4u32); // same far instant: FIFO after 3
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        assert_eq!(q.pop(), Some((SimTime((1 << 30) - 1), 2)));
        assert_eq!(q.pop(), Some((SimTime(1 << 30), 3)));
        assert_eq!(q.pop(), Some((SimTime(1 << 30), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_before_the_cursor_is_still_ordered() {
        // Popping at t=10_000 moves the cursor forward; a later push at
        // an earlier instant must still pop first.
        let mut q = ReadyQueue::new();
        q.push(SimTime(10_000), "late");
        q.push(SimTime(20_000), "later");
        assert_eq!(q.pop(), Some((SimTime(10_000), "late")));
        q.push(SimTime(100), "early");
        assert_eq!(q.pop(), Some((SimTime(100), "early")));
        assert_eq!(q.pop(), Some((SimTime(20_000), "later")));
    }

    #[test]
    fn saturated_times_do_not_wrap_the_calendar() {
        let mut q = ReadyQueue::new();
        q.push(SimTime(u64::MAX), "end of time");
        q.push(SimTime(0), "now");
        assert_eq!(q.pop(), Some((SimTime(0), "now")));
        assert_eq!(q.pop(), Some((SimTime(u64::MAX), "end of time")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_reference_matches_on_a_smoke_interleaving() {
        let mut cal = ReadyQueue::new();
        let mut heap = HeapReadyQueue::new();
        let times = [7u64, 7, 300_000, 5, 7, 1 << 40, 300_000, 0, 12];
        for (i, &t) in times.iter().enumerate() {
            cal.push(SimTime(t), i);
            heap.push(SimTime(t), i);
            if i % 3 == 2 {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        while let Some(expect) = heap.pop() {
            assert_eq!(cal.pop(), Some(expect));
        }
        assert_eq!(cal.pop(), None);
    }
}
