//! Virtual time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is a saturating-arithmetic newtype: experiment sweeps routinely
/// multiply per-page costs by tens of thousands of pages, and a silent wrap
/// would corrupt a whole table, so overflow pins to `u64::MAX` (which any
/// sanity check then catches loudly).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The raw nanosecond count.
    pub fn ns(self) -> u64 {
        self.0
    }

    /// Seconds as f64 (for table output).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is later
    /// (durations never go negative).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 = self.0.saturating_add(ns);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100);
        assert_eq!((t + 50).ns(), 150);
        assert_eq!(t.since(SimTime(40)), 60);
        assert_eq!(t.since(SimTime(200)), 0);
        assert_eq!(SimTime(300) - SimTime(100), 200);
    }

    #[test]
    fn saturation() {
        let t = SimTime(u64::MAX - 1);
        assert_eq!((t + 100).ns(), u64::MAX);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(1).max(SimTime(2)), SimTime(2));
    }

    #[test]
    fn secs() {
        assert!((SimTime(1_500_000_000).secs_f64() - 1.5).abs() < 1e-12);
    }
}
