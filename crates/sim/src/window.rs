//! Virtual-time windows for conservative parallel execution.
//!
//! A sharded simulation advances in fixed-width windows of virtual time.
//! Within a window every shard runs independently; the window width is
//! chosen at or below the machine's conservative lookahead (the minimum
//! cross-node access latency — see
//! `Topology::min_cross_node_latency_ns`), so nothing one shard does
//! inside a window can causally reach another shard before the barrier at
//! its end. All cross-shard effects (frame-capacity grants, cache-thrash
//! flushes, counter folds) are applied at those barriers, in an order
//! keyed on `(SimTime, tenant_id, seq)` — never on shard id or worker
//! id — which is what makes the output byte-identical for any
//! `--shards`/`--jobs` choice.
//!
//! [`WindowClock`] owns the window arithmetic: boundaries are exact
//! multiples of the width, so a given virtual instant lands in the same
//! window no matter how many shards exist, and an idle stretch can be
//! skipped by jumping straight to the window containing the next event
//! machine-wide (a global property, hence equally shard-invariant).

use crate::time::SimTime;

/// Multiple of the conservative lookahead used for the default window
/// width. Larger windows amortise barrier overhead; the merge stays exact
/// because *all* cross-shard coupling is deferred to barriers regardless
/// of width — the lookahead multiple only bounds how stale one shard's
/// view of another can get, and every consumer of cross-shard state reads
/// it at barriers only.
pub const WINDOW_LOOKAHEAD_MULTIPLE: u64 = 64;

/// Fixed-width virtual-time window sequencer.
#[derive(Debug, Clone)]
pub struct WindowClock {
    width_ns: u64,
    /// Exclusive end of the current window.
    end: SimTime,
    /// Windows executed (barriers reached), including skipped jumps.
    windows: u64,
    /// Windows whose entire span held no runnable event and were jumped
    /// over without a barrier round.
    skipped: u64,
}

impl WindowClock {
    /// A clock with `width_ns`-wide windows starting at virtual zero.
    /// Zero widths are clamped to one so the sequencer always advances.
    pub fn new(width_ns: u64) -> Self {
        let width_ns = width_ns.max(1);
        WindowClock {
            width_ns,
            end: SimTime(width_ns),
            windows: 0,
            skipped: 0,
        }
    }

    /// The standard width for a machine with the given conservative
    /// lookahead: [`WINDOW_LOOKAHEAD_MULTIPLE`] × lookahead.
    pub fn width_for_lookahead(lookahead_ns: u64) -> u64 {
        lookahead_ns.max(1) * WINDOW_LOOKAHEAD_MULTIPLE
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Exclusive end of the current window: shards run events strictly
    /// before this instant, then meet at the barrier.
    pub fn horizon(&self) -> SimTime {
        self.end
    }

    /// Advance to the next window after a barrier round.
    pub fn advance(&mut self) {
        self.windows += 1;
        self.end = SimTime(self.end.ns() + self.width_ns);
    }

    /// Jump the horizon so the window containing `next_event` is current,
    /// skipping empty windows without barrier rounds. `next_event` must
    /// be at or past the current horizon; boundaries stay exact multiples
    /// of the width, so the jump depends only on the *global* minimum
    /// next-event time — a shard-count-invariant quantity.
    pub fn skip_to(&mut self, next_event: SimTime) {
        debug_assert!(next_event >= self.end, "skip_to target inside window");
        let gap = next_event.ns() - self.end.ns();
        let jumped = gap / self.width_ns + 1;
        self.windows += 1;
        self.skipped += jumped - 1;
        self.end = SimTime(self.end.ns() + jumped * self.width_ns);
    }

    /// Barrier rounds taken so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Empty windows jumped without a barrier round.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Deterministically merge per-stream event runs into one sequence.
///
/// `runs` holds, per stream (tenant), the events that stream produced in
/// its own order. The merged order is by `(key, stream_id, intra-stream
/// index)` — a stable sort keyed on the caller-supplied time key with
/// stream id then emission order breaking ties. Because the key never
/// mentions shard or worker identity, the merged sequence is identical
/// however the streams were packed onto threads.
pub fn merge_streams<T, K: Ord>(runs: Vec<Vec<T>>, mut key: impl FnMut(&T) -> K) -> Vec<T> {
    let total = runs.iter().map(Vec::len).sum();
    let mut tagged: Vec<(K, usize, usize, T)> = Vec::with_capacity(total);
    for (stream, run) in runs.into_iter().enumerate() {
        for (seq, item) in run.into_iter().enumerate() {
            tagged.push((key(&item), stream, seq, item));
        }
    }
    tagged.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
    tagged.into_iter().map(|(_, _, _, item)| item).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_advance_on_fixed_boundaries() {
        let mut w = WindowClock::new(100);
        assert_eq!(w.horizon(), SimTime(100));
        w.advance();
        assert_eq!(w.horizon(), SimTime(200));
        assert_eq!(w.windows(), 1);
        assert_eq!(w.skipped(), 0);
    }

    #[test]
    fn skip_jumps_to_window_containing_event() {
        let mut w = WindowClock::new(100);
        // Next event at t=450: current window [0,100) is done, event's
        // window is [400,500) so horizon jumps to 500.
        w.skip_to(SimTime(450));
        assert_eq!(w.horizon(), SimTime(500));
        assert_eq!(w.windows(), 1);
        assert_eq!(w.skipped(), 3);
        // Event exactly on the horizon: only the next window is entered.
        w.skip_to(SimTime(500));
        assert_eq!(w.horizon(), SimTime(600));
        assert_eq!(w.skipped(), 3);
    }

    #[test]
    fn skip_on_boundary_multiple() {
        let mut w = WindowClock::new(100);
        // Event exactly at a later boundary: window [700,800).
        w.skip_to(SimTime(700));
        assert_eq!(w.horizon(), SimTime(800));
        assert_eq!(w.skipped(), 6);
    }

    #[test]
    fn zero_width_clamped() {
        let w = WindowClock::new(0);
        assert_eq!(w.width_ns(), 1);
    }

    #[test]
    fn merge_orders_by_key_then_stream_then_seq() {
        // Stream 1's event at t=5 must sort before stream 0's at t=7,
        // and ties on time resolve by stream id, then emission order.
        let runs = vec![vec![(7u64, "a0"), (9, "a1")], vec![(5u64, "b0"), (7, "b1")]];
        let merged = merge_streams(runs, |e| e.0);
        let names: Vec<&str> = merged.iter().map(|e| e.1).collect();
        assert_eq!(names, ["b0", "a0", "b1", "a1"]);
    }

    #[test]
    fn merge_is_packing_invariant() {
        // The same streams merged from differently-ordered run vectors
        // (simulating different shard packings) give the same sequence —
        // as long as stream ids are stable, which the orchestrator
        // guarantees by indexing runs by tenant id.
        let a = vec![vec![(1u64, 0usize)], vec![(1, 1)], vec![(0, 2)]];
        let merged = merge_streams(a, |e| e.0);
        assert_eq!(
            merged.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
    }
}
