//! Deterministic discrete-event simulation primitives.
//!
//! The `numa-machine` crate drives simulated threads through virtual time;
//! this crate provides the building blocks it needs:
//!
//! * [`SimTime`] — virtual nanoseconds;
//! * [`Resource`] — a contended serial resource (interconnect link, memory
//!   controller, kernel lock) with busy-until semantics and wait accounting;
//! * [`ReadyQueue`] — the time-ordered run queue with deterministic
//!   tie-breaking;
//! * [`BarrierState`] — OpenMP-style barrier bookkeeping;
//! * [`Splitmix64`] — a tiny deterministic PRNG so simulations never depend
//!   on ambient randomness;
//! * [`trace`] — an optional event trace for debugging runs.
//!
//! Everything here is single-threaded on purpose: determinism is a
//! correctness requirement for regenerating the paper's tables
//! (DESIGN.md §7).

pub mod barrier;
pub mod faultinject;
pub mod hash;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;
pub mod window;

pub use barrier::{BarrierOutcome, BarrierState};
pub use faultinject::{FaultInjector, FaultKind, FaultPlan, FaultRule, FaultSite, FAULT_SITES};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use queue::{HeapReadyQueue, ReadyQueue};
pub use resource::{Acquisition, Resource};
pub use rng::Splitmix64;
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, TraceEventKind, SYSTEM_TID};
pub use window::{merge_streams, WindowClock, WINDOW_LOOKAHEAD_MULTIPLE};
