//! Barrier bookkeeping for OpenMP-style parallel regions.

use crate::SimTime;

/// Outcome of a thread arriving at a barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// The thread must block; it will be released later.
    Wait,
    /// This arrival completed the barrier: every listed thread resumes at
    /// `release_at` (the latest arrival time).
    Release {
        /// Instant at which all participants resume.
        release_at: SimTime,
        /// Thread ids of the previously-blocked participants (the caller
        /// itself is *not* included — it simply continues).
        waiters: Vec<usize>,
    },
}

/// State of one reusable barrier.
///
/// A barrier is created for a fixed team `size`; threads [`arrive`] and
/// either wait or trigger the release. The barrier then resets for the next
/// episode (OpenMP barriers are reused once per loop iteration, which Table 1
/// exercises thousands of times).
///
/// [`arrive`]: BarrierState::arrive
#[derive(Debug, Clone)]
pub struct BarrierState {
    size: usize,
    arrived: Vec<(usize, SimTime)>,
    episodes: u64,
}

impl BarrierState {
    /// A barrier for a team of `size` threads. `size` must be nonzero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "barrier team size must be nonzero");
        BarrierState {
            size,
            arrived: Vec::with_capacity(size),
            episodes: 0,
        }
    }

    /// Team size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Completed episodes so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Number of threads currently blocked at the barrier.
    pub fn waiting(&self) -> usize {
        self.arrived.len()
    }

    /// Thread `tid` arrives at time `now`.
    ///
    /// Panics if the same thread arrives twice in one episode — that is
    /// always a runtime bug, not a workload property.
    pub fn arrive(&mut self, tid: usize, now: SimTime) -> BarrierOutcome {
        assert!(
            !self.arrived.iter().any(|(t, _)| *t == tid),
            "thread {tid} arrived twice at the same barrier episode"
        );
        if self.arrived.len() + 1 == self.size {
            let release_at = self.arrived.iter().map(|(_, t)| *t).fold(now, SimTime::max);
            let waiters = self.arrived.drain(..).map(|(t, _)| t).collect();
            self.episodes += 1;
            BarrierOutcome::Release {
                release_at,
                waiters,
            }
        } else {
            self.arrived.push((tid, now));
            BarrierOutcome::Wait
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_arrival_releases_at_max_time() {
        let mut b = BarrierState::new(3);
        assert_eq!(b.arrive(0, SimTime(10)), BarrierOutcome::Wait);
        assert_eq!(b.arrive(1, SimTime(50)), BarrierOutcome::Wait);
        match b.arrive(2, SimTime(30)) {
            BarrierOutcome::Release {
                release_at,
                waiters,
            } => {
                assert_eq!(release_at, SimTime(50));
                assert_eq!(waiters, vec![0, 1]);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(b.episodes(), 1);
        assert_eq!(b.waiting(), 0);
    }

    #[test]
    fn single_thread_barrier_releases_immediately() {
        let mut b = BarrierState::new(1);
        match b.arrive(0, SimTime(5)) {
            BarrierOutcome::Release {
                release_at,
                waiters,
            } => {
                assert_eq!(release_at, SimTime(5));
                assert!(waiters.is_empty());
            }
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let mut b = BarrierState::new(2);
        assert_eq!(b.arrive(0, SimTime(1)), BarrierOutcome::Wait);
        assert!(matches!(
            b.arrive(1, SimTime(2)),
            BarrierOutcome::Release { .. }
        ));
        // Second episode works with the same state.
        assert_eq!(b.arrive(1, SimTime(3)), BarrierOutcome::Wait);
        assert!(matches!(
            b.arrive(0, SimTime(4)),
            BarrierOutcome::Release { .. }
        ));
        assert_eq!(b.episodes(), 2);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut b = BarrierState::new(3);
        b.arrive(0, SimTime(1));
        b.arrive(0, SimTime(2));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        let _ = BarrierState::new(0);
    }
}
