//! Contended serial resources.
//!
//! A [`Resource`] models anything that serves one request at a time:
//! a HyperTransport link, a node's memory controller, the kernel's mmap
//! lock, a page-table lock. Requests are serviced in arrival order using
//! busy-until semantics:
//!
//! ```text
//! start = max(now, busy_until);  end = start + service;  busy_until = end
//! ```
//!
//! This is the standard M/D/1-style approximation used by architectural
//! simulators: it is exact for a FIFO server and it is what makes bandwidth
//! sharing and lock contention *emerge* in the experiments (paper Fig. 7 and
//! the HyperTransport congestion effects in §4.5) instead of being painted
//! on afterwards.

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Result of acquiring a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquisition {
    /// When service began (>= request time).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
    /// How long the requester waited before service began.
    pub wait_ns: u64,
}

/// A serially-shared resource with FIFO busy-until semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    busy_until: SimTime,
    total_busy_ns: u64,
    total_wait_ns: u64,
    acquisitions: u64,
}

impl Resource {
    /// A new, idle resource.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            ..Resource::default()
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Occupy the resource for `service_ns`, starting no earlier than
    /// `now`. Returns when service started/ended and how long we waited.
    pub fn acquire(&mut self, now: SimTime, service_ns: u64) -> Acquisition {
        let start = now.max(self.busy_until);
        let end = start + service_ns;
        self.busy_until = end;
        let wait = start.since(now);
        self.total_busy_ns += service_ns;
        self.total_wait_ns += wait;
        self.acquisitions += 1;
        Acquisition {
            start,
            end,
            wait_ns: wait,
        }
    }

    /// Transfer `bytes` through the resource at `bytes_per_ns`, starting no
    /// earlier than `now`. Convenience wrapper over [`Resource::acquire`].
    pub fn transfer(&mut self, now: SimTime, bytes: u64, bytes_per_ns: f64) -> Acquisition {
        debug_assert!(bytes_per_ns > 0.0, "bandwidth must be positive");
        // Round up, never down: a nonzero transfer must occupy the resource
        // for at least 1 ns, otherwise streams of small transfers occupy a
        // link for zero time and congestion is undercounted.
        let service = if bytes == 0 {
            0
        } else {
            ((bytes as f64 / bytes_per_ns).ceil() as u64).max(1)
        };
        self.acquire(now, service)
    }

    /// Occupy the resource for `service_ns` starting exactly at `start`
    /// (which the caller has already synchronised across several
    /// resources, e.g. a multi-link pipelined transfer). Extends
    /// `busy_until` monotonically; returns when the occupation ends.
    pub fn occupy(&mut self, start: SimTime, service_ns: u64) -> SimTime {
        let end = start + service_ns;
        // Account only the part that extends past what is already counted
        // as busy: overlapping occupations (pipelined multi-link transfers
        // hitting the same controller) must not push utilisation past 1.0.
        self.total_busy_ns += end.ns().saturating_sub(self.busy_until.max(start).ns());
        self.busy_until = self.busy_until.max(end);
        self.acquisitions += 1;
        end
    }

    /// The earliest instant a new request could begin service.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total time spent servicing requests.
    pub fn total_busy_ns(&self) -> u64 {
        self.total_busy_ns
    }

    /// Total time requesters spent queued.
    pub fn total_wait_ns(&self) -> u64 {
        self.total_wait_ns
    }

    /// Number of acquisitions served.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Utilisation over `[0, horizon]`: busy time / horizon.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon.ns() == 0 {
            0.0
        } else {
            self.total_busy_ns as f64 / horizon.ns() as f64
        }
    }

    /// Forget all state (between experiment repetitions).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.total_busy_ns = 0;
        self.total_wait_ns = 0;
        self.acquisitions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_services_immediately() {
        let mut r = Resource::new("link0");
        let a = r.acquire(SimTime(100), 50);
        assert_eq!(a.start, SimTime(100));
        assert_eq!(a.end, SimTime(150));
        assert_eq!(a.wait_ns, 0);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = Resource::new("lock");
        r.acquire(SimTime(0), 100);
        let a = r.acquire(SimTime(10), 20);
        assert_eq!(a.start, SimTime(100));
        assert_eq!(a.end, SimTime(120));
        assert_eq!(a.wait_ns, 90);
        assert_eq!(r.total_wait_ns(), 90);
        assert_eq!(r.total_busy_ns(), 120);
        assert_eq!(r.acquisitions(), 2);
    }

    #[test]
    fn request_after_idle_gap_does_not_wait() {
        let mut r = Resource::new("mc");
        r.acquire(SimTime(0), 10);
        let a = r.acquire(SimTime(1000), 10);
        assert_eq!(a.start, SimTime(1000));
        assert_eq!(a.wait_ns, 0);
    }

    #[test]
    fn transfer_uses_bandwidth() {
        let mut r = Resource::new("link");
        // 4096 bytes at 4 bytes/ns = 1024 ns.
        let a = r.transfer(SimTime(0), 4096, 4.0);
        assert_eq!(a.end, SimTime(1024));
    }

    #[test]
    fn two_threads_share_bandwidth() {
        // Two 4 kB transfers over the same link serialize: aggregate
        // bandwidth equals the link bandwidth, not 2x.
        let mut r = Resource::new("link");
        let a1 = r.transfer(SimTime(0), 4096, 4.0);
        let a2 = r.transfer(SimTime(0), 4096, 4.0);
        assert_eq!(a1.end, SimTime(1024));
        assert_eq!(a2.end, SimTime(2048));
    }

    #[test]
    fn tiny_transfers_occupy_at_least_one_ns() {
        // Regression: `.round()` let sub-ns transfers occupy for 0 ns.
        let mut r = Resource::new("link");
        let a = r.transfer(SimTime(0), 1, 4.0); // 0.25 ns -> ceil -> 1 ns
        assert_eq!(a.end, SimTime(1));
        let a = r.transfer(SimTime(0), 9, 4.0); // 2.25 ns -> ceil -> 3 ns
        assert_eq!(a.end, SimTime(4));
        assert_eq!(r.total_busy_ns(), 4);
        // Zero bytes still cost nothing.
        let a = r.transfer(SimTime(10), 0, 4.0);
        assert_eq!(a.start, a.end);
    }

    #[test]
    fn overlapping_occupations_do_not_double_count() {
        // Regression: occupy() added the full service even when the window
        // overlapped already-accounted busy time, pushing utilisation > 1.
        let mut r = Resource::new("mc");
        r.occupy(SimTime(0), 100);
        assert_eq!(r.total_busy_ns(), 100);
        // Fully contained in the existing busy window: no extension.
        r.occupy(SimTime(20), 50);
        assert_eq!(r.total_busy_ns(), 100);
        // Partial overlap: only the 40 ns past busy_until count.
        r.occupy(SimTime(60), 80);
        assert_eq!(r.total_busy_ns(), 140);
        assert_eq!(r.busy_until(), SimTime(140));
        assert!(r.utilisation(r.busy_until()) <= 1.0);
        assert_eq!(r.acquisitions(), 3);
    }

    #[test]
    fn utilisation_and_reset() {
        let mut r = Resource::new("x");
        r.acquire(SimTime(0), 500);
        assert!((r.utilisation(SimTime(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilisation(SimTime::ZERO), 0.0);
        r.reset();
        assert_eq!(r.total_busy_ns(), 0);
        assert_eq!(r.busy_until(), SimTime::ZERO);
    }
}
