//! The high-level facade.
//!
//! [`NumaSystem`] wraps machine construction behind a builder so examples
//! and experiments read declaratively: pick a platform preset, choose the
//! kernel variant, perturb cost-model constants for ablations, then
//! `build()` a [`Machine`].

use numa_kernel::KernelConfig;
use numa_machine::Machine;
use numa_topology::{presets, CostModel, Topology};
use numa_vm::{PtPlacement, PtSyncMode};
use std::sync::Arc;

/// Which hardware preset to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// The paper's host: 4 × quad-core Opteron 8347HE (§4.1).
    Opteron4P,
    /// A small 2-node machine (fast tests).
    TwoNode,
    /// An 8-node machine (the paper's "larger NUMA machines" outlook, §6).
    EightNode,
    /// The tiered machine: 4 DRAM nodes + 2 CXL-class slow nodes.
    /// Building this platform always enables the kernel's tiering support
    /// (shadow PTEs, write-generation tracking, tier stall windows) —
    /// a tiered topology without it would silently never migrate.
    Tiered4p2,
}

/// Builder for a fully-assembled simulated host.
#[derive(Debug, Clone)]
pub struct NumaSystem {
    platform: Platform,
    kernel: KernelConfig,
    cost_override: Option<CostModel>,
    pt_placement: Option<(PtPlacement, PtSyncMode)>,
}

impl Default for NumaSystem {
    fn default() -> Self {
        NumaSystem::new()
    }
}

impl NumaSystem {
    /// The paper's platform with the paper's kernel.
    pub fn new() -> Self {
        NumaSystem {
            platform: Platform::Opteron4P,
            kernel: KernelConfig::default(),
            cost_override: None,
            pt_placement: None,
        }
    }

    /// Select the hardware preset.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Select the kernel configuration (e.g.
    /// [`KernelConfig::vanilla_2_6_27`] for the un-patched baseline).
    pub fn kernel(mut self, config: KernelConfig) -> Self {
        self.kernel = config;
        self
    }

    /// Replace the cost model (ablation experiments).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost_override = Some(cost);
        self
    }

    /// Mutate the cost model in place (ablation experiments).
    pub fn tweak_cost(mut self, f: impl FnOnce(&mut CostModel)) -> Self {
        let mut cost = self.cost_override.take().unwrap_or_default();
        f(&mut cost);
        self.cost_override = Some(cost);
        self
    }

    /// Place the process's page table (ptplace subsystem): a fixed home
    /// node or per-node replicas, with eager or lazy replica sync. Left
    /// unset, the page table is cost-free to walk and every existing
    /// experiment's numbers are unchanged.
    pub fn pt_placement(mut self, placement: PtPlacement, mode: PtSyncMode) -> Self {
        self.pt_placement = Some((placement, mode));
        self
    }

    /// Assemble the machine.
    pub fn build(self) -> Machine {
        let mut kernel = self.kernel;
        let topo: Topology = match (self.platform, self.cost_override) {
            (Platform::Opteron4P, Some(c)) => presets::opteron_4p_with_cost(c),
            (Platform::Opteron4P, None) => presets::opteron_4p(),
            (Platform::TwoNode, Some(c)) => presets::two_node_with_cost(c),
            (Platform::TwoNode, None) => presets::two_node(),
            (Platform::EightNode, _) => presets::eight_node(),
            (Platform::Tiered4p2, cost) => {
                kernel.tiering = true;
                match cost {
                    Some(c) => presets::tiered_4p2_with(c, 8 << 30, 16 << 30),
                    None => presets::tiered_4p2(),
                }
            }
        };
        let mut machine = Machine::new(Arc::new(topo), kernel);
        if let Some((placement, mode)) = self.pt_placement {
            let nodes = machine.topology().node_count();
            machine.space.pt_configure(placement, mode, nodes);
        }
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds_the_paper_machine() {
        let m = NumaSystem::new().build();
        assert_eq!(m.topology().node_count(), 4);
        assert_eq!(m.topology().core_count(), 16);
        assert!(m.kernel.config.patched_move_pages);
    }

    #[test]
    fn kernel_variant_selectable() {
        let m = NumaSystem::new()
            .kernel(KernelConfig::vanilla_2_6_27())
            .build();
        assert!(!m.kernel.config.patched_move_pages);
        assert!(!m.kernel.config.kernel_next_touch);
    }

    #[test]
    fn cost_tweaks_apply() {
        let m = NumaSystem::new()
            .tweak_cost(|c| c.move_pages_base_ns = 999)
            .build();
        assert_eq!(m.topology().cost().move_pages_base_ns, 999);
    }

    #[test]
    fn tiered_platform_enables_tiering() {
        let m = NumaSystem::new().platform(Platform::Tiered4p2).build();
        assert_eq!(m.topology().node_count(), 6);
        assert!(m.topology().is_tiered());
        assert!(m.kernel.config.tiering);
    }

    #[test]
    fn platforms_differ() {
        assert_eq!(
            NumaSystem::new()
                .platform(Platform::TwoNode)
                .build()
                .topology()
                .node_count(),
            2
        );
        assert_eq!(
            NumaSystem::new()
                .platform(Platform::EightNode)
                .build()
                .topology()
                .node_count(),
            8
        );
    }
}
