//! # numa-migrate
//!
//! High-performance NUMA memory migration with next-touch and lazy
//! policies — a full simulated reproduction of *Goglin & Furmento,
//! "Enabling High-Performance Memory Migration for Multithreaded
//! Applications on Linux"*, MTAAP'09 (IPDPS 2009).
//!
//! ## What this crate gives you
//!
//! * a deterministic **NUMA machine simulator** (topology, virtual memory,
//!   caches, HyperTransport-style interconnect with congestion);
//! * a **simulated Linux kernel** with `move_pages` (both the historical
//!   quadratic implementation and the paper's linear fix), `migrate_pages`,
//!   `mbind`, and the paper's `madvise(MADV_MIGRATE_NEXT_TOUCH)` +
//!   fault-path migration;
//! * a **user-space runtime**: allocation policies, the mprotect/SIGSEGV
//!   next-touch library, lazy migration, and an OpenMP-like `parallel_for`;
//! * **workloads**: the paper's blocked LU factorization (with real,
//!   validated numerics), independent BLAS3 multiplications, BLAS1, and an
//!   AMR-style dynamic stencil;
//! * an **experiment harness** ([`experiments`]) that regenerates every
//!   table and figure of the paper's evaluation section.
//!
//! ## Quickstart
//!
//! ```
//! use numa_migrate::prelude::*;
//!
//! // The paper's 4-socket quad-core Opteron.
//! let mut machine = Machine::opteron_4p();
//!
//! // A 1 MB buffer, first-touched on node 0.
//! let buf = Buffer::alloc(&mut machine, 1 << 20);
//! numa_rt::setup::populate_on_node(&mut machine, &buf, NodeId(0));
//!
//! // Mark migrate-on-next-touch, then touch from a node-2 core: every
//! // page follows the toucher.
//! let threads = vec![ThreadSpec::scripted(
//!     CoreId(8),
//!     vec![
//!         Op::MadviseNextTouch { range: buf.page_range() },
//!         Op::write(buf.addr, buf.len, MemAccessKind::Stream),
//!     ],
//! )];
//! machine.run(threads, &[]);
//! assert_eq!(machine.page_node(buf.addr), Some(NodeId(2)));
//! ```
//!
//! See `examples/` for larger scenarios and `numa-bench` for the
//! per-figure experiment binaries.

pub mod experiments;
pub mod prelude;
pub mod system;

pub use system::NumaSystem;

// Re-export the component crates under stable names so downstream users
// need only one dependency.
pub use numa_apps as apps;
pub use numa_kernel as kernel;
pub use numa_machine as machine;
pub use numa_rt as rt;
pub use numa_sim as sim;
pub use numa_stats as stats;
pub use numa_tier as tier;
pub use numa_topology as topology;
pub use numa_vm as vm;
