//! One-stop imports for applications and experiments.

pub use numa_apps::lu::{run_lu, LuConfig, LuResult};
pub use numa_apps::matrix::{DataMode, SimMatrix};
pub use numa_kernel::{Kernel, KernelConfig};
pub use numa_machine::{
    Machine, MemAccessKind, Op, Program, RunResult, RunStats, SegvHandler, ThreadSpec,
};
pub use numa_rt::{Buffer, MigrationStrategy, Schedule, Team, UserNextTouch, WorkPlan};
pub use numa_sim::SimTime;
pub use numa_stats::{Breakdown, CostComponent, Counter, Counters, Table};
pub use numa_topology::{presets, CoreId, CostModel, NodeId, Topology};
pub use numa_vm::{MemPolicy, PageRange, Protection, VirtAddr, PAGE_SIZE};

pub use crate::system::NumaSystem;
