//! Page-table placement experiment (ptplace subsystem): the same
//! workload measured with three page-table placements —
//!
//! * **local** — single home on node 0, co-located with the threads;
//! * **repl** — Mitosis-style per-node replicas (eager write-through);
//! * **remote** — single home on node 3 (two HyperTransport hops from
//!   the threads on the Opteron 4P).
//!
//! Four workloads span the trade-off space:
//!
//! * `walk` — walk-dominated: threads first-touch their chunks and then
//!   random-read them repeatedly. Every touch pays the expected
//!   TLB-miss × walk-latency cost, so the remote home loses by the
//!   interconnect factor while replicas walk locally and only pay the
//!   one-time eager sync of the first-touch faults. The acceptance
//!   ordering `local < repl < remote` holds at every size.
//! * `migrate` — migration-dominated (Fig. 4 shape): `move_pages` the
//!   buffer across nodes, then stream it back. Every PTE rewrite
//!   charges the replica write-through, so replication is the *worst*
//!   placement here — the cost Mitosis pays on munmap/migration-heavy
//!   workloads.
//! * `next_touch` — the Fig. 5 kernel next-touch path: mark, then
//!   touch from another node. Replicas pay sync on the madvise marking
//!   and again on every next-touch fault's frame swap.
//! * `lu` — the Table-1 blocked LU factorization with kernel
//!   next-touch, the paper's real application.

use crate::system::NumaSystem;
use numa_apps::lu::{run_lu, LuConfig};
use numa_machine::{MemAccessKind, Op, ThreadSpec};
use numa_rt::{setup, Buffer, MigrationStrategy};
use numa_topology::NodeId;
use numa_vm::{PtPlacement, PtSyncMode, PAGE_SIZE};

/// Random-read passes of the `walk` workload (after first touch).
pub const WALK_SWEEPS: u64 = 16;

/// The node the `remote` scenario homes the page table on: the farthest
/// node from the worker node 0 on the Opteron 4P (two hops).
pub const REMOTE_HOME: NodeId = NodeId(3);

/// The three page-table placements each workload is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtScenario {
    /// Single home co-located with the workers (node 0).
    Local,
    /// Per-node replicas with eager write-through.
    Replicated,
    /// Single home two hops away ([`REMOTE_HOME`]).
    Remote,
}

impl PtScenario {
    /// All scenarios, in report-column order.
    pub const ALL: [PtScenario; 3] = [
        PtScenario::Local,
        PtScenario::Replicated,
        PtScenario::Remote,
    ];

    /// Stable column label.
    pub fn label(self) -> &'static str {
        match self {
            PtScenario::Local => "local",
            PtScenario::Replicated => "repl",
            PtScenario::Remote => "remote",
        }
    }

    /// The paper machine with this scenario's page-table placement.
    pub fn system(self) -> NumaSystem {
        let sys = NumaSystem::new();
        match self {
            PtScenario::Local => {
                sys.pt_placement(PtPlacement::SingleHome(NodeId(0)), PtSyncMode::Eager)
            }
            PtScenario::Replicated => sys.pt_placement(PtPlacement::Replicated, PtSyncMode::Eager),
            PtScenario::Remote => {
                sys.pt_placement(PtPlacement::SingleHome(REMOTE_HOME), PtSyncMode::Eager)
            }
        }
    }
}

/// One (workload, size) cell measured under all three placements.
#[derive(Debug, Clone)]
pub struct PtreplRow {
    /// Workload name (`walk`, `migrate`, `next_touch`, `lu`).
    pub workload: &'static str,
    /// Buffer size in 4 kB pages (matrix dimension for `lu`).
    pub pages: u64,
    /// Makespan with the co-located single home, ns.
    pub local_ns: u64,
    /// Makespan with per-node replicas, ns.
    pub repl_ns: u64,
    /// Makespan with the remote single home, ns.
    pub remote_ns: u64,
}

impl PtreplRow {
    /// Remote-home slowdown over the co-located home.
    pub fn remote_slowdown(&self) -> f64 {
        self.remote_ns as f64 / self.local_ns as f64
    }

    /// Fraction of the remote-home penalty that replication recovers
    /// (1.0 = walks at local speed, negative = replication costs more
    /// than the remote walks did).
    pub fn repl_recovery(&self) -> f64 {
        let penalty = self.remote_ns.saturating_sub(self.local_ns) as f64;
        if penalty == 0.0 {
            return 0.0;
        }
        (self.remote_ns.saturating_sub(self.repl_ns)) as f64 / penalty
    }
}

/// The page-count sweep of the `walk`/`migrate`/`next_touch` workloads.
pub fn default_page_counts() -> Vec<u64> {
    (6..=12).map(|e| 1u64 << e).collect()
}

/// The (workload, size) cells of a full run: the walk sweep plus one
/// representative migration, next-touch, and LU case each.
pub fn cases(page_counts: &[u64]) -> Vec<(&'static str, u64)> {
    let mut cases: Vec<(&'static str, u64)> = page_counts.iter().map(|&p| ("walk", p)).collect();
    let mid = page_counts[page_counts.len() / 2];
    cases.push(("migrate", mid));
    cases.push(("next_touch", mid));
    cases.push(("lu", 1024));
    cases
}

/// Below this much summed estimated work (page-touch units, see
/// [`case_work`]) the sweep runs sequentially: spawn/join and result-slot
/// synchronisation cost more host time than the cells themselves. The
/// default sweep (~0.8M units, most of it the one `lu` cell that parallel
/// workers cannot split anyway) sits under this gate — `--jobs 4` used to
/// pay pool overhead on it for no speedup because the old gate summed raw
/// `size` values, where `lu`'s matrix dimension (1024) looked *smaller*
/// than a single mid-size walk cell.
const MIN_PARALLEL_SWEEP_WORK: u64 = 1 << 20;

/// Estimated simulated work of one cell, in page-touch units.
///
/// `size` alone is a bad estimator because the workloads scale
/// differently in it: the walk touches every page `1 + WALK_SWEEPS`
/// times, migrate/next-touch touch each page a constant number of times,
/// and `lu`'s `size` is a matrix *dimension* — the factorization does
/// ~n³/3 element updates, i.e. n³/1536 page-touch units at 512 f64 per
/// page.
fn case_work(workload: &str, size: u64) -> u64 {
    match workload {
        "walk" => size * (1 + WALK_SWEEPS),
        "migrate" | "next_touch" => size * 3,
        "lu" => (size * size * size) / 1536,
        _ => size,
    }
}

/// Run the given cells sequentially.
pub fn run(cases: &[(&'static str, u64)]) -> Vec<PtreplRow> {
    run_jobs(cases, 1)
}

/// [`run`] with the cells distributed over `jobs` host threads. Cells
/// are independent (fresh machine each), so the rows are identical to
/// the sequential run's, in the same order.
pub fn run_jobs(cases: &[(&'static str, u64)], jobs: usize) -> Vec<PtreplRow> {
    threadpool::par_map_weighted(
        jobs,
        cases,
        |&(workload, size)| case_work(workload, size),
        MIN_PARALLEL_SWEEP_WORK,
        |_, &(workload, size)| run_case(workload, size),
    )
}

/// Measure one (workload, size) cell under all three placements.
pub fn run_case(workload: &'static str, size: u64) -> PtreplRow {
    let measure = |s: PtScenario| match workload {
        "walk" => measure_walk(s, size),
        "migrate" => measure_migrate(s, size),
        "next_touch" => measure_next_touch(s, size),
        "lu" => measure_lu(s, size),
        other => panic!("unknown ptrepl workload {other:?}"),
    };
    PtreplRow {
        workload,
        pages: size,
        local_ns: measure(PtScenario::Local),
        repl_ns: measure(PtScenario::Replicated),
        remote_ns: measure(PtScenario::Remote),
    }
}

/// Walk-dominated: node-0 threads first-touch their chunks (timed, so
/// the replica write-through of the faults is paid), then random-read
/// them [`WALK_SWEEPS`] times. Returns the makespan in ns.
pub fn measure_walk(scenario: PtScenario, pages: u64) -> u64 {
    let mut m = scenario.system().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    let cores = m.topology().cores_of_node(NodeId(0)).to_vec();
    let chunks = buf.split_pages(cores.len());
    let nthreads = chunks.len();
    let specs = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut ops = vec![
                Op::write(chunk.addr, chunk.len, MemAccessKind::Random),
                Op::Barrier(0),
            ];
            for _ in 0..WALK_SWEEPS {
                ops.push(Op::read(chunk.addr, chunk.len, MemAccessKind::Random));
            }
            ThreadSpec::scripted(cores[i], ops)
        })
        .collect();
    m.run(specs, &[nthreads]).makespan.ns()
}

/// Migration-dominated: populate on node 0 (untimed), then one node-0
/// thread `move_pages`-es the buffer to node 1 and streams it back.
pub fn measure_migrate(scenario: PtScenario, pages: u64) -> u64 {
    let mut m = scenario.system().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let core = m.topology().cores_of_node(NodeId(0))[0];
    let addrs = buf.page_addrs();
    let dest = vec![NodeId(1); addrs.len()];
    let ops = vec![
        Op::MovePages { pages: addrs, dest },
        Op::read(buf.addr, buf.len, MemAccessKind::Stream),
    ];
    let r = m.run(vec![ThreadSpec::scripted(core, ops)], &[]);
    setup::assert_resident_on(&m, &buf, NodeId(1));
    r.makespan.ns()
}

/// Kernel next-touch (Fig. 5 shape): populate on node 0 (untimed), then
/// a node-1 thread marks the buffer next-touch and touches it.
pub fn measure_next_touch(scenario: PtScenario, pages: u64) -> u64 {
    let mut m = scenario.system().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let core = m.topology().cores_of_node(NodeId(1))[0];
    let ops = vec![
        Op::MadviseNextTouch {
            range: buf.page_range(),
        },
        Op::write(buf.addr, buf.len, MemAccessKind::Stream),
    ];
    let r = m.run(vec![ThreadSpec::scripted(core, ops)], &[]);
    setup::assert_resident_on(&m, &buf, NodeId(1));
    r.makespan.ns()
}

/// The Table-1 LU factorization (kernel next-touch strategy) with the
/// page table placed per `scenario`. `n` is the matrix dimension.
pub fn measure_lu(scenario: PtScenario, n: u64) -> u64 {
    let mut m = scenario.system().build();
    run_lu(
        &mut m,
        &LuConfig::sweep(n, 256, MigrationStrategy::KernelNextTouch),
    )
    .time
    .ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_stays_sequential() {
        let cases = cases(&default_page_counts());
        let total: u64 = cases.iter().map(|&(w, s)| case_work(w, s)).sum();
        assert!(
            total < MIN_PARALLEL_SWEEP_WORK,
            "default sweep ({total} units) must stay under the parallel gate"
        );
        // The one lu cell is most of that work: parallel workers cannot
        // split a single cell, so pooling the default sweep buys nothing.
        assert!(case_work("lu", 1024) * 2 > total);
    }

    #[test]
    fn walk_orders_local_repl_remote() {
        for pages in [64, 1024] {
            let row = run_case("walk", pages);
            assert!(
                row.local_ns < row.repl_ns && row.repl_ns < row.remote_ns,
                "walk ordering must be local < repl < remote at {pages} pages: \
                 {} / {} / {}",
                row.local_ns,
                row.repl_ns,
                row.remote_ns
            );
            // Replication recovers most of the remote-walk penalty.
            assert!(
                row.repl_recovery() > 0.5,
                "recovery {} at {pages} pages",
                row.repl_recovery()
            );
        }
    }

    #[test]
    fn migrate_makes_replication_the_worst_placement() {
        let row = run_case("migrate", 512);
        assert!(
            row.repl_ns > row.local_ns && row.repl_ns > row.remote_ns,
            "PTE-rewrite-heavy workloads must pay for replication: \
             {} / {} / {}",
            row.local_ns,
            row.repl_ns,
            row.remote_ns
        );
    }

    #[test]
    fn next_touch_and_lu_run_under_all_placements() {
        let nt = run_case("next_touch", 256);
        assert!(nt.local_ns > 0 && nt.repl_ns > nt.local_ns);
        let lu = run_case("lu", 512);
        assert!(lu.local_ns > 0 && lu.remote_ns > lu.local_ns);
    }

    #[test]
    fn walk_counters_reflect_placement() {
        use numa_stats::Counter;
        // Remote home: every touch is a (probabilistically) remote walk.
        let mut m = PtScenario::Remote.system().build();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let specs = vec![ThreadSpec::scripted(
            m.topology().cores_of_node(NodeId(0))[0],
            vec![Op::write(buf.addr, buf.len, MemAccessKind::Random)],
        )];
        let r = m.run(specs, &[]);
        assert_eq!(r.stats.counters.get(Counter::PtWalksRemote), 8);

        // Replicated: faults write through to the replicas instead.
        let mut m = PtScenario::Replicated.system().build();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let specs = vec![ThreadSpec::scripted(
            m.topology().cores_of_node(NodeId(0))[0],
            vec![Op::write(buf.addr, buf.len, MemAccessKind::Random)],
        )];
        let r = m.run(specs, &[]);
        assert_eq!(r.stats.counters.get(Counter::PtWalksRemote), 0);
        assert_eq!(m.kernel.counters.get(Counter::PtReplicaSyncs), 8);
    }

    #[test]
    fn tracing_moves_no_virtual_time() {
        // The satellite pinning test: enabling tracing must not change
        // any virtual-time number of a placement-enabled run.
        let quiet = measure_walk(PtScenario::Replicated, 64);
        let traced = {
            let mut m = PtScenario::Replicated.system().build();
            m.enable_trace(1 << 16);
            let buf = Buffer::alloc(&mut m, 64 * PAGE_SIZE);
            let cores = m.topology().cores_of_node(NodeId(0)).to_vec();
            let chunks = buf.split_pages(cores.len());
            let nthreads = chunks.len();
            let specs = chunks
                .iter()
                .enumerate()
                .map(|(i, chunk)| {
                    let mut ops = vec![
                        Op::write(chunk.addr, chunk.len, MemAccessKind::Random),
                        Op::Barrier(0),
                    ];
                    for _ in 0..WALK_SWEEPS {
                        ops.push(Op::read(chunk.addr, chunk.len, MemAccessKind::Random));
                    }
                    ThreadSpec::scripted(cores[i], ops)
                })
                .collect();
            let r = m.run(specs, &[nthreads]);
            assert!(
                m.trace
                    .snapshot()
                    .iter()
                    .any(|e| matches!(e.kind, numa_sim::TraceEventKind::PtReplicaSync { .. })),
                "replica syncs must appear in the trace"
            );
            r.makespan.ns()
        };
        assert_eq!(quiet, traced, "tracing must not move virtual time");
    }
}
