//! §4.5 prose: "We observed that the performance of BLAS1 operations
//! (vector operations) never improves thanks to memory migration".
//!
//! A vector kernel makes only a couple of passes over its data, so the
//! one-time migration cost cannot be repaid — unlike BLAS3, whose traffic
//! exceeds its footprint by a factor of the block size.

use crate::system::NumaSystem;
use numa_apps::blas1::{run_daxpy, Blas1Config};
use numa_rt::MigrationStrategy;

/// One row of the BLAS1 check.
#[derive(Debug, Clone, Copy)]
pub struct Blas1Row {
    /// Elements per vector.
    pub elements: u64,
    /// Static time, seconds (virtual).
    pub static_s: f64,
    /// Kernel next-touch time, seconds (virtual).
    pub next_touch_s: f64,
    /// Synchronous move_pages time, seconds (virtual).
    pub sync_s: f64,
}

impl Blas1Row {
    /// Next-touch "improvement" — expected to be <= 0 for every size.
    pub fn nt_improvement_percent(&self) -> f64 {
        (self.static_s / self.next_touch_s - 1.0) * 100.0
    }
}

/// The vector-length axis.
pub fn paper_sizes() -> Vec<u64> {
    vec![1 << 12, 1 << 14, 1 << 16, 1 << 18]
}

/// Run the sweep.
pub fn run(sizes: &[u64]) -> Vec<Blas1Row> {
    sizes
        .iter()
        .map(|&elements| {
            let time = |strategy: MigrationStrategy| {
                let mut m = NumaSystem::new().build();
                run_daxpy(&mut m, &Blas1Config::paper(elements, strategy))
                    .makespan
                    .secs_f64()
            };
            Blas1Row {
                elements,
                static_s: time(MigrationStrategy::Static),
                next_touch_s: time(MigrationStrategy::KernelNextTouch),
                sync_s: time(MigrationStrategy::Sync),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_never_helps_blas1() {
        for row in run(&[1 << 12, 1 << 16]) {
            assert!(
                row.nt_improvement_percent() <= 0.5,
                "next-touch must not help daxpy at {} elements ({:+.1}%)",
                row.elements,
                row.nt_improvement_percent()
            );
            assert!(
                row.sync_s >= row.static_s * 0.995,
                "sync migration must not help daxpy at {} elements",
                row.elements
            );
        }
    }
}
