//! Table 1: "Execution time of the LU matrix factorization with 16 OpenMP
//! threads" — static interleaved allocation vs the kernel next-touch
//! policy across matrix and block sizes.
//!
//! Expected shape (§4.5): next-touch *loses* for small blocks (a 4 kB page
//! holds column segments of several vertically-adjacent blocks, so a
//! single touch drags neighbours' rows along and pages ping-pong between
//! owners every iteration), and *wins* increasingly for `bs >= 512`
//! (one block column segment = one page = independent migration) on large
//! matrices, where congestion on the HyperTransport links makes locality
//! decisive.

use crate::system::NumaSystem;
use numa_apps::lu::{run_lu, LuConfig};
use numa_rt::MigrationStrategy;

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Matrix dimension.
    pub n: u64,
    /// Block dimension.
    pub bs: u64,
    /// Static-interleave factorization time, seconds (virtual).
    pub static_s: f64,
    /// Kernel next-touch factorization time, seconds (virtual).
    pub next_touch_s: f64,
}

impl Table1Row {
    /// The paper's "Improvement" column: positive when next-touch wins.
    pub fn improvement_percent(&self) -> f64 {
        (self.static_s / self.next_touch_s - 1.0) * 100.0
    }
}

/// The (matrix, block) size pairs of the paper's Table 1.
pub fn paper_cases() -> Vec<(u64, u64)> {
    vec![
        (4096, 64),
        (4096, 128),
        (4096, 256),
        (8192, 128),
        (8192, 256),
        (8192, 512),
        (16384, 256),
        (16384, 512),
        (16384, 1024),
        (32768, 256),
        (32768, 512),
    ]
}

/// A reduced case list that keeps the qualitative contrast (fast enough
/// for tests and default bench runs).
pub fn quick_cases() -> Vec<(u64, u64)> {
    vec![(2048, 64), (2048, 128), (4096, 512), (8192, 512)]
}

/// Time one (n, bs, strategy) cell on a fresh machine (phantom numerics).
fn time_cell(n: u64, bs: u64, strategy: MigrationStrategy) -> f64 {
    let mut m = NumaSystem::new().build();
    run_lu(&mut m, &LuConfig::sweep(n, bs, strategy))
        .time
        .secs_f64()
}

/// Run one (n, bs) cell for both strategies (phantom numerics).
pub fn run_case(n: u64, bs: u64) -> Table1Row {
    Table1Row {
        n,
        bs,
        static_s: time_cell(n, bs, MigrationStrategy::Static),
        next_touch_s: time_cell(n, bs, MigrationStrategy::KernelNextTouch),
    }
}

/// Run a list of cases.
pub fn run(cases: &[(u64, u64)]) -> Vec<Table1Row> {
    run_jobs(cases, 1)
}

/// [`run`] with the work distributed over `jobs` host threads. The unit
/// of distribution is one (case, strategy) *cell*, not a whole row: each
/// cell runs on its own fresh machine, so splitting a row's two
/// strategies across workers changes nothing about the results while
/// halving the longest schedulable unit (the biggest case's next-touch
/// run no longer rides behind its static run on one worker). Rows are
/// reassembled in case order — identical to the sequential run's.
pub fn run_jobs(cases: &[(u64, u64)], jobs: usize) -> Vec<Table1Row> {
    let cells: Vec<(u64, u64, MigrationStrategy)> = cases
        .iter()
        .flat_map(|&(n, bs)| {
            [
                (n, bs, MigrationStrategy::Static),
                (n, bs, MigrationStrategy::KernelNextTouch),
            ]
        })
        .collect();
    let times = threadpool::par_map(jobs, &cells, |_, &(n, bs, strategy)| {
        time_cell(n, bs, strategy)
    });
    cases
        .iter()
        .zip(times.chunks_exact(2))
        .map(|(&(n, bs), pair)| Table1Row {
            n,
            bs,
            static_s: pair[0],
            next_touch_s: pair[1],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_touch_wins_big_blocks_large_matrix() {
        let row = run_case(4096, 512);
        assert!(
            row.improvement_percent() > 5.0,
            "expected a next-touch win at 4k/512, got {:+.1}% (static {:.3}s, nt {:.3}s)",
            row.improvement_percent(),
            row.static_s,
            row.next_touch_s
        );
    }

    #[test]
    fn next_touch_loses_small_blocks() {
        // 64x64 blocks: 512-byte column segments, 8 blocks per page.
        let row = run_case(1024, 64);
        assert!(
            row.improvement_percent() < 0.0,
            "expected a next-touch loss at 1k/64, got {:+.1}%",
            row.improvement_percent()
        );
    }

    #[test]
    fn improvement_grows_with_block_size() {
        let small = run_case(4096, 64);
        let large = run_case(4096, 512);
        assert!(
            large.improvement_percent() > small.improvement_percent(),
            "improvement must grow with block size: {:+.1}% -> {:+.1}%",
            small.improvement_percent(),
            large.improvement_percent()
        );
    }
}
