//! Tiering: transactional vs stop-the-world promotion, and the
//! DRAM-capacity crossover.
//!
//! Two experiments on the tiered 4 DRAM + 2 CXL machine, reproducing the
//! shapes Nomad (OSDI'23) reports for its transactional (non-exclusive
//! copy) page migration against the kernel's stop-the-world path:
//!
//! * [`mechanism`] — writers hammer a hot buffer while a migration thread
//!   promotes it out of the slow tier. The stop-the-world path stalls
//!   every touch that lands in a migration window; the transactional path
//!   never stalls a writer but pays for dirtied copies with aborts and
//!   retries. Expected shape: writer time strictly better under the
//!   transactional mechanism, with a nonzero abort count as the price.
//!
//! * [`capacity_sweep`] — the app-time sweep. A hot working set lives in
//!   the slow tier; a kpromoted-style daemon promotes what fits. While
//!   the hot set fits in DRAM, tiering approaches all-DRAM performance
//!   and beats static placement clearly; once the hot set exceeds DRAM
//!   capacity the surplus keeps being served from the slow tier and the
//!   advantage collapses toward 1× — the crossover every tiering paper
//!   plots against working-set size.

use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_stats::Counter;
use numa_tier::{ThresholdPolicy, TierDaemon};
use numa_topology::{CoreId, MemTier, NodeId};
use numa_vm::{MemPolicy, VirtAddr, PAGE_SIZE};

/// First slow-tier node of the preset (node 4; node 5 is the second).
const SLOW_NODE: NodeId = NodeId(4);

/// A machine with `pages` hot pages resident in the slow tier,
/// populated and with contention/caches reset for the timed phase.
fn slow_resident_buffer(mut machine: Machine, pages: u64) -> (Machine, VirtAddr) {
    let addr = machine.alloc(pages * PAGE_SIZE, MemPolicy::Bind(SLOW_NODE));
    machine.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::write(addr, pages * PAGE_SIZE, MemAccessKind::Stream)],
        )],
        &[],
    );
    debug_assert_eq!(machine.page_node(addr), Some(SLOW_NODE));
    machine.reset_contention();
    machine.flush_caches();
    machine.heat.clear();
    (machine, addr)
}

/// One row of the mechanism comparison.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Writer completion time (max over writers), transactional, in ns.
    pub txn_writer_ns: u64,
    /// Writer completion time, stop-the-world, in ns.
    pub stw_writer_ns: u64,
    /// Committed transactional promotions.
    pub txn_commits: u64,
    /// Aborted (dirtied) transactional copies.
    pub txn_aborts: u64,
    /// Touches that stalled on a stop-the-world window.
    pub stw_stalls: u64,
    /// Pages promoted by the transactional run.
    pub txn_promoted: u64,
    /// Pages promoted by the stop-the-world run.
    pub stw_promoted: u64,
}

/// Run the mechanism comparison: for each writer count, promote `pages`
/// slow-tier pages while the writers hammer the first `hot` of them.
/// `seed` shuffles each writer's page traversal order — different seeds
/// give different interleavings (and abort counts); equal seeds give
/// byte-identical results.
pub fn mechanism(writer_counts: &[usize], pages: u64, hot: u64, seed: u64) -> Vec<MechanismRow> {
    mechanism_jobs(writer_counts, pages, hot, seed, 1)
}

/// [`mechanism`] with the writer counts distributed over `jobs` host
/// threads. Items are independent (fresh machine each), so the rows are
/// identical to the sequential run's, in the same order.
pub fn mechanism_jobs(
    writer_counts: &[usize],
    pages: u64,
    hot: u64,
    seed: u64,
    jobs: usize,
) -> Vec<MechanismRow> {
    threadpool::par_map(jobs, writer_counts, |_, &writers| {
        let (txn_writer_ns, txn) = measure_mechanism(writers, pages, hot, seed, true);
        let (stw_writer_ns, stw) = measure_mechanism(writers, pages, hot, seed, false);
        MechanismRow {
            writers,
            txn_writer_ns,
            stw_writer_ns,
            txn_commits: txn.get(Counter::TierTxnCommits),
            txn_aborts: txn.get(Counter::TierTxnAborts),
            stw_stalls: stw.get(Counter::TierStwStalls),
            txn_promoted: txn.get(Counter::TierPromotions),
            stw_promoted: stw.get(Counter::TierPromotions),
        }
    })
}

/// One timed migration-under-writers run. Returns the writers' completion
/// time and the kernel+machine counters.
fn measure_mechanism(
    writers: usize,
    pages: u64,
    hot: u64,
    seed: u64,
    transactional: bool,
) -> (u64, numa_stats::Counters) {
    let (mut machine, addr) = slow_resident_buffer(Machine::tiered_4p2(), pages);
    let hot = hot.min(pages);
    // Writers on distinct DRAM nodes, cycling 64-byte stores over the hot
    // prefix — Random so every store is exposed to the page's tier. Each
    // writer walks the hot set in its own seeded order.
    let passes = 40u64;
    let mut specs: Vec<ThreadSpec> = (0..writers)
        .map(|w| {
            let core = machine.topology().cores_of_node(NodeId((w % 4) as u16))[w / 4];
            let mut order: Vec<u64> = (0..hot).collect();
            numa_sim::Splitmix64::new(seed ^ (w as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .shuffle(&mut order);
            let ops = (0..passes)
                .flat_map(|_| {
                    order
                        .iter()
                        .map(|&p| Op::write(addr + p * PAGE_SIZE, 64, MemAccessKind::Random))
                        .collect::<Vec<_>>()
                })
                .collect();
            ThreadSpec::scripted(core, ops)
        })
        .collect();
    // The migration thread promotes the whole buffer, one op per page so
    // the per-page begin/commit (or stall window) interleaves honestly
    // with writer traffic.
    let vpns: Vec<u64> = (0..pages).map(|p| (addr + p * PAGE_SIZE).vpn()).collect();
    specs.push(ThreadSpec::scripted(
        CoreId(15),
        vec![Op::TierMigrate {
            pages: vpns,
            dest: NodeId(0),
            transactional,
        }],
    ));
    let r = machine.run(specs, &[]);
    let writer_ns = r.thread_end[..writers]
        .iter()
        .map(|t| t.ns())
        .max()
        .unwrap_or(0);
    let mut counters = machine.kernel.counters.clone();
    counters.merge(&r.stats.counters);
    (writer_ns, counters)
}

/// One row of the capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Hot working-set size in pages.
    pub hot_pages: u64,
    /// Total DRAM capacity in pages (all fast nodes).
    pub dram_pages: u64,
    /// Application time with the tiering daemon, in ns.
    pub tiered_ns: u64,
    /// Application time with static placement (no daemon), in ns.
    pub static_ns: u64,
    /// Pages promoted over the run.
    pub promotions: u64,
}

impl CapacityRow {
    /// Static time over tiered time: > 1 means tiering won.
    pub fn speedup(&self) -> f64 {
        self.static_ns as f64 / self.tiered_ns as f64
    }
}

/// Run the capacity sweep: `rounds` rounds of 4 reader threads scanning a
/// hot set that starts in the slow tier, with (tiered) or without
/// (static) a promotion daemon running between rounds. DRAM is shrunk to
/// `dram_pages_per_node` pages per fast node so the crossover happens at
/// simulation-sized working sets.
pub fn capacity_sweep(
    hot_page_counts: &[u64],
    dram_pages_per_node: u64,
    rounds: usize,
) -> Vec<CapacityRow> {
    capacity_sweep_jobs(hot_page_counts, dram_pages_per_node, rounds, 1)
}

/// [`capacity_sweep`] with the hot-set sizes distributed over `jobs` host
/// threads. Items are independent (fresh machine each), so the rows are
/// identical to the sequential run's, in the same order.
pub fn capacity_sweep_jobs(
    hot_page_counts: &[u64],
    dram_pages_per_node: u64,
    rounds: usize,
    jobs: usize,
) -> Vec<CapacityRow> {
    threadpool::par_map(jobs, hot_page_counts, |_, &hot_pages| {
        let (tiered_ns, promotions) =
            measure_capacity(hot_pages, dram_pages_per_node, rounds, true);
        let (static_ns, _) = measure_capacity(hot_pages, dram_pages_per_node, rounds, false);
        CapacityRow {
            hot_pages,
            dram_pages: 4 * dram_pages_per_node,
            tiered_ns,
            static_ns,
            promotions,
        }
    })
}

/// Build the capacity-sweep machine: DRAM shrunk, slow tier ample.
fn capacity_machine(dram_pages_per_node: u64) -> Machine {
    let topo = numa_topology::presets::tiered_4p2_with(
        numa_topology::CostModel::default(),
        dram_pages_per_node * PAGE_SIZE,
        1 << 30,
    );
    Machine::new(
        std::sync::Arc::new(topo),
        numa_kernel::KernelConfig::tiered(),
    )
}

/// One configuration of the capacity sweep. Returns total reader time
/// plus (for the tiered run) daemon migration time, and the promotion
/// count.
fn measure_capacity(
    hot_pages: u64,
    dram_pages_per_node: u64,
    rounds: usize,
    with_daemon: bool,
) -> (u64, u64) {
    let (mut machine, addr) =
        slow_resident_buffer(capacity_machine(dram_pages_per_node), hot_pages);
    let mut daemon = TierDaemon::new(
        Box::new(ThresholdPolicy {
            promote_min: 4,
            demote_max: 0,
            max_moves: usize::MAX,
        }),
        true,
    );
    daemon.batch = usize::MAX;
    let mut total_ns = 0u64;
    for _ in 0..rounds {
        machine.flush_caches();
        machine.reset_contention();
        // Timed: one reader per DRAM node scans the hot set.
        let readers = (0..4u16)
            .map(|n| {
                ThreadSpec::scripted(
                    machine.topology().cores_of_node(NodeId(n))[0],
                    vec![Op::read(addr, hot_pages * PAGE_SIZE, MemAccessKind::Random)],
                )
            })
            .collect();
        total_ns += machine.run(readers, &[]).makespan.ns();
        if with_daemon {
            // The daemon wake-up: classify on live heat, then migrate.
            // Its time is charged to the tiered total — promotion is not
            // free.
            let ops = daemon.wake(&machine);
            if !ops.is_empty() {
                let spec = ThreadSpec::scripted(CoreId(0), ops);
                total_ns += machine.run(vec![spec], &[]).makespan.ns();
            }
            machine.decay_heat();
        }
    }
    (
        total_ns,
        machine.kernel.counters.get(Counter::TierPromotions),
    )
}

/// True when every page of the buffer ended in the given tier.
pub fn resident_tier(machine: &Machine, addr: VirtAddr, pages: u64, tier: MemTier) -> bool {
    (0..pages).all(|p| {
        machine
            .page_node(addr + p * PAGE_SIZE)
            .is_some_and(|n| machine.topology().tier_of(n) == tier)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactional_beats_stop_the_world_for_writers() {
        let rows = mechanism(&[4], 256, 64, 0);
        let r = &rows[0];
        assert!(
            r.txn_writer_ns < r.stw_writer_ns,
            "writers must finish earlier under the transactional mechanism: \
             txn {} vs stw {}",
            r.txn_writer_ns,
            r.stw_writer_ns
        );
        assert!(r.txn_aborts > 0, "hammered pages must dirty some copies");
        assert!(r.stw_stalls > 0, "stop-the-world must stall some touches");
        assert!(
            r.txn_commits > r.txn_aborts,
            "most pages are cold and must commit: {} commits vs {} aborts",
            r.txn_commits,
            r.txn_aborts
        );
        // Both mechanisms promote the bulk of the buffer.
        assert!(r.txn_promoted > 200, "txn promoted {}", r.txn_promoted);
        assert_eq!(r.stw_promoted, 256);
    }

    #[test]
    fn capacity_crossover_where_hot_set_exceeds_dram() {
        // DRAM: 4 x 512 = 2048 pages. Hot sets: half of DRAM vs 4x DRAM.
        let rows = capacity_sweep(&[1024, 8192], 512, 4);
        let fits = &rows[0];
        let over = &rows[1];
        assert!(
            fits.speedup() > 1.2,
            "hot set fitting in DRAM must make tiering win: {:.2}x",
            fits.speedup()
        );
        assert!(
            over.speedup() < fits.speedup() * 0.8,
            "advantage must collapse past DRAM capacity: fits {:.2}x, over {:.2}x",
            fits.speedup(),
            over.speedup()
        );
        // Everything that fits was promoted; the oversized set could not be.
        assert_eq!(fits.promotions, 1024);
        assert!(over.promotions <= over.dram_pages);
    }
}
