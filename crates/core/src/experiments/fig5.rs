//! Figure 5: "Next-touch performance comparison".
//!
//! Three curves over a 4–4096-page sweep: user-space next-touch on the
//! un-patched kernel, user-space next-touch on the patched kernel, and the
//! kernel next-touch implementation. The measured interval covers marking
//! plus the remote thread's touch-triggered migration (the paper's
//! microbenchmark does the same — the Fig. 6 breakdown includes the
//! marking component).
//!
//! Expected shape (§4.3): user-space tracks `move_pages` (~600 MB/s at
//! scale, collapsing without the patch); kernel next-touch reaches
//! ~800 MB/s *even for small buffers* because there is no signal, no
//! second syscall pair, and no global TLB shootdown on the fault path.

use crate::system::NumaSystem;
use numa_kernel::KernelConfig;
use numa_machine::{Machine, MemAccessKind, Op, RunResult, ThreadSpec};
use numa_rt::{setup, Buffer, UserNextTouch};
use numa_topology::{CoreId, NodeId};
use numa_vm::PAGE_SIZE;

use super::pages_throughput;

/// One row of the Figure-5 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Buffer size in 4 kB pages.
    pub pages: u64,
    /// User-space next-touch on the un-patched kernel, MB/s.
    pub user_nopatch_mbps: f64,
    /// User-space next-touch (patched kernel), MB/s.
    pub user_mbps: f64,
    /// Kernel next-touch, MB/s.
    pub kernel_mbps: f64,
}

/// Which next-touch implementation a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NtVariant {
    /// mprotect + SIGSEGV + `move_pages`, un-patched kernel.
    UserUnpatched,
    /// mprotect + SIGSEGV + `move_pages`, patched kernel.
    User,
    /// `madvise` + fault-path migration.
    Kernel,
}

/// Run the sweep.
pub fn run(page_counts: &[u64]) -> Vec<Fig5Row> {
    run_jobs(page_counts, 1)
}

/// Below this many summed sweep pages, thread spawn/join costs more than
/// the simulations and the sweep runs sequentially. The full paper sweep
/// (4..4096, 8188 pages) stays parallel.
const MIN_PARALLEL_SWEEP_PAGES: u64 = 4_096;

/// [`run`] with the sweep items distributed over `jobs` host threads.
/// Items are independent (fresh machine each), so the rows are identical
/// to the sequential run's, in the same order — including when the
/// work-threshold gate keeps a small sweep on the caller's thread.
pub fn run_jobs(page_counts: &[u64], jobs: usize) -> Vec<Fig5Row> {
    threadpool::par_map_weighted(
        jobs,
        page_counts,
        |&pages| pages,
        MIN_PARALLEL_SWEEP_PAGES,
        |_, &pages| run_case(pages),
    )
}

/// Run the three variants for one buffer size.
pub fn run_case(pages: u64) -> Fig5Row {
    Fig5Row {
        pages,
        user_nopatch_mbps: pages_throughput(
            pages,
            measure(pages, NtVariant::UserUnpatched).makespan.ns(),
        ),
        user_mbps: pages_throughput(pages, measure(pages, NtVariant::User).makespan.ns()),
        kernel_mbps: pages_throughput(pages, measure(pages, NtVariant::Kernel).makespan.ns()),
    }
}

/// One next-touch migration episode: populate on node 0, mark from a
/// node-0 core, touch every page from a node-1 core. Returns the engine
/// result (makespan = mark + touch-triggered migration).
pub fn measure(pages: u64, variant: NtVariant) -> RunResult {
    measure_impl(pages, variant, None).0
}

/// Like [`measure`], but with event tracing enabled over the measured
/// episode (populate stays untraced, so the trace covers exactly the run
/// whose [`RunResult`] breakdown it must reconcile with). Returns the
/// machine so callers can export the Chrome trace and utilisation report.
pub fn measure_traced(pages: u64, variant: NtVariant, capacity: usize) -> (RunResult, Machine) {
    measure_impl(pages, variant, Some(capacity))
}

fn measure_impl(
    pages: u64,
    variant: NtVariant,
    trace_capacity: Option<usize>,
) -> (RunResult, Machine) {
    let mut m: Machine = match variant {
        NtVariant::UserUnpatched => NumaSystem::new()
            .kernel(KernelConfig {
                patched_move_pages: false,
                ..KernelConfig::default()
            })
            .build(),
        _ => NumaSystem::new().build(),
    };
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    if let Some(cap) = trace_capacity {
        m.enable_trace(cap);
    }

    let user_nt = UserNextTouch::new();
    let mark_ops = match variant {
        NtVariant::Kernel => vec![Op::MadviseNextTouch {
            range: buf.page_range(),
        }],
        _ => {
            m.set_segv_handler(user_nt.handler());
            user_nt.mark_ops(&buf)
        }
    };

    let mut marker = mark_ops;
    marker.push(Op::Barrier(0));
    // Touch with zero charged traffic: the measured cost is the
    // migration machinery itself, not a payload pass.
    let toucher = vec![
        Op::Barrier(0),
        Op::Access {
            addr: buf.addr,
            bytes: buf.len,
            traffic: 0,
            write: true,
            kind: MemAccessKind::Stream,
        },
    ];
    let r = m.run(
        vec![
            ThreadSpec::scripted(CoreId(0), marker),
            ThreadSpec::scripted(CoreId(4), toucher),
        ],
        &[2],
    );
    setup::assert_resident_on(&m, &buf, NodeId(1));
    (r, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_holds() {
        let rows = run(&[16, 256, 2048]);
        let large = rows.last().unwrap();
        let small = &rows[0];

        // Kernel NT is fast even for small buffers (§4.3).
        assert!(
            (600.0..900.0).contains(&small.kernel_mbps),
            "small kernel NT {}",
            small.kernel_mbps
        );
        assert!(
            (700.0..900.0).contains(&large.kernel_mbps),
            "large kernel NT {}",
            large.kernel_mbps
        );
        // User NT approaches move_pages throughput at scale...
        assert!(
            (450.0..700.0).contains(&large.user_mbps),
            "large user NT {}",
            large.user_mbps
        );
        // ... but its base overhead crushes small buffers.
        assert!(small.user_mbps < 0.5 * small.kernel_mbps);
        // Kernel NT ~30 % faster than user NT at scale (§5).
        let gain = large.kernel_mbps / large.user_mbps;
        assert!((1.15..1.6).contains(&gain), "kernel/user gain {gain}");
        // The un-patched user curve collapses for large buffers.
        assert!(large.user_nopatch_mbps < 0.4 * large.user_mbps);
    }

    #[test]
    fn all_variants_migrate_correctly() {
        for v in [NtVariant::UserUnpatched, NtVariant::User, NtVariant::Kernel] {
            // assert_resident_on inside measure() validates placement.
            let r = measure(32, v);
            assert!(r.makespan.ns() > 0);
        }
    }
}
