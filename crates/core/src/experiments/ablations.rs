//! Ablations of the design choices DESIGN.md §6 calls out, plus the
//! paper's §6 future-work extensions measured against their baselines.

use crate::system::NumaSystem;
use numa_kernel::KernelConfig;
use numa_machine::{MemAccessKind, Op, ThreadSpec};
use numa_rt::{setup, Buffer, UserNextTouch};
use numa_stats::Breakdown;
use numa_topology::{CoreId, NodeId};
use numa_vm::{MemPolicy, Protection, VirtAddr, VmaKind, PAGE_SIZE};

use super::pages_throughput;

/// Sweep the page-table-lock serialized fraction and report the 4-thread
/// lazy-migration speedup for each value (the Fig. 7 calibration knob).
pub fn lock_fraction_sweep(fractions: &[f64], pages: u64) -> Vec<(f64, f64)> {
    lock_fraction_sweep_jobs(fractions, pages, 1)
}

/// [`lock_fraction_sweep`] with the fractions distributed over `jobs`
/// host threads. Items are independent (fresh machine each), so the rows
/// are identical to the sequential run's, in the same order.
pub fn lock_fraction_sweep_jobs(fractions: &[f64], pages: u64, jobs: usize) -> Vec<(f64, f64)> {
    threadpool::par_map(jobs, fractions, |_, &f| {
        let run = |threads: usize| {
            let mut m = NumaSystem::new()
                .tweak_cost(|c| c.pt_lock_fraction = f)
                .build();
            let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
            setup::populate_on_node(&mut m, &buf, NodeId(0));
            let cores = m.topology().cores_of_node(NodeId(1));
            let chunks = buf.split_pages(threads);
            let n = chunks.len();
            let specs = chunks
                .iter()
                .enumerate()
                .map(|(i, chunk)| {
                    let mut ops = Vec::new();
                    if i == 0 {
                        ops.push(Op::MadviseNextTouch {
                            range: buf.page_range(),
                        });
                    }
                    ops.push(Op::Barrier(0));
                    ops.push(Op::Access {
                        addr: chunk.addr,
                        bytes: chunk.len,
                        traffic: 0,
                        write: true,
                        kind: MemAccessKind::Stream,
                    });
                    ThreadSpec::scripted(cores[i % cores.len()], ops)
                })
                .collect();
            m.run(specs, &[n]).makespan.ns()
        };
        let t1 = run(1);
        let t4 = run(4);
        (f, t1 as f64 / t4 as f64)
    })
}

/// Compare user next-touch granularities: marking a buffer as one region
/// vs one region per per-thread chunk, when 4 threads on different nodes
/// each touch their own chunk. Region-per-chunk places each chunk on its
/// toucher; whole-buffer dumps everything on the first toucher.
/// Returns (whole_buffer_misplaced, per_chunk_misplaced) page counts.
pub fn user_granularity(pages: u64) -> (u64, u64) {
    let misplaced = |per_chunk: bool| {
        let mut m = NumaSystem::new().build();
        let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let nt = UserNextTouch::new();
        m.set_segv_handler(nt.handler());
        let chunks = buf.split_pages(4);
        let mark_ops = if per_chunk {
            nt.mark_regions_ops(&chunks)
        } else {
            nt.mark_ops(&buf)
        };
        // One thread per node touches its own chunk.
        let mut specs = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let mut ops = Vec::new();
            if i == 0 {
                ops.extend(mark_ops.iter().cloned());
            }
            ops.push(Op::Barrier(0));
            ops.push(Op::read(
                chunk.addr,
                chunk.len.min(8),
                MemAccessKind::Stream,
            ));
            let core = m.topology().cores_of_node(NodeId(i as u16))[0];
            specs.push(ThreadSpec::scripted(core, ops));
        }
        let n = specs.len();
        m.run(specs, &[n]);
        // Count pages not on their toucher's node.
        let mut wrong = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            let hist = setup::residency_histogram(&m, chunk);
            wrong += chunk.pages() - hist[i];
        }
        wrong
    };
    (misplaced(false), misplaced(true))
}

/// Huge-page migration (extension): migrate the same 2 MB payload as one
/// huge page vs 512 base pages via next-touch faults. Returns
/// (base_pages_ns, huge_page_ns).
pub fn huge_page_migration() -> (u64, u64) {
    let cfg = KernelConfig {
        huge_page_migration: true,
        ..KernelConfig::default()
    };
    // Base pages.
    let base_ns = {
        let mut m = NumaSystem::new().kernel(cfg.clone()).build();
        let buf = Buffer::alloc(&mut m, 2 << 20);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        lazy_migrate_ns(&mut m, buf)
    };
    // One huge page.
    let huge_ns = {
        let mut m = NumaSystem::new().kernel(cfg).build();
        let addr = m
            .kernel
            .mmap_huge(&mut m.space, 2 << 20, MemPolicy::Bind(NodeId(0)))
            .expect("huge mmap");
        let buf = Buffer { addr, len: 2 << 20 };
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        lazy_migrate_ns(&mut m, buf)
    };
    (base_ns, huge_ns)
}

fn lazy_migrate_ns(m: &mut numa_machine::Machine, buf: Buffer) -> u64 {
    let core = m.topology().cores_of_node(NodeId(1))[0];
    let specs = vec![ThreadSpec::scripted(
        core,
        vec![
            Op::MadviseNextTouch {
                range: buf.page_range(),
            },
            Op::Access {
                addr: buf.addr,
                bytes: buf.len,
                traffic: 0,
                write: true,
                kind: MemAccessKind::Stream,
            },
        ],
    )];
    let r = m.run(specs, &[]);
    setup::assert_resident_on(m, &buf, NodeId(1));
    r.makespan.ns()
}

/// Read-only replication (extension): 16 threads on 4 nodes repeatedly
/// read a shared table that lives on node 0. Returns
/// (unreplicated_ns, replicated_ns).
pub fn replication_benefit(pages: u64, passes: u32) -> (u64, u64) {
    let run = |replicate: bool| {
        let mut m = NumaSystem::new()
            .kernel(KernelConfig {
                replication: true,
                ..KernelConfig::default()
            })
            .build();
        let addr = m
            .space
            .mmap(
                pages * PAGE_SIZE,
                Protection::ReadOnly,
                VmaKind::PrivateAnonymous,
                MemPolicy::Bind(NodeId(0)),
            )
            .expect("mmap");
        let buf = Buffer {
            addr,
            len: pages * PAGE_SIZE,
        };
        // Populate read-only pages by reading from node 0.
        for vpn in buf.page_range().iter() {
            m.kernel.handle_fault(
                &mut m.space,
                &mut m.frames,
                &mut m.tlb,
                numa_sim::SimTime::ZERO,
                CoreId(0),
                VirtAddr::from_vpn(vpn).max(addr),
                false,
                &mut Breakdown::new(),
            );
        }
        if replicate {
            m.kernel
                .replicate_read_only(
                    &mut m.space,
                    &mut m.frames,
                    numa_sim::SimTime::ZERO,
                    buf.page_range(),
                )
                .expect("replicate");
        }
        let specs: Vec<ThreadSpec> = m
            .topology()
            .core_ids()
            .map(|core| {
                let mut ops = Vec::new();
                for _ in 0..passes {
                    ops.push(Op::Access {
                        addr: buf.addr,
                        bytes: buf.len,
                        traffic: buf.len,
                        write: false,
                        kind: MemAccessKind::Blocked,
                    });
                }
                ThreadSpec::scripted(core, ops)
            })
            .collect();
        m.flush_caches();
        m.reset_contention();
        m.run(specs, &[]).makespan.ns()
    };
    (run(false), run(true))
}

/// Explicit next-touch hooks vs AutoNUMA-style automatic scanning on a
/// dynamic workload (the mainline alternative to the paper's design):
/// 16 threads sweep a shared working set whose per-phase ownership
/// rotates. Returns `(static_ns, hooked_nt_ns, auto_ns)`.
pub fn hooked_vs_auto(buf_pages: u64, phases: usize) -> (u64, u64, u64) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Static,
        Hooked,
        Auto,
    }
    let run = |mode: Mode| {
        let mut m = NumaSystem::new().build();
        let buf = Buffer::alloc(&mut m, buf_pages * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let team = numa_rt::Team::all_cores(&m);
        let nthreads = team.len();
        let mut auto_state = numa_rt::AutoBalanceState::new(
            numa_rt::AutoBalance {
                period: 1,
                sample_percent: 30,
                seed: 11,
            },
            vec![buf],
        );
        let mut plan = numa_rt::WorkPlan::new();
        for phase in 0..phases {
            match mode {
                Mode::Hooked => {
                    plan.single(move || {
                        vec![Op::MadviseNextTouch {
                            range: buf.page_range(),
                        }]
                    });
                }
                Mode::Auto => {
                    if let Some(scan) = auto_state.maybe_scan() {
                        plan.single(move || scan.clone());
                    }
                }
                Mode::Static => {}
            }
            // Ownership rotates each phase: thread t works chunk
            // (t + phase) % T.
            let chunks = buf.split_pages(nthreads);
            plan.parallel_for(nthreads, numa_rt::Schedule::Static, move |tid| {
                let c = &chunks[(tid + phase) % chunks.len()];
                vec![Op::Access {
                    addr: c.addr,
                    bytes: c.len,
                    traffic: c.len * 8,
                    write: true,
                    kind: MemAccessKind::Blocked,
                }]
            });
        }
        team.run(&mut m, plan).makespan.ns()
    };
    (run(Mode::Static), run(Mode::Hooked), run(Mode::Auto))
}

/// The quadratic-lookup ablation in isolation: per-page lookup cost as a
/// function of request size, patched vs not. Returns rows of
/// `(pages, patched_mbps, unpatched_mbps)`.
pub fn lookup_ablation(page_counts: &[u64]) -> Vec<(u64, f64, f64)> {
    lookup_ablation_jobs(page_counts, 1)
}

/// [`lookup_ablation`] with the sizes distributed over `jobs` host
/// threads. Items are independent (fresh machine each), so the rows are
/// identical to the sequential run's, in the same order.
pub fn lookup_ablation_jobs(page_counts: &[u64], jobs: usize) -> Vec<(u64, f64, f64)> {
    threadpool::par_map(jobs, page_counts, |_, &pages| {
        let t = |patched: bool| {
            let mut m = NumaSystem::new()
                .kernel(KernelConfig {
                    patched_move_pages: patched,
                    ..KernelConfig::default()
                })
                .build();
            let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
            setup::populate_on_node(&mut m, &buf, NodeId(0));
            let addrs = buf.page_addrs();
            let dest = vec![NodeId(1); addrs.len()];
            let r = m.run(
                vec![ThreadSpec::scripted(
                    CoreId(0),
                    vec![Op::MovePages { pages: addrs, dest }],
                )],
                &[],
            );
            pages_throughput(pages, r.makespan.ns())
        };
        (pages, t(true), t(false))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fraction_controls_scaling() {
        let rows = lock_fraction_sweep(&[0.1, 0.9], 8192);
        let (lo_f, lo_speedup) = rows[0];
        let (hi_f, hi_speedup) = rows[1];
        assert!(lo_f < hi_f);
        assert!(
            lo_speedup > hi_speedup,
            "less serialization must scale better: {lo_speedup} vs {hi_speedup}"
        );
        assert!(
            hi_speedup < 1.6,
            "90% serialized cannot scale: {hi_speedup}"
        );
    }

    #[test]
    fn per_chunk_regions_place_better() {
        let (whole, per_chunk) = user_granularity(64);
        assert_eq!(per_chunk, 0, "per-chunk regions must place perfectly");
        assert!(
            whole > 0,
            "whole-buffer region must misplace the other threads' chunks"
        );
    }

    #[test]
    fn huge_pages_migrate_faster() {
        let (base, huge) = huge_page_migration();
        assert!(
            huge < base,
            "one huge-page fault ({huge} ns) must beat 512 base faults ({base} ns)"
        );
    }

    #[test]
    fn replication_speeds_up_shared_reads() {
        let (plain, replicated) = replication_benefit(64, 4);
        assert!(
            replicated < plain,
            "replication ({replicated} ns) must beat remote reads ({plain} ns)"
        );
    }

    #[test]
    fn hooked_hints_beat_blind_scanning() {
        // 16 MB working set: per-thread chunks exceed the L3 share, so
        // locality genuinely matters each phase.
        let (stat, hooked, auto) = hooked_vs_auto(4096, 6);
        assert!(
            hooked < stat,
            "explicit hooks must beat static: {hooked} vs {stat}"
        );
        assert!(
            auto < stat,
            "even blind scanning must beat static: {auto} vs {stat}"
        );
        assert!(
            hooked < auto,
            "the application hint must beat sampling: hooked {hooked} vs auto {auto}"
        );
    }

    #[test]
    fn lookup_ablation_shows_quadratic_gap() {
        let rows = lookup_ablation(&[64, 4096]);
        let (_, p_small, u_small) = rows[0];
        let (_, p_large, u_large) = rows[1];
        let small_gap = p_small / u_small;
        let large_gap = p_large / u_large;
        assert!(
            large_gap > small_gap * 2.0,
            "the gap must widen with size: {small_gap} -> {large_gap}"
        );
    }
}
