//! Figure 7: "Throughput of a parallel Lazy migration (kernel Next-touch)
//! and a synchronous migration (move_pages) using up to 4 threads on the
//! same NUMA node".
//!
//! A buffer resident on node 0 is migrated to node 1 by 1–4 threads
//! pinned to node 1's cores. Synchronous: each thread `move_pages`-es its
//! chunk. Lazy: one thread marks the whole buffer next-touch, then every
//! thread touches (and thereby migrates) its chunk.
//!
//! Expected shape (§4.4): no benefit from parallelism below ~1 MB (the
//! serialized syscall bases and lock contention dominate); 50–60 %
//! aggregate improvement with 4 threads on large buffers; lazy scaling
//! slightly better, topping out around 1.3 GB/s — far below the memcpy
//! bandwidth because every page migration still takes a fault and the
//! page-table lock.

use crate::system::NumaSystem;
use numa_machine::{MemAccessKind, Op, ThreadSpec};
use numa_rt::{setup, Buffer};
use numa_topology::NodeId;
use numa_vm::PAGE_SIZE;

use super::pages_throughput;

/// One row of the Figure-7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Buffer size in 4 kB pages.
    pub pages: u64,
    /// Aggregate MB/s for synchronous migration with 1..=max threads
    /// (index 0 = 1 thread).
    pub sync_mbps: Vec<f64>,
    /// Aggregate MB/s for lazy (kernel next-touch) migration.
    pub lazy_mbps: Vec<f64>,
}

/// Run the sweep with 1..=`max_threads` threads (the paper uses 4 — one
/// per core of the destination node).
pub fn run(page_counts: &[u64], max_threads: usize) -> Vec<Fig7Row> {
    run_jobs(page_counts, max_threads, 1)
}

/// Below this many summed sweep pages the pool's spawn/join overhead
/// outweighs the simulation work and the sweep runs sequentially (the
/// quick four-point sweep measured *slower* at `--jobs 4` than at 1).
/// The full paper sweep (64..32768, 65472 pages) stays parallel.
const MIN_PARALLEL_SWEEP_PAGES: u64 = 32_768;

/// [`run`] with the sweep items distributed over `jobs` host threads.
/// Items are independent (fresh machine each), so the rows are identical
/// to the sequential run's, in the same order — including when the
/// work-threshold gate keeps a small sweep on the caller's thread.
pub fn run_jobs(page_counts: &[u64], max_threads: usize, jobs: usize) -> Vec<Fig7Row> {
    threadpool::par_map_weighted(
        jobs,
        page_counts,
        |&pages| pages,
        MIN_PARALLEL_SWEEP_PAGES,
        |_, &pages| run_case(pages, max_threads),
    )
}

/// Run one buffer size across both migration styles and all thread
/// counts.
pub fn run_case(pages: u64, max_threads: usize) -> Fig7Row {
    Fig7Row {
        pages,
        sync_mbps: (1..=max_threads)
            .map(|t| pages_throughput(pages, measure_sync(pages, t)))
            .collect(),
        lazy_mbps: (1..=max_threads)
            .map(|t| pages_throughput(pages, measure_lazy(pages, t)))
            .collect(),
    }
}

/// Synchronous parallel migration: `threads` concurrent `move_pages`
/// calls over disjoint chunks. Returns the makespan in ns.
pub fn measure_sync(pages: u64, threads: usize) -> u64 {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let cores = m.topology().cores_of_node(NodeId(1));
    let chunks = buf.split_pages(threads);
    let specs = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let addrs = chunk.page_addrs();
            let dest = vec![NodeId(1); addrs.len()];
            ThreadSpec::scripted(
                cores[i % cores.len()],
                vec![Op::MovePages { pages: addrs, dest }],
            )
        })
        .collect();
    let r = m.run(specs, &[]);
    setup::assert_resident_on(&m, &buf, NodeId(1));
    r.makespan.ns()
}

/// Lazy parallel migration: thread 0 marks, then every thread touches its
/// chunk, migrating pages in its own faults. Returns the makespan in ns.
pub fn measure_lazy(pages: u64, threads: usize) -> u64 {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let cores = m.topology().cores_of_node(NodeId(1));
    let chunks = buf.split_pages(threads);
    let nthreads = chunks.len();
    let specs = chunks
        .iter()
        .enumerate()
        .map(|(i, chunk)| {
            let mut ops = Vec::new();
            if i == 0 {
                ops.push(Op::MadviseNextTouch {
                    range: buf.page_range(),
                });
            }
            ops.push(Op::Barrier(0));
            ops.push(Op::Access {
                addr: chunk.addr,
                bytes: chunk.len,
                traffic: 0,
                write: true,
                kind: MemAccessKind::Stream,
            });
            ThreadSpec::scripted(cores[i % cores.len()], ops)
        })
        .collect();
    let r = m.run(specs, &[nthreads]);
    setup::assert_resident_on(&m, &buf, NodeId(1));
    r.makespan.ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_holds() {
        let rows = run(&[128, 16384], 4);
        let small = &rows[0]; // 512 kB
        let large = &rows[1]; // 64 MB

        // Small buffers: parallelism buys little or nothing (§4.4).
        let small_gain = small.sync_mbps[3] / small.sync_mbps[0];
        assert!(small_gain < 1.25, "small sync 4-thread gain {small_gain}");

        // Large buffers: 4 threads give ~50-60 % (we accept 30-90 %).
        let sync_gain = large.sync_mbps[3] / large.sync_mbps[0];
        let lazy_gain = large.lazy_mbps[3] / large.lazy_mbps[0];
        assert!((1.3..1.9).contains(&sync_gain), "sync gain {sync_gain}");
        assert!((1.3..2.0).contains(&lazy_gain), "lazy gain {lazy_gain}");
        // Lazy scales at least as well as sync.
        assert!(lazy_gain >= sync_gain * 0.95);

        // Lazy 4-thread aggregate lands near the paper's 1.3 GB/s.
        assert!(
            (1000.0..1600.0).contains(&large.lazy_mbps[3]),
            "lazy 4-thread {}",
            large.lazy_mbps[3]
        );
        // And stays well under the memcpy bandwidth.
        assert!(large.lazy_mbps[3] < 1800.0);
    }

    #[test]
    fn monotone_in_threads_for_large_buffers() {
        let rows = run(&[8192], 4);
        let r = &rows[0];
        for t in 1..4 {
            assert!(
                r.lazy_mbps[t] >= r.lazy_mbps[t - 1] * 0.98,
                "lazy should not regress with threads: {:?}",
                r.lazy_mbps
            );
        }
    }
}
