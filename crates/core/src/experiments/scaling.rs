//! The paper's closing outlook (§6): "We are now running similar
//! experiments on larger NUMA machines where data locality is more
//! critical to the overall performance, making the Next-touch policy even
//! more interesting."
//!
//! This experiment runs the independent-GEMM workload (Figure 8's shape)
//! on the 2-, 4- and 8-node presets with one thread per core, and reports
//! the next-touch improvement per machine. More nodes mean a larger
//! remote fraction under static node-0 allocation (1/2, 3/4, 7/8) and
//! longer average hop distances, so the improvement must grow with the
//! machine.

use crate::system::{NumaSystem, Platform};
use numa_apps::gemm::{run_indep_gemm, IndepGemmConfig};
use numa_apps::matrix::DataMode;
use numa_rt::MigrationStrategy;

/// One machine's result.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Number of NUMA nodes.
    pub nodes: usize,
    /// Number of threads (one per core).
    pub threads: usize,
    /// Static time, seconds (virtual).
    pub static_s: f64,
    /// Kernel next-touch time, seconds (virtual).
    pub next_touch_s: f64,
}

impl ScalingRow {
    /// Next-touch improvement over static, percent.
    pub fn improvement_percent(&self) -> f64 {
        (self.static_s / self.next_touch_s - 1.0) * 100.0
    }
}

/// Run the sweep over machine sizes at matrix dimension `n` per thread.
pub fn run(n: u64) -> Vec<ScalingRow> {
    run_jobs(n, 1)
}

/// [`run`] with the platforms distributed over `jobs` host threads.
/// Platforms are independent (fresh machine each), so the rows are
/// identical to the sequential run's, in the same order.
pub fn run_jobs(n: u64, jobs: usize) -> Vec<ScalingRow> {
    let platforms = [Platform::TwoNode, Platform::Opteron4P, Platform::EightNode];
    threadpool::par_map(jobs, &platforms, |_, &platform| run_platform(platform, n))
}

/// Run one platform's static-vs-next-touch pair.
fn run_platform(platform: Platform, n: u64) -> ScalingRow {
    let time = |strategy: MigrationStrategy| {
        let mut m = NumaSystem::new().platform(platform).build();
        let threads = m.topology().core_count();
        let cfg = IndepGemmConfig {
            n,
            threads,
            strategy,
            mode: DataMode::Phantom,
        };
        let r = run_indep_gemm(&mut m, &cfg).0.makespan.secs_f64();
        (r, threads)
    };
    let (static_s, threads) = time(MigrationStrategy::Static);
    let (next_touch_s, _) = time(MigrationStrategy::KernelNextTouch);
    let nodes = match platform {
        Platform::TwoNode => 2,
        Platform::Opteron4P => 4,
        Platform::EightNode => 8,
        Platform::Tiered4p2 => 6,
    };
    ScalingRow {
        nodes,
        threads,
        static_s,
        next_touch_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_grows_with_machine_size() {
        let rows = run(512);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[1].improvement_percent() > w[0].improvement_percent(),
                "{}-node improvement {:+.1}% must exceed {}-node {:+.1}%",
                w[1].nodes,
                w[1].improvement_percent(),
                w[0].nodes,
                w[0].improvement_percent()
            );
        }
        // And next-touch must win on the biggest machine.
        assert!(rows[2].improvement_percent() > 20.0);
    }
}
