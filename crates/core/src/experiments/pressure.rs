//! Pressure sweep: graceful degradation as memory occupancy crosses
//! 100 %.
//!
//! The paper's experiments all run with frames to spare; this sweep asks
//! what the migration machinery does when there are none. Four threads
//! (one per DRAM node of a machine shrunk to [`FRAMES_PER_NODE`] frames
//! per node) populate working sets sized to a swept fraction of total
//! DRAM, then redistribute them with one of three strategies:
//!
//! * `sync` — synchronous `move_pages` of half of each set to the
//!   neighbouring node, followed by a node hot-remove/hot-add episode
//!   (offline node 3, evacuate, online);
//! * `next_touch` — mark-and-touch: each thread madvises its own set
//!   and then streams through its neighbour's, migrating pages inside
//!   the faults;
//! * `tier` — the tiered machine: the background reclaim daemon
//!   (`kreclaimd`) demotes cold pages below the low watermark toward
//!   the CXL tier, then the threads stream through their neighbours'
//!   sets.
//!
//! Every run has the full pressure ladder enabled — watermarks, direct
//! reclaim, the OOM killer (allocating-task policy) and the
//! retry-livelock watchdog — plus chaos fault injection at a fixed rate,
//! so the interesting columns are the *defences*: pages reclaimed and
//! evacuated, OOM kills, watchdog firings, migrations degraded. Below
//! 100 % occupancy the defences should be (nearly) idle; past it they
//! must keep the run finishing without a panic or livelock. Each case
//! executes twice and is audited with the chaos invariant checker.

use super::chaos;
use numa_kernel::{KernelConfig, PressureSettings, WatchdogConfig};
use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_rt::Buffer;
use numa_sim::FaultPlan;
use numa_stats::Counter;
use numa_tier::ReclaimDaemon;
use numa_topology::{presets, CoreId, CostModel, NodeId};
use numa_vm::{VirtAddr, PAGE_SIZE};
use std::sync::Arc;

/// DRAM frames per node — small enough that a few hundred pages of
/// working set create genuine scarcity.
pub const FRAMES_PER_NODE: u64 = 64;

/// Slow-tier frames per expander node on the tiered machine: large, so
/// demotion always has somewhere to go (the CXL-capacity story).
pub const SLOW_FRAMES_PER_NODE: u64 = 512;

/// The three redistribution strategies the sweep compares.
pub const STRATEGIES: [&str; 3] = ["sync", "next_touch", "tier"];

/// Low/min watermarks installed on every node (kswapd wake / direct
/// reclaim thresholds, in frames).
pub const LOW_WATERMARK: u64 = 8;
/// See [`LOW_WATERMARK`].
pub const MIN_WATERMARK: u64 = 4;

/// Chaos injection rate for every case, parts per million per decision
/// point. High enough that retry storms are real (and the watchdog has
/// something to catch at overcommit), low enough that retries rescue
/// almost everything below 100 % occupancy.
pub const INJECT_PPM: u32 = 150_000;

/// The occupancy axis, percent of total DRAM frames.
pub fn default_occupancies(full: bool) -> Vec<u32> {
    if full {
        vec![60, 70, 75, 80, 85, 90, 95, 100, 105]
    } else {
        vec![60, 75, 90, 100, 105]
    }
}

/// One audited pressure case. All fields are integers so two runs of
/// the same case can be compared for byte-level equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureRow {
    /// Which redistribution strategy (see [`STRATEGIES`]).
    pub strategy: &'static str,
    /// Working set as a percentage of total DRAM frames.
    pub occupancy_pct: u32,
    /// Virtual completion time, summed over the case's runs.
    pub makespan_ns: u64,
    /// Pages migrated by any mechanism (syscall, fault, tier).
    pub moved: u64,
    /// Pages moved off a strapped node by direct or background reclaim.
    pub reclaimed: u64,
    /// Pages moved off an offlining node by the hot-remove path.
    pub evacuated: u64,
    /// Threads reaped by the OOM killer (allocating-task policy).
    pub oom_kills: u64,
    /// Retry-livelock watchdog firings.
    pub watchdog_firings: u64,
    /// Migrations degraded (page deliberately left in place).
    pub degraded: u64,
    /// Per-page retries after transient failures.
    pub retried: u64,
    /// Post-run audit failures; [`execute`] asserts zero.
    pub violations: u64,
}

fn machine_for(strategy: &str) -> Machine {
    // A tighter watchdog than the library default: the runs here are
    // short (hundreds of pages), so a livelock shows itself within tens
    // of microseconds of virtual time, not hundreds.
    let pressure = PressureSettings {
        watchdog: Some(WatchdogConfig {
            window_ns: 50_000,
            min_retries: 6,
        }),
        ..PressureSettings::enabled()
    };
    let (topo, config) = if strategy == "tier" {
        (
            presets::tiered_4p2_with(
                CostModel::default(),
                FRAMES_PER_NODE * PAGE_SIZE,
                SLOW_FRAMES_PER_NODE * PAGE_SIZE,
            ),
            KernelConfig {
                pressure,
                ..KernelConfig::tiered()
            },
        )
    } else {
        (
            presets::opteron_4p_with_memory(FRAMES_PER_NODE * PAGE_SIZE),
            KernelConfig {
                pressure,
                ..KernelConfig::default()
            },
        )
    };
    let mut m = Machine::new(Arc::new(topo), config);
    let nodes: Vec<NodeId> = m.topology().node_ids().collect();
    for n in nodes {
        m.frames.set_watermarks(n, LOW_WATERMARK, MIN_WATERMARK);
    }
    m
}

/// Run one case: populate, redistribute, audit. Panics on any invariant
/// violation — a nonzero `violations` column in a published table means
/// the assertion was bypassed, so it should never appear.
pub fn execute(strategy: &'static str, occupancy_pct: u32, seed: u64) -> PressureRow {
    let mut m = machine_for(strategy);
    m.kernel.set_fault_plan(FaultPlan::chaos(seed, INJECT_PPM));
    let pages_per_thread = FRAMES_PER_NODE * u64::from(occupancy_pct) / 100;
    let cores = [CoreId(0), CoreId(4), CoreId(8), CoreId(12)];
    let bufs: Vec<Buffer> = cores
        .iter()
        .map(|_| Buffer::alloc(&mut m, pages_per_thread * PAGE_SIZE))
        .collect();

    // Phase 1: each thread first-touches its own working set on its own
    // node. Past 100 % this is where allocations start failing: reclaim
    // first, the OOM killer when reclaim finds nothing. No barriers —
    // a reaped thread must not wedge the survivors.
    let populate: Vec<ThreadSpec> = cores
        .iter()
        .zip(&bufs)
        .map(|(c, b)| {
            ThreadSpec::scripted(*c, vec![Op::write(b.addr, b.len, MemAccessKind::Stream)])
        })
        .collect();
    let mut makespan_ns = m.run(populate, &[]).makespan.ns();

    // Phase 2: redistribute under pressure.
    match strategy {
        "sync" => {
            let threads: Vec<ThreadSpec> = cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let pages: Vec<VirtAddr> = bufs[i]
                        .page_addrs()
                        .into_iter()
                        .take((pages_per_thread / 2) as usize)
                        .collect();
                    let dest = NodeId((i as u16 + 1) % 4);
                    let mut ops = vec![Op::MovePages {
                        dest: vec![dest; pages.len()],
                        pages,
                    }];
                    if i == 0 {
                        // The hot-remove episode: offline node 3 (its
                        // pages evacuate or degrade in place), then
                        // bring it back.
                        ops.push(Op::NodeOffline { node: NodeId(3) });
                        ops.push(Op::NodeOnline { node: NodeId(3) });
                    }
                    ThreadSpec::scripted(*c, ops)
                })
                .collect();
            makespan_ns += m.run(threads, &[]).makespan.ns();
        }
        "next_touch" => {
            let threads: Vec<ThreadSpec> = cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let next = &bufs[(i + 1) % 4];
                    ThreadSpec::scripted(
                        *c,
                        vec![
                            Op::MadviseNextTouch {
                                range: bufs[i].page_range(),
                            },
                            Op::read(next.addr, next.len, MemAccessKind::Stream),
                        ],
                    )
                })
                .collect();
            makespan_ns += m.run(threads, &[]).makespan.ns();
        }
        "tier" => {
            // One kreclaimd wake-up: demote cold pages off every DRAM
            // node sitting below its low watermark, then stream.
            let mut daemon = ReclaimDaemon::new(32, true);
            let ops = daemon.wake(&m);
            if !ops.is_empty() {
                makespan_ns += m
                    .run(vec![ThreadSpec::scripted(CoreId(0), ops)], &[])
                    .makespan
                    .ns();
            }
            let threads: Vec<ThreadSpec> = cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let next = &bufs[(i + 1) % 4];
                    ThreadSpec::scripted(
                        *c,
                        vec![Op::read(next.addr, next.len, MemAccessKind::Stream)],
                    )
                })
                .collect();
            makespan_ns += m.run(threads, &[]).makespan.ns();
        }
        other => panic!("unknown pressure strategy {other:?} (see pressure::STRATEGIES)"),
    }

    let problems = chaos::check_invariants(&m);
    assert!(
        problems.is_empty(),
        "invariants violated after {strategy}@{occupancy_pct}% seed {seed}: {problems:#?}"
    );
    let c = &m.kernel.counters;
    PressureRow {
        strategy,
        occupancy_pct,
        makespan_ns,
        moved: c.get(Counter::PagesMovedSyscall)
            + c.get(Counter::PagesMovedFault)
            + c.get(Counter::TierDemotions)
            + c.get(Counter::TierPromotions),
        reclaimed: c.get(Counter::PagesReclaimed) + c.get(Counter::TierDemotions),
        evacuated: c.get(Counter::PagesEvacuated),
        oom_kills: c.get(Counter::OomKills),
        watchdog_firings: c.get(Counter::WatchdogFirings),
        degraded: c.get(Counter::MigrationsDegraded),
        retried: c.get(Counter::MigrationRetries),
        violations: problems.len() as u64,
    }
}

/// Run one audited case twice and assert byte-identical results — the
/// same discipline as the chaos sweep.
pub fn run_case(strategy: &'static str, occupancy_pct: u32, seed: u64) -> PressureRow {
    let first = execute(strategy, occupancy_pct, seed);
    let second = execute(strategy, occupancy_pct, seed);
    assert_eq!(
        first, second,
        "pressure case {strategy}@{occupancy_pct}% seed {seed} is not deterministic"
    );
    first
}

/// The full sweep: every (strategy, occupancy) pair, in axis order.
pub fn sweep(occupancies: &[u32], seed: u64) -> Vec<PressureRow> {
    sweep_jobs(occupancies, seed, 1)
}

/// [`sweep`] distributed over `jobs` host threads; rows are identical
/// to the sequential run's, in the same order.
pub fn sweep_jobs(occupancies: &[u32], seed: u64, jobs: usize) -> Vec<PressureRow> {
    let cases: Vec<(&'static str, u32)> = STRATEGIES
        .iter()
        .flat_map(|s| occupancies.iter().map(move |o| (*s, *o)))
        .collect();
    threadpool::par_map(jobs, &cases, |_, &(strategy, occ)| {
        run_case(strategy, occ, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overcommit_degrades_gracefully_not_fatally() {
        let rows = sweep(&default_occupancies(false), 0);
        for r in &rows {
            assert_eq!(r.violations, 0, "{r:?}");
            if r.occupancy_pct <= 90 {
                assert_eq!(r.oom_kills, 0, "no OOM below capacity: {r:?}");
                // ("tier" is legitimately idle below its watermarks —
                // nothing to demote, reads don't promote.)
                if r.strategy != "tier" {
                    assert!(r.moved > 0, "migration must work below capacity: {r:?}");
                }
            }
        }
        // Past 100 % the single-tier strategies cannot fit the working
        // set anywhere: the OOM killer must reap (not panic), and the
        // watchdog must have caught at least one retry storm.
        let over: Vec<&PressureRow> = rows.iter().filter(|r| r.occupancy_pct == 105).collect();
        let single_tier_kills: u64 = over
            .iter()
            .filter(|r| r.strategy != "tier")
            .map(|r| r.oom_kills)
            .sum();
        assert!(single_tier_kills > 0, "overcommit must OOM-kill: {over:#?}");
        let watchdog: u64 = rows.iter().map(|r| r.watchdog_firings).sum();
        assert!(watchdog > 0, "the watchdog must fire somewhere: {rows:#?}");
        // The tiered machine absorbs the same overcommit by demotion.
        for r in over.iter().filter(|r| r.strategy == "tier") {
            assert_eq!(r.oom_kills, 0, "the slow tier must absorb 105%: {r:?}");
            assert!(r.reclaimed > 0, "absorption happens via demotion: {r:?}");
        }
    }

    #[test]
    fn pressure_defences_idle_when_memory_is_plentiful() {
        let rows: Vec<PressureRow> = STRATEGIES.iter().map(|s| run_case(s, 60, 3)).collect();
        for r in &rows {
            assert_eq!(r.oom_kills, 0, "{r:?}");
            assert_eq!(r.reclaimed, 0, "no reclaim at 60%: {r:?}");
        }
        let retried: u64 = rows.iter().map(|r| r.retried).sum();
        assert!(retried > 0, "injection still exercises retries: {rows:#?}");
    }

    #[test]
    fn sweep_rows_are_identical_across_jobs() {
        let occ = [75, 105];
        let seq = sweep_jobs(&occ, 5, 1);
        let par = sweep_jobs(&occ, 5, 4);
        assert_eq!(seq, par);
    }
}
