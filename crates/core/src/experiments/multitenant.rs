//! Multitenant churn: 1,000+ tenant processes on the sharded engine.
//!
//! The scale story the sharded engine exists for (ROADMAP north-star,
//! churn in the style of *Revisiting Page Migration for Main-Memory
//! Database Systems*): each tenant is a complete simulated process —
//! own address space, page tables, frame allocator — running
//! generations of `mmap → populate → madvise(next-touch) → move cores →
//! re-touch → move_pages → munmap` (see `numa_rt::tenant`). Tenants
//! couple only through the shared frame-capacity ledger (refills
//! granted, surpluses recycled, shortfalls denied — real cross-tenant
//! memory pressure) and the machine-wide L3-thrash model, both
//! reconciled deterministically at window barriers.
//!
//! Everything reported here is **independent of `--shards`/`--jobs`**:
//! the orchestrator merges shard state in tenant-id order at fixed
//! virtual-time window boundaries, so the cohort rows and the summary
//! are byte-identical for any parallelisation of the host work. That
//! invariant is enforced by the `multitenant_determinism` regression
//! test and the golden checksum on `results/multitenant.json`.

use numa_machine::{run_sharded, LedgerConfig, ShardConfig, ShardedRunResult};
use numa_rt::tenant::{build_tenant, TenantProfile};
use numa_stats::Counter;
use numa_topology::presets;
use std::sync::Arc;

/// Tenant processes in the standard run (the acceptance floor).
pub const TENANTS: usize = 1_000;
/// Tenant processes with `--full`.
pub const TENANTS_FULL: usize = 2_000;
/// Cohorts the tenant population is folded into for reporting
/// (tenant id modulo [`COHORTS`]).
pub const COHORTS: usize = 10;

/// Shared-pool sizing: unassigned frames pooled per node. Deliberately
/// far below aggregate demand (1,000 tenants × refills), so the ledger
/// records real denials — the cross-tenant pressure signal.
pub const POOL_FRAMES_PER_NODE: u64 = 1_024;
/// Capacity each tenant starts with per node; covers the largest
/// single-window touch burst of the churn profile, so allocation
/// failures stay a pressure phenomenon rather than a startup one.
pub const INITIAL_FRAMES_PER_NODE: u64 = 8;
/// Refill request threshold and size, and the free-frame cushion kept
/// back when yielding (all in frames; see `LedgerConfig`).
pub const LOW_FREE_FRAMES: u64 = 6;
/// See [`LOW_FREE_FRAMES`].
pub const REFILL_FRAMES: u64 = 8;
/// See [`LOW_FREE_FRAMES`].
pub const KEEP_FREE_FRAMES: u64 = 12;
/// Machine-wide cache-miss-per-window limit before every tenant's
/// caches flush at the barrier (the shared-LLC thrash model).
pub const THRASH_MISS_LIMIT: u64 = 5_000;

/// One cohort of tenants, all fields integers so two runs (or two
/// shard/job configurations) compare for byte-level equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortRow {
    /// Cohort index (tenant id modulo [`COHORTS`]).
    pub cohort: u32,
    /// Tenants in the cohort.
    pub tenants: u64,
    /// Sum of tenant makespans, ns.
    pub makespan_sum_ns: u64,
    /// Slowest tenant in the cohort, ns.
    pub makespan_max_ns: u64,
    /// Local DRAM accesses (engine counters, summed).
    pub local_accesses: u64,
    /// Remote DRAM accesses.
    pub remote_accesses: u64,
    /// L3 misses.
    pub cache_misses: u64,
}

/// The whole run: cohort rows plus the global fold. Every field is a
/// deterministic function of (tenants, seed) only — never of the
/// shard/job packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultitenantOutcome {
    /// Per-cohort aggregates, in cohort order.
    pub rows: Vec<CohortRow>,
    /// Tenant count.
    pub tenants: u64,
    /// Slowest tenant overall (the run's virtual makespan), ns.
    pub makespan_ns: u64,
    /// Window width used, ns.
    pub window_ns: u64,
    /// Barrier rounds executed.
    pub windows: u64,
    /// Empty windows jumped without a barrier round.
    pub windows_skipped: u64,
    /// Ledger refills granted / short-or-refused / capacity returns.
    pub ledger_grants: u64,
    /// See [`MultitenantOutcome::ledger_grants`].
    pub ledger_denials: u64,
    /// See [`MultitenantOutcome::ledger_grants`].
    pub ledger_yields: u64,
    /// Windows that tripped the thrash limit and flushed all caches.
    pub flush_windows: u64,
    /// Pages moved by `move_pages(2)` across all tenants.
    pub moved_syscall: u64,
    /// Pages migrated inside next-touch faults.
    pub moved_fault: u64,
    /// Frames freed (munmap churn plus migration frees).
    pub frames_freed: u64,
    /// Tenants' threads reaped by the OOM killer.
    pub oom_kills: u64,
    /// TLB shootdowns across all tenants.
    pub tlb_shootdowns: u64,
}

/// The standard shard configuration for this workload; `shards`/`jobs`
/// select host parallelism only.
pub fn config(shards: usize, jobs: usize) -> ShardConfig {
    ShardConfig {
        shards,
        jobs,
        window_ns: None,
        ledger: Some(LedgerConfig {
            pool_frames_per_node: POOL_FRAMES_PER_NODE,
            initial_frames_per_node: INITIAL_FRAMES_PER_NODE,
            low_free_frames: LOW_FREE_FRAMES,
            refill_frames: REFILL_FRAMES,
            keep_free_frames: KEEP_FREE_FRAMES,
        }),
        thrash_miss_limit: THRASH_MISS_LIMIT,
        trace_capacity: 0,
    }
}

/// Run `tenants` churn processes with workload `seed` under the given
/// host parallelism.
pub fn run(tenants: usize, seed: u64, shards: usize, jobs: usize) -> MultitenantOutcome {
    let topo = Arc::new(presets::opteron_4p());
    let profile = TenantProfile {
        seed,
        ..TenantProfile::default()
    };
    let r = run_sharded(&topo, tenants, &config(shards, jobs), |id| {
        build_tenant(&topo, id, &profile)
    });
    fold(&r)
}

fn fold(r: &ShardedRunResult) -> MultitenantOutcome {
    let mut rows: Vec<CohortRow> = (0..COHORTS)
        .map(|c| CohortRow {
            cohort: c as u32,
            tenants: 0,
            makespan_sum_ns: 0,
            makespan_max_ns: 0,
            local_accesses: 0,
            remote_accesses: 0,
            cache_misses: 0,
        })
        .collect();
    for (id, t) in r.tenants.iter().enumerate() {
        let row = &mut rows[id % COHORTS];
        row.tenants += 1;
        row.makespan_sum_ns += t.makespan.ns();
        row.makespan_max_ns = row.makespan_max_ns.max(t.makespan.ns());
        row.local_accesses += t.stats.counters.get(Counter::LocalAccesses);
        row.remote_accesses += t.stats.counters.get(Counter::RemoteAccesses);
        row.cache_misses += t.stats.counters.get(Counter::CacheMisses);
    }
    let k = &r.kernel_counters;
    MultitenantOutcome {
        rows,
        tenants: r.tenants.len() as u64,
        makespan_ns: r.makespan.ns(),
        window_ns: r.window_ns,
        windows: r.windows,
        windows_skipped: r.windows_skipped,
        ledger_grants: r.ledger_grants,
        ledger_denials: r.ledger_denials,
        ledger_yields: r.ledger_yields,
        flush_windows: r.flush_windows,
        moved_syscall: k.get(Counter::PagesMovedSyscall),
        moved_fault: k.get(Counter::PagesMovedFault),
        frames_freed: k.get(Counter::FramesFreed),
        oom_kills: k.get(Counter::OomKills),
        tlb_shootdowns: k.get(Counter::TlbShootdowns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_invariant_across_shards_and_jobs() {
        // Smaller population than the bench (host time), same profile.
        let base = run(60, 1, 1, 1);
        for (s, j) in [(4, 2), (8, 4), (60, 3)] {
            assert_eq!(base, run(60, 1, s, j), "shards={s} jobs={j}");
        }
    }

    #[test]
    fn churn_exercises_the_couplings() {
        let o = run(120, 0, 8, 2);
        assert_eq!(o.tenants, 120);
        assert!(o.moved_syscall > 0, "move_pages churn: {o:?}");
        assert!(o.moved_fault > 0, "next-touch churn: {o:?}");
        assert!(o.frames_freed > 0, "munmap churn: {o:?}");
        assert!(o.ledger_grants > 0, "refills granted: {o:?}");
        assert!(o.ledger_yields > 0, "capacity recycled: {o:?}");
        assert_eq!(o.oom_kills, 0, "sized to avoid OOM: {o:?}");
        assert!(o.windows > 0);
        let total: u64 = o.rows.iter().map(|r| r.tenants).sum();
        assert_eq!(total, 120);
    }
}
