//! Figure 4: "Migration and memory copy throughput comparison between
//! NUMA nodes #0 and #1".
//!
//! Four curves over a page-count sweep, all single-threaded:
//!
//! * `memcpy` — a user-space copy of the buffer from node 0 memory into a
//!   node-1-bound destination (the no-VM-work upper baseline);
//! * `migrate_pages` — whole-process migration, node 0 → node 1;
//! * `move_pages` — per-page migration with the paper's complexity fix;
//! * `move_pages (no patch)` — the historical quadratic implementation.
//!
//! Expected shape (paper §4.2): memcpy well above everything
//! (~1.7–2 GB/s); `migrate_pages` ≈ 780 MB/s at scale but with a ~400 µs
//! base; `move_pages` ≈ 600 MB/s flat once past its ~160 µs base; the
//! un-patched curve tracking `move_pages` for small counts then collapsing
//! quadratically beyond a few hundred pages.

use crate::system::NumaSystem;
use numa_kernel::KernelConfig;
use numa_machine::{Op, ThreadSpec};
use numa_rt::{setup, Buffer};
use numa_topology::{CoreId, NodeId};
use numa_vm::PAGE_SIZE;

use super::pages_throughput;

/// One row of the Figure-4 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Buffer size in 4 kB pages.
    pub pages: u64,
    /// User-space memcpy throughput, MB/s.
    pub memcpy_mbps: f64,
    /// `migrate_pages` throughput, MB/s.
    pub migrate_pages_mbps: f64,
    /// Patched `move_pages` throughput, MB/s.
    pub move_pages_mbps: f64,
    /// Un-patched `move_pages` throughput, MB/s.
    pub move_pages_nopatch_mbps: f64,
}

/// Run the sweep. Every measurement uses a fresh machine so earlier calls
/// leave no warm state (mirrors the paper's per-size runs).
pub fn run(page_counts: &[u64]) -> Vec<Fig4Row> {
    run_jobs(page_counts, 1)
}

/// Below this many summed sweep pages, thread spawn/join costs more than
/// the simulations and the sweep runs sequentially. The full paper sweep
/// (1..16384, 32767 pages) stays parallel.
const MIN_PARALLEL_SWEEP_PAGES: u64 = 16_384;

/// [`run`] with the sweep items distributed over `jobs` host threads.
/// Items are independent (fresh machine each), so the rows are identical
/// to the sequential run's, in the same order — including when the
/// work-threshold gate keeps a small sweep on the caller's thread.
pub fn run_jobs(page_counts: &[u64], jobs: usize) -> Vec<Fig4Row> {
    threadpool::par_map_weighted(
        jobs,
        page_counts,
        |&pages| pages,
        MIN_PARALLEL_SWEEP_PAGES,
        |_, &pages| run_case(pages),
    )
}

/// Run the four curves for one buffer size.
pub fn run_case(pages: u64) -> Fig4Row {
    Fig4Row {
        pages,
        memcpy_mbps: measure_memcpy(pages),
        migrate_pages_mbps: measure_migrate_pages(pages),
        move_pages_mbps: measure_move_pages(pages, true),
        move_pages_nopatch_mbps: measure_move_pages(pages, false),
    }
}

fn measure_memcpy(pages: u64) -> f64 {
    let mut m = NumaSystem::new().build();
    let src = Buffer::alloc_on(&mut m, pages * PAGE_SIZE, NodeId(0));
    let dst = Buffer::alloc_on(&mut m, pages * PAGE_SIZE, NodeId(1));
    setup::populate_on_node(&mut m, &src, NodeId(0));
    setup::populate_on_node(&mut m, &dst, NodeId(1));
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::Memcpy {
                src: src.addr,
                dst: dst.addr,
                bytes: pages * PAGE_SIZE,
            }],
        )],
        &[],
    );
    pages_throughput(pages, r.makespan.ns())
}

fn measure_migrate_pages(pages: u64) -> f64 {
    let mut m = NumaSystem::new().build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::MigratePages {
                from: vec![NodeId(0)],
                to: vec![NodeId(1)],
            }],
        )],
        &[],
    );
    setup::assert_resident_on(&m, &buf, NodeId(1));
    pages_throughput(pages, r.makespan.ns())
}

fn measure_move_pages(pages: u64, patched: bool) -> f64 {
    let mut m = NumaSystem::new()
        .kernel(KernelConfig {
            patched_move_pages: patched,
            ..KernelConfig::default()
        })
        .build();
    let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
    setup::populate_on_node(&mut m, &buf, NodeId(0));
    let addrs = buf.page_addrs();
    let dest = vec![NodeId(1); addrs.len()];
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::MovePages { pages: addrs, dest }],
        )],
        &[],
    );
    setup::assert_resident_on(&m, &buf, NodeId(1));
    pages_throughput(pages, r.makespan.ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds() {
        // A reduced sweep checking every comparative claim of §4.2.
        let rows = run(&[16, 256, 2048, 8192]);
        let large = rows.last().unwrap();

        // memcpy dominates everything.
        for r in &rows {
            assert!(
                r.memcpy_mbps >= r.migrate_pages_mbps,
                "memcpy under migrate_pages at {}",
                r.pages
            );
            assert!(
                r.memcpy_mbps >= r.move_pages_mbps,
                "memcpy under move_pages at {}",
                r.pages
            );
        }
        // Large-buffer plateaus in the paper's bands.
        assert!(
            (500.0..700.0).contains(&large.move_pages_mbps),
            "move_pages {}",
            large.move_pages_mbps
        );
        assert!(
            (680.0..880.0).contains(&large.migrate_pages_mbps),
            "migrate_pages {}",
            large.migrate_pages_mbps
        );
        assert!(large.memcpy_mbps > 1500.0, "memcpy {}", large.memcpy_mbps);
        // migrate_pages beats move_pages at scale (§4.2) ...
        assert!(large.migrate_pages_mbps > large.move_pages_mbps);
        // ... but its higher base hurts small buffers.
        let small = &rows[0];
        assert!(small.move_pages_mbps > small.migrate_pages_mbps);

        // The un-patched collapse: fine for small counts, dramatic later.
        let r256 = rows.iter().find(|r| r.pages == 256).unwrap();
        assert!(r256.move_pages_nopatch_mbps > 0.4 * r256.move_pages_mbps);
        assert!(
            large.move_pages_nopatch_mbps < 0.3 * large.move_pages_mbps,
            "no-patch {} vs patched {}",
            large.move_pages_nopatch_mbps,
            large.move_pages_mbps
        );
        // Patched throughput is buffer-size independent at scale.
        let r2048 = rows.iter().find(|r| r.pages == 2048).unwrap();
        let flatness = large.move_pages_mbps / r2048.move_pages_mbps;
        assert!((0.8..1.25).contains(&flatness), "flatness {flatness}");
    }
}
