//! Figure 6: "Next-touch implementation overhead details" — stacked
//! percentage breakdowns of where the migration time goes, for the
//! user-space path (6a) and the kernel path (6b).
//!
//! Expected shape (§4.3): in the user path the `move_pages` copy dominates
//! at scale with control ≈ 38 % and the next-touch additions (signal
//! handler, both mprotects) almost negligible; in the kernel path the copy
//! is ~80 % with fault + migration control ≈ 20 % and a small madvise
//! share.

use super::fig5::{measure, NtVariant};
use numa_stats::{Breakdown, CostComponent};

/// The cost breakdown of one next-touch episode.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Buffer size in 4 kB pages.
    pub pages: u64,
    /// Absolute per-component costs.
    pub breakdown: Breakdown,
}

impl Fig6Row {
    /// Percentage share of `component`.
    pub fn percent(&self, component: CostComponent) -> f64 {
        self.breakdown.percent(component)
    }
}

/// The components Figure 6(a) stacks for the user-space path, in the
/// paper's legend order.
pub const USER_COMPONENTS: [CostComponent; 5] = [
    CostComponent::MovePagesCopy,
    CostComponent::MovePagesControl,
    CostComponent::MprotectRestore,
    CostComponent::PageFaultSignal,
    CostComponent::MprotectMark,
];

/// The components Figure 6(b) stacks for the kernel path.
pub const KERNEL_COMPONENTS: [CostComponent; 3] = [
    CostComponent::FaultCopy,
    CostComponent::FaultControl,
    CostComponent::Madvise,
];

/// Breakdown sweep for the user-space path (Figure 6a).
pub fn run_user(page_counts: &[u64]) -> Vec<Fig6Row> {
    page_counts
        .iter()
        .map(|&pages| Fig6Row {
            pages,
            breakdown: measure(pages, NtVariant::User).stats.breakdown,
        })
        .collect()
}

/// Breakdown sweep for the kernel path (Figure 6b).
pub fn run_kernel(page_counts: &[u64]) -> Vec<Fig6Row> {
    page_counts
        .iter()
        .map(|&pages| Fig6Row {
            pages,
            breakdown: measure(pages, NtVariant::Kernel).stats.breakdown,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_breakdown_matches_fig6a() {
        let rows = run_user(&[1024]);
        let r = &rows[0];
        let copy = r.percent(CostComponent::MovePagesCopy);
        // Control = explicit control + its lock waits + the shootdowns.
        let control = r.percent(CostComponent::MovePagesControl)
            + r.percent(CostComponent::LockWait)
            + r.percent(CostComponent::TlbFlush);
        let nt_extra = r.percent(CostComponent::MprotectMark)
            + r.percent(CostComponent::MprotectRestore)
            + r.percent(CostComponent::PageFaultSignal);
        assert!((50.0..75.0).contains(&copy), "copy share {copy}");
        assert!((25.0..48.0).contains(&control), "control share {control}");
        assert!(
            nt_extra < 8.0,
            "next-touch additions {nt_extra} should be small"
        );
    }

    #[test]
    fn kernel_breakdown_matches_fig6b() {
        let rows = run_kernel(&[1024]);
        let r = &rows[0];
        let copy = r.percent(CostComponent::FaultCopy);
        let control = r.percent(CostComponent::FaultControl) + r.percent(CostComponent::LockWait);
        let madvise = r.percent(CostComponent::Madvise) + r.percent(CostComponent::TlbFlush);
        assert!((70.0..90.0).contains(&copy), "copy share {copy}");
        assert!((12.0..28.0).contains(&control), "control share {control}");
        assert!(madvise < 12.0, "madvise share {madvise}");
    }

    #[test]
    fn madvise_share_shrinks_with_size() {
        let rows = run_kernel(&[16, 1024]);
        let small = rows[0].percent(CostComponent::Madvise);
        let large = rows[1].percent(CostComponent::Madvise);
        assert!(
            large < small,
            "madvise share must shrink: {small} -> {large}"
        );
    }
}
