//! Figure 8: "Execution time of 16 concurrent BLAS3 matrix
//! multiplications within 16 independent threads".
//!
//! Three curves — static allocation (everything first-touched on node 0),
//! kernel next-touch, user-space next-touch — over matrix sizes 128..2048.
//!
//! Expected shape (§4.5): below ~512 the working set fits in the shared
//! L3 and migration cannot pay off; at 512 "data locality becomes
//! critical" and both next-touch variants beat static, the kernel one by
//! more than the user one.

use crate::system::NumaSystem;
use numa_apps::gemm::{run_indep_gemm, IndepGemmConfig};
use numa_rt::MigrationStrategy;

/// One row of the Figure-8 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Matrix dimension (per thread).
    pub n: u64,
    /// Static allocation time, seconds (virtual).
    pub static_s: f64,
    /// Kernel next-touch time, seconds (virtual).
    pub kernel_nt_s: f64,
    /// User-space next-touch time, seconds (virtual).
    pub user_nt_s: f64,
}

/// The paper's matrix-size axis.
pub fn paper_sizes() -> Vec<u64> {
    vec![128, 256, 512, 1024, 2048]
}

/// Run one matrix size across the three strategies.
pub fn run_case(n: u64) -> Fig8Row {
    let time = |strategy: MigrationStrategy| {
        let mut m = NumaSystem::new().build();
        run_indep_gemm(&mut m, &IndepGemmConfig::paper(n, strategy))
            .0
            .makespan
            .secs_f64()
    };
    Fig8Row {
        n,
        static_s: time(MigrationStrategy::Static),
        kernel_nt_s: time(MigrationStrategy::KernelNextTouch),
        user_nt_s: time(MigrationStrategy::UserNextTouch),
    }
}

/// Run the whole sweep.
pub fn run(sizes: &[u64]) -> Vec<Fig8Row> {
    run_jobs(sizes, 1)
}

/// [`run`] with the sweep items distributed over `jobs` host threads.
/// Items are independent (fresh machine each), so the rows are identical
/// to the sequential run's, in the same order.
pub fn run_jobs(sizes: &[u64], jobs: usize) -> Vec<Fig8Row> {
    threadpool::par_map(jobs, sizes, |_, &n| run_case(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_sits_at_512() {
        let small = run_case(128);
        let big = run_case(512);
        // Below the cache: static does not lose.
        assert!(
            small.static_s <= small.kernel_nt_s * 1.02,
            "static {:.4}s vs kernel NT {:.4}s at n=128",
            small.static_s,
            small.kernel_nt_s
        );
        // At 512: both migration variants win.
        assert!(
            big.kernel_nt_s < big.static_s,
            "kernel NT {:.3}s must beat static {:.3}s at n=512",
            big.kernel_nt_s,
            big.static_s
        );
        assert!(
            big.user_nt_s < big.static_s,
            "user NT {:.3}s must beat static {:.3}s at n=512",
            big.user_nt_s,
            big.static_s
        );
        // Kernel NT at least matches user NT.
        assert!(big.kernel_nt_s <= big.user_nt_s * 1.02);
    }

    #[test]
    fn times_grow_steeply_past_the_cache() {
        // Doubling n is at least the cubic 8x; crossing the L3 boundary
        // at 512 adds a (paper-visible) super-cubic cliff on top because
        // all reuse traffic suddenly pays DRAM and NUMA costs.
        let rows = run(&[256, 512]);
        let ratio = rows[1].static_s / rows[0].static_s;
        assert!(
            (8.0..120.0).contains(&ratio),
            "doubling n across the cache edge: got {ratio}"
        );
    }
}
