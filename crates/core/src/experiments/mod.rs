//! The experiment harness: one module per table/figure of the paper's
//! evaluation section (§4), plus the ablations DESIGN.md calls out.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`]   | Fig. 4 — synchronous migration & memcpy throughput |
//! | [`fig5`]   | Fig. 5 — next-touch throughput comparison |
//! | [`fig6`]   | Fig. 6 — next-touch cost breakdowns |
//! | [`fig7`]   | Fig. 7 — threaded migration scalability |
//! | [`table1`] | Table 1 — LU factorization times |
//! | [`fig8`]   | Fig. 8 — 16 independent BLAS3 multiplications |
//! | [`blas1`]  | §4.5 prose — BLAS1 never improves |
//! | [`scaling`] | §6 outlook — larger NUMA machines |
//! | [`tiering`] | heterogeneous tiering: transactional vs stop-the-world promotion, DRAM-capacity crossover |
//! | [`ablations`] | design-choice sweeps (lookup fix, lock fraction, granularity, extensions) |
//! | [`chaos`]  | fault-injection sweep: retry/degradation robustness across every migration path |
//! | [`ptrepl`] | page-table placement: local vs replicated vs remote PT homes (ptplace subsystem) |
//! | [`pressure`] | memory-pressure sweep: watermark reclaim, hot-remove, OOM and watchdog across 60–105 % occupancy |
//! | [`multitenant`] | 1,000-tenant churn on the sharded deterministic engine (ledger pressure, windowed barriers) |
//!
//! Each experiment returns plain row structs; the `numa-bench` binaries
//! format them as the paper's tables, and the integration tests assert
//! the *shapes* (who wins, where the crossovers fall).

pub mod ablations;
pub mod blas1;
pub mod chaos;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod multitenant;
pub mod pressure;
pub mod ptrepl;
pub mod scaling;
pub mod table1;
pub mod tiering;

use numa_stats::mb_per_s;

/// The page-count sweep used by Figure 4 (1 .. 16384 pages).
pub fn fig4_page_counts() -> Vec<u64> {
    (0..=14).map(|e| 1u64 << e).collect()
}

/// The page-count sweep used by Figure 5 (4 .. 4096 pages).
pub fn fig5_page_counts() -> Vec<u64> {
    (2..=12).map(|e| 1u64 << e).collect()
}

/// The page-count sweep used by Figure 7 (64 .. 32768 pages).
pub fn fig7_page_counts() -> Vec<u64> {
    (6..=15).map(|e| 1u64 << e).collect()
}

/// Throughput in MB/s for migrating `pages` 4 kB pages in `ns`.
pub fn pages_throughput(pages: u64, ns: u64) -> f64 {
    mb_per_s(pages * numa_vm::PAGE_SIZE, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_axes() {
        let f4 = fig4_page_counts();
        assert_eq!(*f4.first().unwrap(), 1);
        assert_eq!(*f4.last().unwrap(), 16384);
        let f5 = fig5_page_counts();
        assert_eq!(*f5.first().unwrap(), 4);
        assert_eq!(*f5.last().unwrap(), 4096);
        let f7 = fig7_page_counts();
        assert_eq!(*f7.first().unwrap(), 64);
        assert_eq!(*f7.last().unwrap(), 32768);
    }

    #[test]
    fn throughput_units() {
        // 1024 pages (4 MiB) in 4194304 ns = 1000 MB/s.
        let t = pages_throughput(1024, 1024 * 4096);
        assert!((t - 1000.0).abs() < 1.0, "{t}");
    }
}
