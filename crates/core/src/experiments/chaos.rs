//! Chaos sweep: deterministic fault injection across every migration
//! path.
//!
//! Each case runs one migration workload with a
//! [`FaultPlan::chaos`] plan installed — transient copy failures
//! (`EBUSY`, retried), destination frame exhaustion (`ENOMEM`,
//! degraded), and racing unmaps (`ENOENT`, copy wasted) — at a swept
//! injection rate, then audits the machine:
//!
//! * every mapped page resolves to exactly one live frame (plus its
//!   shadow while a tier transaction is in flight — zero after a run);
//! * frame accounting balances: live frames == frames reachable from the
//!   page table;
//! * the run is byte-deterministic: the same `(seed, plan)` reproduces
//!   the same virtual time and the same counters, so every case is
//!   executed twice and compared.
//!
//! The sweep answers the robustness question the paper's artifact never
//! had to: when migration *fails*, do the retry and degradation policies
//! keep the workload running with pages merely left behind, or does
//! state corrupt?

use numa_machine::{Machine, MemAccessKind, Op, RunResult, ThreadSpec};
use numa_rt::{setup, Buffer, RetryPolicy, UserNextTouch};
use numa_sim::FaultPlan;
use numa_stats::Counter;
use numa_topology::{CoreId, NodeId};
use numa_vm::{VirtAddr, PAGE_SIZE};

/// Pages per chaos workload buffer — enough for hundreds of injection
/// opportunities per run at the default rates, small enough that the
/// whole sweep stays in the seconds range.
pub const PAGES: u64 = 256;

/// The five migration paths the sweep covers. Each exercises a distinct
/// injection site (`move_pages`, `migrate_pages`, the kernel next-touch
/// fault path, the user-space next-touch handler, tier promotion).
pub const WORKLOADS: [&str; 5] = [
    "move_pages",
    "migrate_pages",
    "kernel_nt",
    "user_nt",
    "tiering",
];

/// The two memory-pressure paths, swept separately (`--full` and the
/// chaos CI job) so the default sweep — and its golden output — is
/// unchanged. `evacuation` offlines a populated node under injection at
/// [`numa_sim::FaultSite::Evacuation`]; `reclaim` overcommits a shrunken
/// DRAM node so every allocation past capacity direct-reclaims toward
/// the slow tier under injection at [`numa_sim::FaultSite::Reclaim`].
pub const PRESSURE_WORKLOADS: [&str; 2] = ["evacuation", "reclaim"];

/// The injection-rate axis, parts per million per decision point.
pub fn default_rates(full: bool) -> Vec<u32> {
    if full {
        vec![0, 1_000, 10_000, 50_000, 100_000, 250_000]
    } else {
        vec![0, 10_000, 100_000]
    }
}

/// One audited chaos case. All fields are integers so two runs of the
/// same case can be compared for byte-level equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRow {
    /// Which migration path (see [`WORKLOADS`]).
    pub workload: &'static str,
    /// Injection rate at every site, parts per million.
    pub rate_ppm: u32,
    /// Virtual completion time of the run.
    pub makespan_ns: u64,
    /// Faults the plan injected.
    pub injected: u64,
    /// Per-page retries after transient failures.
    pub retried: u64,
    /// Migrations degraded (page deliberately left in place).
    pub degraded: u64,
    /// Pages abandoned after the retry budget ran out.
    pub gave_up: u64,
    /// Pages that reached the intended destination anyway.
    pub moved: u64,
    /// Pages left behind on their old node — degradation, not loss.
    pub left_behind: u64,
    /// Post-run audit failures. [`run_case`] asserts this is zero; it is
    /// recorded so the table shows the audit ran.
    pub invariant_violations: u64,
}

/// Audit the machine after a chaos run. Returns one message per
/// violation; an empty vector means the invariants held.
pub fn check_invariants(machine: &Machine) -> Vec<String> {
    let mut problems = Vec::new();
    if let Err(e) = machine.space.check_invariants() {
        problems.push(e);
    }
    let pending = machine.kernel.pending_tier_txn_count();
    if pending != 0 {
        problems.push(format!("{pending} tier transactions still in flight"));
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut mapped = 0u64;
    for (vpn, pte) in machine.space.page_table.iter() {
        for frame in std::iter::once(pte.frame).chain(pte.shadow) {
            mapped += 1;
            if machine.frames.get(frame).is_none() {
                problems.push(format!("vpn {vpn} maps freed frame {frame:?}"));
            }
            if !seen.insert(frame) {
                problems.push(format!("frame {frame:?} mapped by two pages"));
            }
        }
    }
    let live = machine.frames.live_total();
    if mapped != live {
        problems.push(format!(
            "{mapped} frames reachable from the page table but {live} live — leak or double-free"
        ));
    }
    problems
}

/// Run one audited case: execute the workload twice with the same
/// `(seed, plan)`, assert the invariants hold and that both executions
/// produced identical results, and return the (single) row.
pub fn run_case(workload: &'static str, rate_ppm: u32, seed: u64) -> ChaosRow {
    let first = execute(workload, rate_ppm, seed);
    let second = execute(workload, rate_ppm, seed);
    assert_eq!(
        first, second,
        "chaos case {workload}@{rate_ppm}ppm seed {seed} is not deterministic"
    );
    first
}

/// The full sweep: every (workload, rate) pair, in axis order.
pub fn sweep(workloads: &[&'static str], rates: &[u32], seed: u64) -> Vec<ChaosRow> {
    sweep_jobs(workloads, rates, seed, 1)
}

/// [`sweep`] with the cases distributed over `jobs` host threads. Cases
/// are independent (fresh machine each), so the rows are identical to
/// the sequential run's, in the same order.
pub fn sweep_jobs(
    workloads: &[&'static str],
    rates: &[u32],
    seed: u64,
    jobs: usize,
) -> Vec<ChaosRow> {
    let cases: Vec<(&'static str, u32)> = workloads
        .iter()
        .flat_map(|w| rates.iter().map(move |r| (*w, *r)))
        .collect();
    threadpool::par_map(jobs, &cases, |_, &(workload, rate_ppm)| {
        run_case(workload, rate_ppm, seed)
    })
}

fn execute(workload: &'static str, rate_ppm: u32, seed: u64) -> ChaosRow {
    let (machine, r, pages, dest) = match workload {
        "move_pages" => run_move_pages(seed, rate_ppm),
        "migrate_pages" => run_migrate_pages(seed, rate_ppm),
        "kernel_nt" => run_kernel_nt(seed, rate_ppm),
        "user_nt" => run_user_nt(seed, rate_ppm),
        "tiering" => run_tiering(seed, rate_ppm),
        "evacuation" => run_evacuation(seed, rate_ppm),
        "reclaim" => run_reclaim(seed, rate_ppm),
        other => panic!("unknown chaos workload {other:?} (see chaos::WORKLOADS)"),
    };
    let problems = check_invariants(&machine);
    assert!(
        problems.is_empty(),
        "invariants violated after {workload}@{rate_ppm}ppm seed {seed}: {problems:#?}"
    );
    let moved = pages
        .iter()
        .filter(|a| machine.page_node(**a) == Some(dest))
        .count() as u64;
    let c = &machine.kernel.counters;
    ChaosRow {
        workload,
        rate_ppm,
        makespan_ns: r.makespan.ns(),
        injected: c.get(Counter::FaultsInjected),
        retried: c.get(Counter::MigrationRetries),
        degraded: c.get(Counter::MigrationsDegraded),
        gave_up: c.get(Counter::MigrationsGaveUp),
        moved,
        left_behind: pages.len() as u64 - moved,
        invariant_violations: problems.len() as u64,
    }
}

type CaseOutput = (Machine, RunResult, Vec<VirtAddr>, NodeId);

/// Synchronous `move_pages` of the whole buffer, node 0 → node 1, issued
/// from a node-1 core (the Fig. 4 discipline).
fn run_move_pages(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::opteron_4p();
    let buf = Buffer::alloc(&mut machine, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut machine, &buf, NodeId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let pages = buf.page_addrs();
    let dest = vec![NodeId(1); pages.len()];
    let r = machine.run(
        vec![ThreadSpec::scripted(
            CoreId(4),
            vec![Op::MovePages {
                pages: pages.clone(),
                dest,
            }],
        )],
        &[],
    );
    (machine, r, pages, NodeId(1))
}

/// Whole-process `migrate_pages`, node 0 → node 1.
fn run_migrate_pages(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::opteron_4p();
    let buf = Buffer::alloc(&mut machine, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut machine, &buf, NodeId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let r = machine.run(
        vec![ThreadSpec::scripted(
            CoreId(4),
            vec![Op::MigratePages {
                from: vec![NodeId(0)],
                to: vec![NodeId(1)],
            }],
        )],
        &[],
    );
    (machine, r, buf.page_addrs(), NodeId(1))
}

/// Kernel next-touch: mark, then stream-read the buffer from a node-3
/// core so every page migrates inside its own fault.
fn run_kernel_nt(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::opteron_4p();
    let buf = Buffer::alloc(&mut machine, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut machine, &buf, NodeId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let toucher = CoreId(12);
    let dest = machine.node_of_core(toucher);
    let r = machine.run(
        vec![ThreadSpec::scripted(
            toucher,
            vec![
                Op::MadviseNextTouch {
                    range: buf.page_range(),
                },
                Op::read(buf.addr, buf.len, MemAccessKind::Stream),
            ],
        )],
        &[],
    );
    (machine, r, buf.page_addrs(), dest)
}

/// User-space next-touch: mark with the SIGSEGV library, then touch from
/// a node-3 core; the handler's `move_pages` runs under the retry
/// policy.
fn run_user_nt(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::opteron_4p();
    let buf = Buffer::alloc(&mut machine, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut machine, &buf, NodeId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let nt = UserNextTouch::with_retry_policy(RetryPolicy::default());
    machine.set_segv_handler(nt.handler());
    let toucher = CoreId(12);
    let dest = machine.node_of_core(toucher);
    let mut ops = nt.mark_ops(&buf);
    ops.push(Op::read(buf.addr, buf.len, MemAccessKind::Stream));
    let r = machine.run(vec![ThreadSpec::scripted(toucher, ops)], &[]);
    (machine, r, buf.page_addrs(), dest)
}

/// Transactional tier promotion of a slow-resident buffer into DRAM on
/// the tiered 4+2 machine.
fn run_tiering(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::tiered_4p2();
    let buf = Buffer::alloc_on(&mut machine, PAGES * PAGE_SIZE, NodeId(4));
    // The slow node has no cores; the bind policy places the pages there
    // regardless of which core faults them in.
    setup::populate_from_core(&mut machine, &buf, CoreId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let vpns: Vec<u64> = buf.page_range().iter().collect();
    let r = machine.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::TierMigrate {
                pages: vpns,
                dest: NodeId(0),
                transactional: true,
            }],
        )],
        &[],
    );
    (machine, r, buf.page_addrs(), NodeId(0))
}

/// Node hot-remove under fire: populate node 0, then offline it from a
/// node-1 core. Every resident page must either evacuate (nearest
/// online node — node 1) or degrade in place with Linux partial-failure
/// semantics; the audit catches anything worse. The node is brought
/// back online afterwards so the sweep also exercises hot-add.
fn run_evacuation(seed: u64, rate_ppm: u32) -> CaseOutput {
    let mut machine = Machine::new(
        std::sync::Arc::new(numa_topology::presets::opteron_4p()),
        numa_kernel::KernelConfig {
            pressure: numa_kernel::PressureSettings::enabled(),
            ..numa_kernel::KernelConfig::default()
        },
    );
    let buf = Buffer::alloc(&mut machine, PAGES * PAGE_SIZE);
    setup::populate_on_node(&mut machine, &buf, NodeId(0));
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let r = machine.run(
        vec![ThreadSpec::scripted(
            CoreId(4),
            vec![
                Op::NodeOffline { node: NodeId(0) },
                Op::NodeOnline { node: NodeId(0) },
            ],
        )],
        &[],
    );
    (machine, r, buf.page_addrs(), NodeId(1))
}

/// Direct reclaim under fire: a tiered machine whose DRAM banks hold
/// only 192 frames gets a 256-page buffer bound to node 0, so every
/// fault past capacity runs the allocation slow path — direct reclaim
/// demoting cold pages to the slow node behind node 0 — with injections
/// at the per-victim isolate. "Moved" counts the pages that ended up
/// demoted; the rest stay resident in DRAM.
fn run_reclaim(seed: u64, rate_ppm: u32) -> CaseOutput {
    let topo = numa_topology::presets::tiered_4p2_with(
        numa_topology::CostModel::default(),
        192 * PAGE_SIZE,
        512 * PAGE_SIZE,
    );
    let mut machine = Machine::new(
        std::sync::Arc::new(topo),
        numa_kernel::KernelConfig {
            pressure: numa_kernel::PressureSettings::enabled(),
            ..numa_kernel::KernelConfig::tiered()
        },
    );
    let nodes: Vec<NodeId> = machine.topology().node_ids().collect();
    for n in nodes {
        machine.frames.set_watermarks(n, 16, 8);
    }
    machine
        .kernel
        .set_fault_plan(FaultPlan::chaos(seed, rate_ppm));
    let buf = Buffer::alloc_on(&mut machine, PAGES * PAGE_SIZE, NodeId(0));
    let r = machine.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::write(buf.addr, buf.len, MemAccessKind::Stream)],
        )],
        &[],
    );
    (machine, r, buf.page_addrs(), NodeId(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_injects_nothing_and_moves_everything() {
        for w in WORKLOADS {
            let row = run_case(w, 0, 7);
            assert_eq!(row.injected, 0, "{w}");
            assert_eq!(row.degraded, 0, "{w}");
            assert_eq!(row.gave_up, 0, "{w}");
            assert_eq!(row.left_behind, 0, "{w}: all pages must arrive");
            assert_eq!(row.moved, PAGES, "{w}");
        }
    }

    #[test]
    fn chaos_injects_retries_and_degrades_without_corruption() {
        let rows: Vec<ChaosRow> = WORKLOADS.iter().map(|w| run_case(w, 100_000, 1)).collect();
        let injected: u64 = rows.iter().map(|r| r.injected).sum();
        let retried: u64 = rows.iter().map(|r| r.retried).sum();
        let degraded: u64 = rows.iter().map(|r| r.degraded).sum();
        assert!(injected > 0, "10% per site must inject: {rows:#?}");
        assert!(retried > 0, "transient faults must be retried: {rows:#?}");
        assert!(degraded > 0, "some faults must degrade: {rows:#?}");
        for r in &rows {
            assert_eq!(r.invariant_violations, 0);
            assert_eq!(
                r.moved + r.left_behind,
                PAGES,
                "{}: every page accounted for",
                r.workload
            );
            assert!(
                r.moved > 0,
                "{}: a 10% fault rate must not stop the workload cold",
                r.workload
            );
        }
    }

    #[test]
    fn retries_rescue_most_transient_failures() {
        // At a moderate rate, bounded retries should land the vast
        // majority of pages despite injected transients.
        let row = run_case("move_pages", 50_000, 3);
        assert!(row.retried > 0);
        assert!(
            row.moved >= PAGES * 9 / 10,
            "retries should rescue most pages: {row:?}"
        );
    }

    #[test]
    fn pressure_workloads_survive_chaos() {
        for w in PRESSURE_WORKLOADS {
            for rate in [0u32, 100_000] {
                let row = run_case(w, rate, 11);
                assert_eq!(row.invariant_violations, 0, "{w}@{rate}");
                assert_eq!(
                    row.moved + row.left_behind,
                    PAGES,
                    "{w}@{rate}: every page accounted for"
                );
                assert!(
                    row.moved > 0,
                    "{w}@{rate}: pressure relief must make progress: {row:?}"
                );
            }
        }
        // A clean offline evacuates every page; nothing degrades.
        let row = run_case("evacuation", 0, 11);
        assert_eq!(row.moved, PAGES);
        assert_eq!(row.degraded, 0);
    }

    #[test]
    fn sweep_rows_are_identical_across_jobs() {
        let rates = [0, 100_000];
        let seq = sweep_jobs(&["move_pages", "tiering"], &rates, 5, 1);
        let par = sweep_jobs(&["move_pages", "tiering"], &rates, 5, 4);
        assert_eq!(seq, par);
    }
}
