//! The discrete-event thread engine.
//!
//! Threads are op generators pinned to cores. The engine pops the thread
//! with the earliest virtual clock, asks it for its next [`Op`], executes
//! the op (advancing the clock through the kernel/memory cost model), and
//! re-queues it — classic conservative DES. Barriers park threads until
//! the whole team arrives (OpenMP semantics).

use crate::op::Op;
use crate::Machine;
use numa_sim::{BarrierOutcome, BarrierState, ReadyQueue, SimTime, TraceEventKind};
use numa_stats::{Breakdown, CostComponent, Counter, Counters};
use numa_topology::CoreId;

/// Context passed to a program when the engine asks for its next op.
pub struct ProgramCtx<'a> {
    /// This thread's id within the run.
    pub tid: usize,
    /// The core the thread is pinned to.
    pub core: CoreId,
    /// The thread's current virtual clock.
    pub now: SimTime,
    /// Read access to the machine (e.g. to query page placement).
    pub machine: &'a Machine,
}

/// A simulated thread body: yields ops until `None`.
pub type Program = Box<dyn FnMut(&mut ProgramCtx<'_>) -> Option<Op>>;

/// One thread of a run: a core binding plus a program.
pub struct ThreadSpec {
    /// Core to pin the thread to.
    pub core: CoreId,
    /// The op generator.
    pub program: Program,
}

impl ThreadSpec {
    /// A thread on `core` running `program`.
    pub fn new(core: CoreId, program: Program) -> Self {
        ThreadSpec { core, program }
    }

    /// A thread that executes a fixed op list.
    pub fn scripted(core: CoreId, ops: Vec<Op>) -> Self {
        let mut iter = ops.into_iter();
        ThreadSpec::new(core, Box::new(move |_| iter.next()))
    }
}

/// Aggregated statistics of one run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Virtual time per cost component, summed over all threads.
    pub breakdown: Breakdown,
    /// Machine-level event counters (accesses, cache hits, ...). Kernel
    /// counters are kept separately in `Machine::kernel.counters`.
    pub counters: Counters,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completion time of the whole run (max over threads).
    pub makespan: SimTime,
    /// Per-thread completion times.
    pub thread_end: Vec<SimTime>,
    /// Aggregated statistics.
    pub stats: RunStats,
}

impl RunResult {
    /// Makespan in nanoseconds.
    pub fn makespan_ns(&self) -> u64 {
        self.makespan.ns()
    }
}

/// One scheduling quantum of an expanded op.
///
/// Multi-page ops (syscalls, accesses) expand into per-page micro-ops so
/// that concurrent threads' resource acquisitions happen in virtual-time
/// order. Executing a 16k-page `move_pages` atomically would push every
/// lock/link watermark to its own completion time, invisibly serializing
/// any logically-concurrent caller — exactly the artifact a single
/// `busy_until` resource model is prone to.
#[derive(Clone, Copy)]
enum Micro {
    /// A small op that is safe to execute atomically, stored out-of-line
    /// in [`MicroRuns::whole_ops`] (index). Keeping the one non-`Copy`
    /// payload out of the enum makes every arena slot a plain 32-byte
    /// copy — drained slots need no sentinel back-fill and no drop glue.
    Whole(u32),
    /// `move_pages` base bookkeeping.
    MovePagesBegin,
    /// Migrate one page of a `move_pages` call; a transient (`EBUSY`)
    /// failure with retries left re-queues the same micro.
    MovePage {
        addr: numa_vm::VirtAddr,
        dest: numa_topology::NodeId,
        unpatched_n: usize,
        retries_left: u32,
    },
    /// `migrate_pages` base bookkeeping.
    MigratePagesBegin,
    /// One page of a `migrate_pages` walk. The from/to node sets live in
    /// the thread's [`ThreadState::migrate_args`] (one walk in flight per
    /// thread), so the per-page micro stays pointer-free. Transient
    /// failures retry like [`Micro::MovePage`].
    MigratePage { vpn: u64, retries_left: u32 },
    /// The batched TLB shootdown ending a migration syscall.
    MigrationShootdown,
    /// Start the transactional copy of one page (tiering).
    TierTxnBegin {
        vpn: u64,
        dest: numa_topology::NodeId,
    },
    /// Commit/abort the transactional copy at copy-completion time; an
    /// abort with retries left re-queues a fresh begin/commit pair.
    TierTxnCommit {
        vpn: u64,
        dest: numa_topology::NodeId,
        retries_left: u32,
    },
    /// Stop-the-world migration of one page (tiering).
    TierStwPage {
        vpn: u64,
        dest: numa_topology::NodeId,
    },
    /// Touch one page of an access op.
    Touch {
        page_addr: numa_vm::VirtAddr,
        portion: u64,
        write: bool,
        kind: crate::op::MemAccessKind,
        fits: bool,
    },
    /// Copy one page-sized chunk of a user-space memcpy.
    MemcpyChunk {
        src: numa_vm::VirtAddr,
        dst: numa_vm::VirtAddr,
        bytes: u64,
    },
    /// Mark a node unallocatable before its evacuation walk (the first
    /// step of memory hot-remove).
    NodeOfflineBegin { node: numa_topology::NodeId },
    /// Evacuate one resident page off an offlining node; transient
    /// (`EBUSY`) failures retry like [`Micro::MovePage`], permanent ones
    /// degrade and leave the page in place (partial-failure semantics).
    EvacuatePage {
        vpn: u64,
        node: numa_topology::NodeId,
        retries_left: u32,
    },
}

/// How many times an aborted transactional tier migration is retried
/// before the daemon gives up on the page for this pass. Nomad bounds
/// retries the same way: a page hot enough to keep aborting is exactly
/// the page not worth moving right now.
const TIER_TXN_RETRIES: u32 = 3;

/// How many times a page whose migration failed transiently (`EBUSY`,
/// fault-injected) is retried before the kernel reports the failure in
/// the per-page status and moves on — mirroring Linux's bounded
/// `migrate_pages()` retry loop.
const MOVE_PAGE_RETRIES: u32 = 3;

/// A thread's pending micro-ops: a bump arena of contiguous runs
/// (DESIGN.md §13).
///
/// `expand_op_into` writes each op as one contiguous run and the arena is
/// cleared wholesale before the next expansion, so steady state allocates
/// nothing and drains by bumping a cursor through a flat `Vec`. The
/// `push_front` re-queues of the retry paths (fault retries, tier txn
/// abort/re-begin) append single-micro runs at the arena *tail* and chain
/// them LIFO on the run stack: the top run always drains first, which is
/// exactly a deque's front-push order without the deque.
#[derive(Default)]
struct MicroRuns {
    /// Flat storage; cleared (capacity kept) before each expansion.
    arena: Vec<Micro>,
    /// `(cursor, end)` windows into `arena`; the last entry is the run
    /// currently draining. Depth is 1 + pending front-pushes, so it stays
    /// within a couple of entries.
    runs: Vec<(u32, u32)>,
    /// Out-of-line [`Micro::Whole`] payloads, indexed by the variant.
    whole_ops: Vec<Op>,
}

impl MicroRuns {
    fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Reset the arena for a fresh op expansion. Only legal when drained —
    /// live run windows would dangle otherwise.
    fn begin_expand(&mut self) {
        debug_assert!(self.runs.is_empty(), "expansion into a draining arena");
        self.arena.clear();
        self.whole_ops.clear();
    }

    /// Seal everything emitted since `begin_expand` as one contiguous
    /// run. A no-op for empty expansions.
    fn end_expand(&mut self) {
        debug_assert!(self.runs.is_empty(), "sealing into a draining arena");
        if !self.arena.is_empty() {
            self.runs.push((0, self.arena.len() as u32));
        }
    }

    /// Append a micro to the run being expanded. Plain arena push — the
    /// covering window is created once by `end_expand`, not maintained
    /// per push (expansion is itself a hot path: one emit per page).
    fn emit(&mut self, m: Micro) {
        debug_assert!(self.runs.is_empty(), "emit outside an expansion");
        self.arena.push(m);
    }

    /// Append a whole op, parking its payload out-of-line.
    fn push_whole(&mut self, op: Op) {
        let i = self.whole_ops.len() as u32;
        self.whole_ops.push(op);
        self.emit(Micro::Whole(i));
    }

    /// Take the payload of a [`Micro::Whole`] slot (executed exactly once
    /// per expansion; the slot is dead afterwards).
    fn take_whole(&mut self, i: u32) -> Op {
        std::mem::replace(&mut self.whole_ops[i as usize], Op::Nop)
    }

    /// Chain a micro to drain *next* (deque `push_front` semantics): a
    /// fresh single-micro run on top of the stack, stored at the arena
    /// tail so nothing shifts.
    fn push_front(&mut self, m: Micro) {
        let i = self.arena.len() as u32;
        self.arena.push(m);
        self.runs.push((i, i + 1));
    }

    /// Take the next micro, bumping the top run's cursor.
    fn pop_front(&mut self) -> Option<Micro> {
        let (cursor, end) = self.runs.last_mut()?;
        let i = *cursor as usize;
        *cursor += 1;
        let done = *cursor == *end;
        let m = self.arena[i];
        if done {
            self.runs.pop();
        }
        Some(m)
    }

    /// The micro `pop_front` would return, without consuming it.
    fn front(&self) -> Option<&Micro> {
        let &(cursor, _) = self.runs.last()?;
        Some(&self.arena[cursor as usize])
    }

    /// Abandon every pending micro (the owning thread was OOM-killed).
    fn clear(&mut self) {
        self.runs.clear();
        self.arena.clear();
        self.whole_ops.clear();
    }
}

struct ThreadState {
    core: CoreId,
    clock: SimTime,
    done: bool,
    program: Program,
    micro: MicroRuns,
    /// The from/to node sets of the thread's in-flight `migrate_pages`
    /// walk (set at expansion, read by every `Micro::MigratePage`).
    migrate_args: Option<(Vec<numa_topology::NodeId>, Vec<numa_topology::NodeId>)>,
    /// The op currently being drained and when it started (tracing only).
    op: Option<(&'static str, SimTime)>,
}

/// Process-wide default for the engine's lookahead fast path. Machines
/// snapshot it at construction; tests flip it to prove batched and
/// per-page execution produce bit-identical results.
static FAST_PATH_DEFAULT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Set the process-wide default for the lookahead fast path (applies to
/// machines constructed afterwards).
pub fn set_fast_path_default(enabled: bool) {
    FAST_PATH_DEFAULT.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide fast-path default.
pub fn fast_path_default() -> bool {
    FAST_PATH_DEFAULT.load(std::sync::atomic::Ordering::SeqCst)
}

/// A paused-and-resumable engine session over one machine.
///
/// [`Machine::start_run`] captures what used to be the locals of the
/// monolithic run loop; [`Machine::run_until`] advances the session,
/// optionally stopping once every pending event lies beyond a virtual-time
/// horizon; [`EngineRun::finish`] closes the session into a [`RunResult`].
/// [`Machine::run`] is the composition of the three, so a windowed run is
/// event-for-event identical to a monolithic one: the horizon only changes
/// *when the host* executes each event, never which event is next (pops
/// always follow the queue's global virtual-time order).
///
/// This re-entrancy is what the sharded multitenant engine
/// ([`crate::shard`]) is built on: each tenant's session advances through
/// bounded windows and pauses at every barrier so shared resources can be
/// reconciled deterministically.
pub struct EngineRun {
    stats: RunStats,
    barriers: Vec<BarrierState>,
    states: Vec<ThreadState>,
    queue: ReadyQueue<usize>,
    thread_end: Vec<SimTime>,
    /// Scratch snapshot for the traced-micro breakdown diff, reused
    /// across micros instead of cloning a fresh Vec per drain.
    snap: Breakdown,
    /// Tracing cannot be toggled mid-run; hoisted out of the per-micro
    /// loop (it lives behind a shared-handle indirection).
    tracing: bool,
}

impl EngineRun {
    /// The statistics accumulated so far (counters read mid-run by the
    /// shard reconciler's window folds).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Close the session. Threads that never yielded `None` (e.g. parked
    /// at a barrier no one releases) report the clock they stalled at,
    /// exactly as the monolithic loop did.
    pub fn finish(self) -> RunResult {
        let makespan = self
            .thread_end
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        RunResult {
            makespan,
            thread_end: self.thread_end,
            stats: self.stats,
        }
    }
}

impl Machine {
    /// Run `threads` to completion with the given barrier team sizes
    /// (barrier *i* in [`Op::Barrier`] refers to `barrier_sizes[i]`).
    ///
    /// Threads all start at virtual time zero. Returns when every program
    /// has yielded `None`.
    pub fn run(&mut self, threads: Vec<ThreadSpec>, barrier_sizes: &[usize]) -> RunResult {
        let mut run = self.start_run(threads, barrier_sizes);
        self.run_until(&mut run, None);
        run.finish()
    }

    /// Open a resumable engine session over `threads` (see [`EngineRun`]).
    pub fn start_run(&mut self, threads: Vec<ThreadSpec>, barrier_sizes: &[usize]) -> EngineRun {
        let barriers: Vec<BarrierState> = barrier_sizes
            .iter()
            .map(|s| BarrierState::new(*s))
            .collect();
        let states: Vec<ThreadState> = threads
            .into_iter()
            .map(|t| ThreadState {
                core: t.core,
                clock: SimTime::ZERO,
                done: false,
                program: t.program,
                micro: MicroRuns::default(),
                migrate_args: None,
                op: None,
            })
            .collect();
        let n = states.len();
        // The engine pushes/pops at most one entry per live thread (plus
        // the one being re-queued), so sized here the heap never grows.
        let mut queue = ReadyQueue::with_capacity(n + 1);
        for tid in 0..n {
            queue.push(SimTime::ZERO, tid);
        }
        EngineRun {
            stats: RunStats::default(),
            barriers,
            states,
            queue,
            thread_end: vec![SimTime::ZERO; n],
            snap: Breakdown::new(),
            tracing: self.trace.enabled(),
        }
    }

    /// Advance a session until no pending event is at or before `horizon`
    /// (`None` = run to completion). Returns the virtual time of the next
    /// pending event, or `None` when the queue drained (every thread is
    /// done or parked at a barrier that cannot release).
    ///
    /// The horizon gates *pops*, not micro drains: a thread popped inside
    /// the window may overshoot it through the lookahead fast path. The
    /// overshoot is harmless for determinism — it depends only on this
    /// session's own queue, so the same events execute for any window
    /// schedule — and the shard layer's window boundaries are fixed
    /// multiples of the lookahead regardless of `--shards`/`--jobs`.
    pub fn run_until(&mut self, run: &mut EngineRun, horizon: Option<SimTime>) -> Option<SimTime> {
        let EngineRun {
            stats,
            barriers,
            states,
            queue,
            thread_end,
            snap,
            tracing,
        } = run;
        let tracing = *tracing;

        loop {
            if horizon.is_some() {
                match queue.peek_time() {
                    None => return None,
                    Some(p) if Some(p) > horizon => return Some(p),
                    Some(_) => {}
                }
            }
            let (t, tid) = queue.pop()?;
            let state = &mut states[tid];
            if state.done {
                continue;
            }
            state.clock = state.clock.max(t);
            let core = state.core;
            let mut now = state.clock;

            // Drain pending micro-ops if there are any. The thread state is
            // passed down so a micro can queue follow-up work (e.g. a
            // transactional tier abort re-queuing its retry).
            if let Some(first) = state.micro.pop_front() {
                // Per-touch charges accumulate here and flush once per
                // quantum (per micro when traced, so span diffs are
                // unchanged) — see `TouchBatch`.
                let mut batch = crate::access::TouchBatch::default();
                let mut micro = first;
                loop {
                    // With tracing on, diff the breakdown around the micro
                    // so every nanosecond charged to a component also
                    // appears as a trace span — component_totals() then
                    // reconciles exactly with the run's Breakdown by
                    // construction.
                    if tracing {
                        self.trace.set_thread(tid);
                        snap.clone_from(&stats.breakdown);
                    }
                    let end = self.exec_micro(tid, core, now, micro, state, stats, &mut batch);
                    if tracing {
                        batch.flush(stats);
                        for c in CostComponent::ALL {
                            let delta = stats.breakdown.get(c) - snap.get(c);
                            if delta > 0 {
                                self.trace.record_for(
                                    now,
                                    tid,
                                    TraceEventKind::Span {
                                        component: c,
                                        dur_ns: delta,
                                    },
                                );
                            }
                        }
                        if state.micro.is_empty() {
                            if let Some((op, started)) = state.op.take() {
                                self.trace.record_for(
                                    started,
                                    tid,
                                    TraceEventKind::OpEnd {
                                        op,
                                        dur_ns: end.since(started),
                                    },
                                );
                            }
                        }
                    }
                    state.clock = end;
                    // An OOM kill raised inside the micro (a fault came
                    // back fatally out of memory with the kill policy on):
                    // this thread is the deterministic victim — the
                    // allocating task, as under Linux's
                    // `oom_kill_allocating_task` — so abandon its pending
                    // micros and let the rest of the run continue.
                    if self.oom_kill_pending {
                        self.oom_kill_pending = false;
                        batch.flush(stats);
                        state.micro.clear();
                        if tracing {
                            if let Some((op, started)) = state.op.take() {
                                self.trace.record_for(
                                    started,
                                    tid,
                                    TraceEventKind::OpEnd {
                                        op,
                                        dur_ns: end.since(started),
                                    },
                                );
                            }
                        }
                        state.done = true;
                        thread_end[tid] = end;
                        break;
                    }
                    // Lookahead fast path: if this thread still has micros
                    // and every other runnable thread wakes *strictly after*
                    // `end`, pushing and re-popping the queue would
                    // deterministically select this same thread (an
                    // equal-time entry would win the FIFO tie-break, hence
                    // the strict inequality). Executing the next micro
                    // inline is therefore exact by construction: micros
                    // never release barriers, so no parked thread can
                    // become runnable inside the window. See DESIGN.md §10.
                    if self.fast_path
                        && !state.micro.is_empty()
                        && queue.peek_time().is_none_or(|p| p > end)
                    {
                        self.fastpath_micros += 1;
                        now = end;
                        micro = state.micro.pop_front().expect("checked non-empty");
                        continue;
                    }
                    batch.flush(stats);
                    queue.push(end, tid);
                    break;
                }
                continue;
            }

            // Ask the program for the next op. The context borrows the
            // machine immutably; execution below borrows it mutably.
            let op = {
                let mut ctx = ProgramCtx {
                    tid,
                    core,
                    now,
                    machine: self,
                };
                (state.program)(&mut ctx)
            };
            let Some(op) = op else {
                state.done = true;
                thread_end[tid] = state.clock;
                continue;
            };

            match op {
                Op::Barrier(id) => {
                    assert!(
                        id < barriers.len(),
                        "thread {tid} hit unregistered barrier {id}"
                    );
                    match barriers[id].arrive(tid, now) {
                        BarrierOutcome::Wait => {
                            // Parked: re-queued when the barrier releases.
                        }
                        BarrierOutcome::Release {
                            release_at,
                            waiters,
                        } => {
                            stats.counters.bump(Counter::BarriersCompleted);
                            self.trace
                                .record_for(release_at, tid, TraceEventKind::Barrier { id });
                            for w in waiters {
                                states[w].clock = release_at;
                                queue.push(release_at, w);
                            }
                            states[tid].clock = release_at;
                            queue.push(release_at, tid);
                        }
                    }
                }
                Op::MigrateThread { to } => {
                    // Handled in the loop (like barriers) because it
                    // mutates the thread's core binding, which only the
                    // engine owns.
                    let end = self.migrate_thread(core, to, now, stats);
                    states[tid].core = to;
                    states[tid].clock = end;
                    queue.push(end, tid);
                }
                other => {
                    let op_name = other.name();
                    let state = &mut states[tid];
                    self.expand_op_into(core, other, state);
                    if tracing && !state.micro.is_empty() {
                        self.trace
                            .record_for(now, tid, TraceEventKind::OpStart { op: op_name });
                        state.op = Some((op_name, now));
                    }
                    queue.push(now, tid);
                }
            }
        }
    }

    /// Expand an op into its scheduling quanta as one contiguous run in
    /// the thread's micro arena — reused across ops so expansion stops
    /// allocating once the arena has grown to the run's largest op.
    fn expand_op_into(&mut self, core: CoreId, op: Op, state: &mut ThreadState) {
        use crate::access::{build_strided_touches, touch_iter};
        use numa_vm::{PageRange, PAGE_SIZE};
        state.micro.begin_expand();
        let micros = &mut state.micro;
        match op {
            Op::Access {
                addr,
                bytes,
                traffic,
                write,
                kind,
            } => {
                if bytes == 0 {
                    return;
                }
                let pages = PageRange::covering(addr, bytes).pages();
                push_touches(
                    micros,
                    self,
                    core,
                    pages,
                    touch_iter(addr, bytes),
                    traffic,
                    write,
                    kind,
                );
            }
            Op::AccessStrided {
                base,
                seg_bytes,
                stride,
                count,
                traffic,
                write,
                kind,
            } => {
                if seg_bytes == 0 || count == 0 {
                    return;
                }
                let touches = build_strided_touches(base, seg_bytes, stride, count);
                let pages = touches.len() as u64;
                push_touches(micros, self, core, pages, touches, traffic, write, kind);
            }
            Op::Memcpy { src, dst, bytes } => {
                let mut off = 0u64;
                while off < bytes {
                    let chunk = (PAGE_SIZE - (src + off).page_offset()).min(bytes - off);
                    micros.emit(Micro::MemcpyChunk {
                        src: src + off,
                        dst: dst + off,
                        bytes: chunk,
                    });
                    off += chunk;
                }
            }
            Op::MovePages { pages, dest } => {
                assert_eq!(pages.len(), dest.len(), "pages/dest length mismatch");
                micros.emit(Micro::MovePagesBegin);
                let n = pages.len();
                let unpatched_n = if self.kernel.config.patched_move_pages {
                    0
                } else {
                    n
                };
                for (addr, d) in pages.into_iter().zip(dest) {
                    micros.emit(Micro::MovePage {
                        addr,
                        dest: d,
                        unpatched_n,
                        retries_left: MOVE_PAGE_RETRIES,
                    });
                }
                micros.emit(Micro::MigrationShootdown);
            }
            Op::TierMigrate {
                pages,
                dest,
                transactional,
            } => {
                if pages.is_empty() {
                    return;
                }
                for vpn in pages {
                    if transactional {
                        // The begin returns copy-completion time; the
                        // commit micro then runs exactly at that time.
                        micros.emit(Micro::TierTxnBegin { vpn, dest });
                        micros.emit(Micro::TierTxnCommit {
                            vpn,
                            dest,
                            retries_left: TIER_TXN_RETRIES,
                        });
                    } else {
                        micros.emit(Micro::TierStwPage { vpn, dest });
                    }
                }
                micros.emit(Micro::MigrationShootdown);
            }
            Op::MigratePages { from, to } => {
                assert!(
                    !from.is_empty() && from.len() == to.len(),
                    "from/to node sets mismatch"
                );
                micros.emit(Micro::MigratePagesBegin);
                // The ordered address-space walk (§4.2). The node sets are
                // parked on the thread, not cloned into every micro.
                for vpn in self.space.page_table.sorted_vpns() {
                    micros.emit(Micro::MigratePage {
                        vpn,
                        retries_left: MOVE_PAGE_RETRIES,
                    });
                }
                micros.emit(Micro::MigrationShootdown);
                state.migrate_args = Some((from, to));
            }
            Op::NodeOffline { node } => {
                micros.emit(Micro::NodeOfflineBegin { node });
                // Snapshot the node's residents at expansion time — the
                // ordered walk of memory hot-remove. A page that lands on
                // the node after the snapshot (before the offline mark
                // executes) is simply left behind; Linux's offline loop
                // has the same window and re-scans, which the caller can
                // model by issuing the op again.
                for vpn in self.space.page_table.sorted_vpns() {
                    if let Some(pte) = self.space.page_table.get(vpn) {
                        if self.frames.node_of(pte.frame) == node {
                            micros.emit(Micro::EvacuatePage {
                                vpn,
                                node,
                                retries_left: MOVE_PAGE_RETRIES,
                            });
                        }
                    }
                }
                micros.emit(Micro::MigrationShootdown);
            }
            other => micros.push_whole(other),
        }
        state.micro.end_expand();
    }

    /// Account a transiently failed per-page migration (`EBUSY` status or
    /// aborted tier transaction). With retries left, count the retry and
    /// return `true` — the caller re-queues the micro with one fewer
    /// attempt. Otherwise count the give-up: the page stays where it is
    /// and the syscall reports the failure in its per-page status.
    /// The retry-livelock watchdog can veto a retry that would otherwise
    /// be granted: when the kernel-wide progress counters have not moved
    /// for a full watchdog window despite continuous retrying, further
    /// retries are refused and the page degrades immediately.
    fn note_transient_failure(&mut self, now: SimTime, page: u64, retries_left: u32) -> bool {
        if retries_left > 0 && self.kernel.watchdog_allow_retry(now) {
            self.kernel.counters.bump(Counter::MigrationRetries);
            self.trace.record(
                now,
                TraceEventKind::MigrationRetry {
                    page,
                    attempts_left: retries_left,
                },
            );
            true
        } else {
            self.kernel.counters.bump(Counter::MigrationsGaveUp);
            self.trace.record(
                now,
                TraceEventKind::MigrationDegraded {
                    page,
                    reason: if retries_left > 0 {
                        "watchdog"
                    } else {
                        "retries_exhausted"
                    },
                },
            );
            false
        }
    }

    /// Execute one micro-op, returning its completion time. `state` is the
    /// executing thread: a micro may consume its follow-up from the micro
    /// queue (a failed tier begin drops its paired commit), queue new work
    /// at the front (an aborted commit re-queues a retry pair), or read
    /// the thread's parked `migrate_args`.
    #[allow(clippy::too_many_arguments)]
    fn exec_micro(
        &mut self,
        tid: usize,
        core: CoreId,
        now: SimTime,
        micro: Micro,
        state: &mut ThreadState,
        stats: &mut RunStats,
        batch: &mut crate::access::TouchBatch,
    ) -> SimTime {
        match micro {
            Micro::Whole(i) => {
                let op = state.micro.take_whole(i);
                self.exec_whole(tid, core, now, op, stats)
            }
            Micro::MovePagesBegin => {
                let (end, b) = self.kernel.move_pages_begin(now);
                stats.breakdown.merge(&b);
                end
            }
            Micro::MovePage {
                addr,
                dest,
                unpatched_n,
                retries_left,
            } => {
                let (end, b, status) = self.kernel.move_page_step(
                    &mut self.space,
                    &mut self.frames,
                    now,
                    addr,
                    dest,
                    unpatched_n,
                );
                stats.breakdown.merge(&b);
                if status == numa_kernel::PageStatus::Busy
                    && self.note_transient_failure(end, addr.vpn(), retries_left)
                {
                    state.micro.push_front(Micro::MovePage {
                        addr,
                        dest,
                        unpatched_n,
                        retries_left: retries_left - 1,
                    });
                }
                end
            }
            Micro::MigratePagesBegin => {
                let (end, b) = self.kernel.migrate_pages_begin(now);
                stats.breakdown.merge(&b);
                end
            }
            Micro::MigratePage { vpn, retries_left } => {
                let (from, to) = state
                    .migrate_args
                    .as_ref()
                    .expect("migrate_args set when the walk was expanded");
                let (end, b, status) = self.kernel.migrate_page_step(
                    &mut self.space,
                    &mut self.frames,
                    now,
                    vpn,
                    from,
                    to,
                );
                stats.breakdown.merge(&b);
                if status == Some(numa_kernel::PageStatus::Busy)
                    && self.note_transient_failure(end, vpn, retries_left)
                {
                    state.micro.push_front(Micro::MigratePage {
                        vpn,
                        retries_left: retries_left - 1,
                    });
                }
                end
            }
            Micro::MigrationShootdown => {
                let (end, b) = self.kernel.migration_shootdown(&mut self.tlb, now, core);
                stats.breakdown.merge(&b);
                end
            }
            Micro::TierTxnBegin { vpn, dest } => {
                let mut b = Breakdown::new();
                let end = self.kernel.tier_txn_begin(
                    &mut self.space,
                    &mut self.frames,
                    now,
                    vpn,
                    dest,
                    &mut b,
                );
                stats.breakdown.merge(&b);
                match end {
                    Some(t) => t,
                    None => {
                        // Ineligible page (unmapped, already placed, bank
                        // full, ...): drop the paired commit micro.
                        if matches!(
                            state.micro.front(),
                            Some(Micro::TierTxnCommit { vpn: v, .. }) if *v == vpn
                        ) {
                            state.micro.pop_front();
                        }
                        now
                    }
                }
            }
            Micro::TierTxnCommit {
                vpn,
                dest,
                retries_left,
            } => {
                let mut b = Breakdown::new();
                let (end, outcome) = self.kernel.tier_txn_commit(
                    &mut self.space,
                    &mut self.frames,
                    now,
                    vpn,
                    &mut b,
                );
                stats.breakdown.merge(&b);
                if outcome == numa_kernel::TxnOutcome::Aborted
                    && self.note_transient_failure(end, vpn, retries_left)
                {
                    state.micro.push_front(Micro::TierTxnCommit {
                        vpn,
                        dest,
                        retries_left: retries_left - 1,
                    });
                    state.micro.push_front(Micro::TierTxnBegin { vpn, dest });
                }
                end
            }
            Micro::TierStwPage { vpn, dest } => {
                let mut b = Breakdown::new();
                let end = self
                    .kernel
                    .tier_stw_page(&mut self.space, &mut self.frames, now, vpn, dest, &mut b)
                    .unwrap_or(now);
                stats.breakdown.merge(&b);
                end
            }
            Micro::Touch {
                page_addr,
                portion,
                write,
                kind,
                fits,
            } => self.touch_page(
                tid, core, now, page_addr, portion, write, kind, fits, stats, batch,
            ),
            Micro::MemcpyChunk { src, dst, bytes } => {
                self.exec_memcpy(tid, core, now, src, dst, bytes, stats)
            }
            Micro::NodeOfflineBegin { node } => {
                self.kernel.node_offline_begin(&mut self.frames, now, node);
                now
            }
            Micro::EvacuatePage {
                vpn,
                node,
                retries_left,
            } => {
                let (end, b, status) = self.kernel.evacuate_page_step(
                    &mut self.space,
                    &mut self.frames,
                    now,
                    vpn,
                    node,
                );
                stats.breakdown.merge(&b);
                if status == Some(numa_kernel::PageStatus::Busy)
                    && self.note_transient_failure(end, vpn, retries_left)
                {
                    state.micro.push_front(Micro::EvacuatePage {
                        vpn,
                        node,
                        retries_left: retries_left - 1,
                    });
                }
                end
            }
        }
    }

    /// Execute a small op atomically.
    fn exec_whole(
        &mut self,
        tid: usize,
        core: CoreId,
        now: SimTime,
        op: Op,
        stats: &mut RunStats,
    ) -> SimTime {
        match op {
            Op::Compute { flops, efficiency } => {
                debug_assert!(efficiency > 0.0 && efficiency <= 1.0);
                let rate = self.topology().core(core).flops_per_ns() * efficiency;
                let ns = (flops as f64 / rate).round() as u64;
                stats.breakdown.add(CostComponent::Compute, ns);
                now + ns
            }
            Op::ComputeNs(ns) => {
                stats.breakdown.add(CostComponent::Compute, ns);
                now + ns
            }
            Op::MadviseNextTouch { range } => {
                let r = self
                    .kernel
                    .madvise_next_touch(&mut self.space, &mut self.tlb, now, core, range)
                    .unwrap_or_else(|e| panic!("thread {tid} madvise failed: {e}"));
                stats.breakdown.merge(&r.breakdown);
                r.end
            }
            Op::Munmap { addr } => {
                let r = self
                    .kernel
                    .munmap(
                        &mut self.space,
                        &mut self.frames,
                        &mut self.tlb,
                        now,
                        core,
                        addr,
                    )
                    .unwrap_or_else(|e| panic!("thread {tid} munmap failed: {e}"));
                stats.breakdown.merge(&r.breakdown);
                r.end
            }
            Op::Mprotect {
                range,
                prot,
                component,
            } => {
                let r = self
                    .kernel
                    .mprotect(
                        &mut self.space,
                        &mut self.tlb,
                        now,
                        core,
                        range,
                        prot,
                        component,
                    )
                    .unwrap_or_else(|e| panic!("thread {tid} mprotect failed: {e}"));
                stats.breakdown.merge(&r.breakdown);
                r.end
            }
            Op::Mbind { range, policy } => {
                let r = self
                    .kernel
                    .mbind(&mut self.space, now, range, policy)
                    .unwrap_or_else(|e| panic!("thread {tid} mbind failed: {e}"));
                stats.breakdown.merge(&r.breakdown);
                r.end
            }
            Op::NodeOnline { node } => {
                self.kernel.node_online(&mut self.frames, now, node);
                now
            }
            Op::Nop => now,
            Op::Barrier(_) => unreachable!("barriers are handled by the engine loop"),
            Op::MigrateThread { .. } => {
                unreachable!("thread migration is handled by the engine loop")
            }
            Op::Access { .. }
            | Op::AccessStrided { .. }
            | Op::Memcpy { .. }
            | Op::MovePages { .. }
            | Op::MigratePages { .. }
            | Op::TierMigrate { .. }
            | Op::NodeOffline { .. } => {
                unreachable!("multi-page ops are expanded into micro-ops")
            }
        }
    }
}

/// Queue one `Micro::Touch` per page, spreading `traffic` uniformly.
/// `pages` must equal the number of addresses `touches` yields; taking it
/// separately lets the contiguous path stream page addresses straight
/// from the range iterator instead of materialising a `Vec`.
#[allow(clippy::too_many_arguments)]
fn push_touches(
    micros: &mut MicroRuns,
    machine: &Machine,
    core: CoreId,
    pages: u64,
    touches: impl IntoIterator<Item = numa_vm::VirtAddr>,
    traffic: u64,
    write: bool,
    kind: crate::op::MemAccessKind,
) {
    let per_page = traffic / pages.max(1);
    let remainder = traffic - per_page * pages;
    let fits = machine.operand_fits_in_cache(core, pages);
    for (i, page_addr) in touches.into_iter().enumerate() {
        let portion = per_page + if (i as u64) < remainder { 1 } else { 0 };
        micros.emit(Micro::Touch {
            page_addr,
            portion,
            write,
            kind,
            fits,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemAccessKind;
    use numa_vm::{MemPolicy, VirtAddr, PAGE_SIZE};

    #[test]
    fn scripted_threads_run_to_completion() {
        let mut m = Machine::two_node();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        let threads = vec![
            ThreadSpec::scripted(
                CoreId(0),
                vec![
                    Op::read(a, PAGE_SIZE, MemAccessKind::Stream),
                    Op::ComputeNs(100),
                ],
            ),
            ThreadSpec::scripted(CoreId(2), vec![Op::ComputeNs(5000)]),
        ];
        let r = m.run(threads, &[]);
        assert_eq!(r.thread_end.len(), 2);
        assert!(r.makespan >= SimTime(5000));
        assert!(r.stats.breakdown.get(CostComponent::Compute) >= 5100);
    }

    #[test]
    fn empty_run_is_zero() {
        let mut m = Machine::two_node();
        let r = m.run(vec![], &[]);
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn barrier_synchronises_clocks() {
        let mut m = Machine::two_node();
        let threads = vec![
            ThreadSpec::scripted(
                CoreId(0),
                vec![Op::ComputeNs(100), Op::Barrier(0), Op::ComputeNs(10)],
            ),
            ThreadSpec::scripted(
                CoreId(2),
                vec![Op::ComputeNs(9000), Op::Barrier(0), Op::ComputeNs(10)],
            ),
        ];
        let r = m.run(threads, &[2]);
        // Both threads finish 10ns after the 9000ns barrier release.
        assert_eq!(r.thread_end[0], SimTime(9010));
        assert_eq!(r.thread_end[1], SimTime(9010));
        assert_eq!(r.stats.counters.get(Counter::BarriersCompleted), 1);
    }

    #[test]
    fn repeated_barrier_episodes() {
        let mut m = Machine::two_node();
        let mk = |core: u16, work: u64| {
            ThreadSpec::scripted(
                CoreId(core),
                vec![
                    Op::ComputeNs(work),
                    Op::Barrier(0),
                    Op::ComputeNs(work),
                    Op::Barrier(0),
                ],
            )
        };
        let r = m.run(vec![mk(0, 10), mk(2, 30)], &[2]);
        assert_eq!(r.stats.counters.get(Counter::BarriersCompleted), 2);
        assert_eq!(r.makespan, SimTime(60));
    }

    #[test]
    fn compute_rate_honours_core_spec() {
        let mut m = Machine::two_node();
        // 3.8 flops/ns at efficiency 1.0: 3800 flops take 1000 ns.
        let threads = vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::Compute {
                flops: 3800,
                efficiency: 1.0,
            }],
        )];
        let r = m.run(threads, &[]);
        assert_eq!(r.makespan, SimTime(1000));
    }

    #[test]
    fn generator_programs_see_context() {
        let mut m = Machine::two_node();
        let mut emitted = 0u32;
        let program: Program = Box::new(move |ctx| {
            assert_eq!(ctx.core, CoreId(2));
            if emitted < 3 {
                emitted += 1;
                Some(Op::ComputeNs(10))
            } else {
                None
            }
        });
        let r = m.run(vec![ThreadSpec::new(CoreId(2), program)], &[]);
        assert_eq!(r.makespan, SimTime(30));
    }

    #[test]
    fn tier_migrate_op_demotes_transactionally() {
        use numa_topology::NodeId;
        let mut m = Machine::tiered_4p2();
        let a = m.alloc(2 * PAGE_SIZE, MemPolicy::FirstTouch);
        let vpns: Vec<u64> = (0..2).map(|p| (a + p * PAGE_SIZE).vpn()).collect();
        let threads = vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, 2 * PAGE_SIZE, MemAccessKind::Stream),
                Op::TierMigrate {
                    pages: vpns,
                    dest: NodeId(4),
                    transactional: true,
                },
            ],
        )];
        m.run(threads, &[]);
        assert_eq!(m.page_node(a), Some(NodeId(4)));
        assert_eq!(m.page_node(a + PAGE_SIZE), Some(NodeId(4)));
        assert_eq!(m.kernel.counters.get(Counter::TierTxnCommits), 2);
        assert_eq!(m.kernel.counters.get(Counter::TierDemotions), 2);
        assert_eq!(m.kernel.counters.get(Counter::TierTxnAborts), 0);
    }

    #[test]
    fn tier_migrate_op_stw_moves_pages() {
        use numa_topology::NodeId;
        let mut m = Machine::tiered_4p2();
        let a = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
        let threads = vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, PAGE_SIZE, MemAccessKind::Stream),
                Op::TierMigrate {
                    pages: vec![a.vpn()],
                    dest: NodeId(5),
                    transactional: false,
                },
            ],
        )];
        m.run(threads, &[]);
        assert_eq!(m.page_node(a), Some(NodeId(5)));
        assert_eq!(m.kernel.counters.get(Counter::TierDemotions), 1);
    }

    #[test]
    fn concurrent_writer_aborts_txn_migration() {
        use numa_topology::NodeId;
        let mut m = Machine::tiered_4p2();
        let a = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
        // Prime the page from the writer's core so it lands on node 0.
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(a, PAGE_SIZE, MemAccessKind::Random)],
            )],
            &[],
        );
        // A writer hammers the page while another thread tries to demote
        // it transactionally: every copy is dirtied before its commit.
        let writer = ThreadSpec::scripted(
            CoreId(0),
            (0..200)
                .map(|_| Op::write(a, 64, MemAccessKind::Random))
                .collect(),
        );
        let migrator = ThreadSpec::scripted(
            CoreId(4),
            vec![Op::TierMigrate {
                pages: vec![a.vpn()],
                dest: NodeId(4),
                transactional: true,
            }],
        );
        m.run(vec![writer, migrator], &[]);
        assert!(
            m.kernel.counters.get(Counter::TierTxnAborts) >= 1,
            "a hammered page must abort at least once"
        );
        // Writers never stalled on the migration: no STW windows existed.
        assert_eq!(m.kernel.counters.get(Counter::TierStwStalls), 0);
    }

    #[test]
    fn node_offline_evacuates_and_online_restores() {
        use numa_topology::NodeId;
        let mut m = Machine::two_node();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        // Populate on node 0, then hot-remove it from a node-1 core.
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(a, 4 * PAGE_SIZE, MemAccessKind::Stream)],
            )],
            &[],
        );
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(2),
                vec![Op::NodeOffline { node: NodeId(0) }],
            )],
            &[],
        );
        for p in 0..4u64 {
            assert_eq!(m.page_node(a + p * PAGE_SIZE), Some(NodeId(1)));
        }
        assert!(m.frames.is_offline(NodeId(0)));
        assert_eq!(m.kernel.counters.get(Counter::NodesOfflined), 1);
        assert_eq!(m.kernel.counters.get(Counter::PagesEvacuated), 4);
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(2),
                vec![Op::NodeOnline { node: NodeId(0) }],
            )],
            &[],
        );
        assert!(!m.frames.is_offline(NodeId(0)));
        assert_eq!(m.kernel.counters.get(Counter::NodesOnlined), 1);
    }

    #[test]
    fn oom_kill_reaps_thread_and_run_continues() {
        use numa_kernel::{KernelConfig, PressureSettings};
        use numa_topology::NodeId;
        use std::sync::Arc;
        // Two frames per node and a strict binding that cannot fall back:
        // the third touch is a fatal OutOfMemory.
        let topo = Arc::new(numa_topology::presets::opteron_4p_with_memory(
            2 * PAGE_SIZE,
        ));
        let config = KernelConfig {
            pressure: PressureSettings {
                oom_kill: true,
                ..PressureSettings::default()
            },
            ..KernelConfig::default()
        };
        let mut m = Machine::new(topo, config);
        let a = m.alloc(3 * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
        let victim = ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, 3 * PAGE_SIZE, MemAccessKind::Stream),
                Op::ComputeNs(1_000_000),
            ],
        );
        let survivor = ThreadSpec::scripted(CoreId(4), vec![Op::ComputeNs(500)]);
        let r = m.run(vec![victim, survivor], &[]);
        assert_eq!(m.kernel.counters.get(Counter::OomKills), 1);
        // The victim died at the fatal fault: its trailing compute op
        // never ran, while the survivor finished normally.
        assert!(r.thread_end[0] < SimTime(1_000_000));
        assert!(r.thread_end[1] >= SimTime(500));
        assert!(!m.oom_kill_pending, "engine must clear the kill flag");
    }

    #[test]
    fn syscall_op_moves_pages() {
        use numa_topology::NodeId;
        let mut m = Machine::two_node();
        let a = m.alloc(2 * PAGE_SIZE, MemPolicy::FirstTouch);
        let pages: Vec<VirtAddr> = (0..2).map(|p| a + p * PAGE_SIZE).collect();
        let threads = vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, 2 * PAGE_SIZE, MemAccessKind::Stream),
                Op::MovePages {
                    pages: pages.clone(),
                    dest: vec![NodeId(1); 2],
                },
            ],
        )];
        m.run(threads, &[]);
        assert_eq!(m.page_node(a), Some(NodeId(1)));
        assert_eq!(m.page_node(a + PAGE_SIZE), Some(NodeId(1)));
    }
}
