//! Memory-access execution: translation, fault handling, signal delivery,
//! cache lookup and cost charging.

use crate::engine::RunStats;
use crate::op::MemAccessKind;
use crate::Machine;
use numa_kernel::FaultResolution;
use numa_sim::{SimTime, TraceEventKind};
use numa_stats::{CostComponent, Counter};
use numa_topology::{CoreId, NodeId};
use numa_vm::{PageRange, VirtAddr, PAGE_SIZE};

/// Upper bound on fault-retry loops per touch; exceeding it means the
/// fault handler is not making progress (a runtime bug, loudly reported).
const MAX_FAULT_RETRIES: u32 = 8;

/// Batched per-touch statistics (DESIGN.md §13).
///
/// The touch loop charges the same handful of stats on every page — the
/// `MemoryAccess` breakdown add plus cache-hit/miss and local/remote
/// counters. Accumulating them in this plain-integer scratch and flushing
/// once per scheduling quantum keeps those read-modify-writes out of the
/// per-page path. Totals are unchanged because every charge is additive;
/// traced runs flush after every micro so the engine's span diffs still
/// see per-micro deltas (the flush points are the engine's contract).
/// Rare charges (faults, tiering stalls, replica syncs) keep writing to
/// `RunStats` directly — batching them would buy nothing.
#[derive(Default)]
pub(crate) struct TouchBatch {
    mem_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
    local: u64,
    remote: u64,
}

impl TouchBatch {
    /// Drain the accumulated charges into `stats`.
    pub(crate) fn flush(&mut self, stats: &mut RunStats) {
        if self.mem_ns > 0 {
            stats
                .breakdown
                .add(CostComponent::MemoryAccess, self.mem_ns);
            self.mem_ns = 0;
        }
        if self.cache_hits > 0 {
            stats.counters.add(Counter::CacheHits, self.cache_hits);
            self.cache_hits = 0;
        }
        if self.cache_misses > 0 {
            stats.counters.add(Counter::CacheMisses, self.cache_misses);
            self.cache_misses = 0;
        }
        if self.local > 0 {
            stats.counters.add(Counter::LocalAccesses, self.local);
            self.local = 0;
        }
        if self.remote > 0 {
            stats.counters.add(Counter::RemoteAccesses, self.remote);
            self.remote = 0;
        }
    }
}

impl Machine {
    /// Resolve the page-table vpn that backs `addr` (huge mappings are
    /// keyed by their head page).
    pub fn resolve_vpn(&self, addr: VirtAddr) -> u64 {
        // All-4kB address spaces (every run without the huge-page
        // extension) resolve without walking the VMA tree.
        if !self.space.has_huge_vmas() {
            return addr.vpn();
        }
        match self.space.find_vma(addr) {
            Some(vma) if vma.huge => {
                let rel = addr.vpn() - vma.range.start_vpn;
                vma.range.start_vpn + rel / numa_vm::PAGES_PER_HUGE * numa_vm::PAGES_PER_HUGE
            }
            _ => addr.vpn(),
        }
    }

    /// Make sure `addr` is mapped with sufficient permission, taking
    /// faults (and delivering SIGSEGV to the registered handler) as
    /// needed. Returns the time after fault processing and the node now
    /// holding the page.
    pub(crate) fn ensure_mapped(
        &mut self,
        tid: usize,
        core: CoreId,
        mut now: SimTime,
        addr: VirtAddr,
        write: bool,
        stats: &mut RunStats,
    ) -> (SimTime, NodeId) {
        // Attribute kernel-recorded trace events (faults, locks, TLB
        // shootdowns) to the faulting thread.
        self.trace.set_thread(tid);
        for _ in 0..MAX_FAULT_RETRIES {
            // A nested fault (e.g. inside a next-touch signal handler)
            // already OOM-killed this thread: unwind without touching
            // anything further; the engine reaps the thread after the
            // current micro.
            if self.oom_kill_pending {
                return (now, self.topo.node_of_core(core));
            }
            let vpn = self.resolve_vpn(addr);
            if let Some(pte) = self.space.page_table.get(vpn) {
                if pte.permits(write) {
                    return (now, self.frames.node_of(pte.frame));
                }
            }
            match self.kernel.handle_fault(
                &mut self.space,
                &mut self.frames,
                &mut self.tlb,
                now,
                core,
                addr,
                write,
                &mut stats.breakdown,
            ) {
                FaultResolution::Resolved { end, .. } => {
                    // The kernel fault path records the typed PageFault
                    // trace event itself and charged its costs to
                    // `stats.breakdown` directly.
                    now = end;
                }
                FaultResolution::Segv { end } => {
                    let sigsegv_deliver_ns = self.topology().cost().sigsegv_deliver_ns;
                    now = end + sigsegv_deliver_ns;
                    stats
                        .breakdown
                        .add(CostComponent::PageFaultSignal, sigsegv_deliver_ns);
                    let mut handler = self.segv_handler.take().unwrap_or_else(|| {
                        panic!(
                            "thread {tid} took SIGSEGV at {addr} with no handler registered \
                             (a protected page was touched outside any next-touch run)"
                        )
                    });
                    now = handler.on_segv(self, tid, core, addr, now, stats);
                    self.segv_handler = Some(handler);
                }
                FaultResolution::Fatal(e) => {
                    if self.kernel.config.pressure.oom_kill
                        && matches!(e, numa_vm::VmError::OutOfMemory)
                    {
                        // Deterministic kill policy: the allocating thread
                        // is the victim (Linux `oom_kill_allocating_task`),
                        // so runs never depend on a heuristic badness scan.
                        let node = self.topo.node_of_core(core);
                        self.kernel.counters.bump(Counter::OomKills);
                        self.trace
                            .record(now, TraceEventKind::OomKill { node: node.0 });
                        self.oom_kill_pending = true;
                        return (now, node);
                    }
                    panic!("thread {tid} fatal memory fault at {addr}: {e}");
                }
            }
        }
        panic!(
            "thread {tid} fault at {addr} did not resolve after {MAX_FAULT_RETRIES} retries \
             (handler restored protection without fixing access?)"
        );
    }

    /// Execute an access atomically: touch every page of
    /// `[addr, addr+bytes)`, charging `traffic` bytes of DRAM movement
    /// spread uniformly over the pages.
    ///
    /// This is the single-threaded convenience path (tools, tests,
    /// signal handlers); engine-run threads expand accesses into per-page
    /// micro-ops instead so concurrent threads interleave correctly.
    #[allow(clippy::too_many_arguments)]
    pub fn exec_access(
        &mut self,
        tid: usize,
        core: CoreId,
        now: SimTime,
        addr: VirtAddr,
        bytes: u64,
        traffic: u64,
        write: bool,
        kind: MemAccessKind,
        stats: &mut RunStats,
    ) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let touches = build_touches(addr, bytes);
        self.exec_access_touches(tid, core, now, &touches, traffic, write, kind, stats)
    }

    /// Strided variant of [`Machine::exec_access`]: touch `count`
    /// segments of `seg_bytes` every `stride` bytes, visiting each
    /// distinct page once. Atomic; see [`Machine::exec_access`].
    #[allow(clippy::too_many_arguments)]
    pub fn exec_access_strided(
        &mut self,
        tid: usize,
        core: CoreId,
        now: SimTime,
        base: VirtAddr,
        seg_bytes: u64,
        stride: u64,
        count: u64,
        traffic: u64,
        write: bool,
        kind: MemAccessKind,
        stats: &mut RunStats,
    ) -> SimTime {
        if seg_bytes == 0 || count == 0 {
            return now;
        }
        let touches = build_strided_touches(base, seg_bytes, stride, count);
        self.exec_access_touches(tid, core, now, &touches, traffic, write, kind, stats)
    }

    /// Shared core of the *atomic* access paths: fault in and charge each
    /// touched page sequentially. Multi-threaded runs go through the
    /// engine's micro-op expansion instead, which interleaves page touches
    /// of different threads in virtual-time order.
    #[allow(clippy::too_many_arguments)]
    fn exec_access_touches(
        &mut self,
        tid: usize,
        core: CoreId,
        mut now: SimTime,
        touches: &[VirtAddr],
        traffic: u64,
        write: bool,
        kind: MemAccessKind,
        stats: &mut RunStats,
    ) -> SimTime {
        let pages = touches.len() as u64;
        let per_page = traffic / pages.max(1);
        let remainder = traffic - per_page * pages;
        let fits = self.operand_fits_in_cache(core, pages);
        let mut batch = TouchBatch::default();
        for (i, page_addr) in touches.iter().copied().enumerate() {
            let portion = per_page + if (i as u64) < remainder { 1 } else { 0 };
            now = self.touch_page(
                tid, core, now, page_addr, portion, write, kind, fits, stats, &mut batch,
            );
            if self.oom_kill_pending {
                break;
            }
        }
        batch.flush(stats);
        now
    }

    /// Does an operand of `pages` pages fit in the per-core share of the
    /// accessing core's L3? If so, only one fill pass per page goes to
    /// DRAM; the remaining charged traffic is cache reuse served at L3
    /// bandwidth. This is the mechanism behind the paper's 512 threshold
    /// (Fig. 8): a 512x512-double operand (2 MB) is the first size to
    /// overflow the shared L3, suddenly exposing DRAM and NUMA costs for
    /// *all* of its reuse traffic.
    pub(crate) fn operand_fits_in_cache(&self, core: CoreId, pages: u64) -> bool {
        let topo = self.topology();
        let core_node = topo.node_of_core(core);
        let cores_on_node = topo.core_count_of_node(core_node).max(1) as u64;
        let l3_share = topo.node(core_node).l3_bytes / cores_on_node;
        pages * PAGE_SIZE <= l3_share
    }

    /// Touch one page: resolve faults, then charge `portion` bytes of
    /// traffic through the cache/DRAM/interconnect model. The engine's
    /// per-page micro-op executor. The common-case charges land in
    /// `batch`; the caller flushes it into `stats` at its quantum
    /// boundary (see [`TouchBatch`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn touch_page(
        &mut self,
        tid: usize,
        core: CoreId,
        now: SimTime,
        page_addr: VirtAddr,
        portion: u64,
        write: bool,
        kind: MemAccessKind,
        fits_in_cache: bool,
        stats: &mut RunStats,
        batch: &mut TouchBatch,
    ) -> SimTime {
        // Field borrows of `self.topo`, never an Arc clone: this runs
        // once per touched page, and the refcount round-trip was
        // measurable across the multi-million-touch sweeps.
        let core_node = self.topo.node_of_core(core);
        let vpn = page_addr.vpn();

        let (mut now, mut home) = self.ensure_mapped(tid, core, now, page_addr, write, stats);
        if self.oom_kill_pending {
            // The fault OOM-killed this thread: nothing got mapped, so
            // charge nothing and let the engine reap it.
            return now;
        }

        // Tiering hooks: stall behind stop-the-world migration windows,
        // track write generations (what transactional commits re-check),
        // count shadow-state hits, and sample per-page heat for the
        // promotion daemon. All gated on the config so single-tier
        // machines pay nothing.
        if self.kernel.config.tiering {
            let tvpn = self.resolve_vpn(page_addr);
            if let Some(stall_end) = self.kernel.tier_stw_stall_end(tvpn, now) {
                stats.counters.bump(Counter::TierStwStalls);
                stats
                    .breakdown
                    .add(CostComponent::LockWait, stall_end.since(now));
                now = stall_end;
            }
            if let Some(pte) = self.space.page_table.get(tvpn) {
                if pte.has_shadow() {
                    stats.counters.bump(Counter::TierShadowHits);
                }
                if write {
                    self.frames.note_write(pte.frame);
                }
            }
            *self.heat.entry(tvpn).or_insert(0) += 1;
        }

        // Reads may be served by a closer replica (extension). Gated on
        // the table being non-empty at all so unreplicated runs pay one
        // branch here, not an address resolution plus a map probe.
        if !write && self.kernel.has_any_replicas() {
            if let Some((node, _)) = self
                .kernel
                .nearest_replica(self.resolve_vpn(page_addr), core_node)
            {
                home = node;
            }
        }
        if portion == 0 {
            return now;
        }

        let start = now;
        now = self.charge_pt_walk(core_node, now, kind, stats);
        if self.caches[core_node.index()].touch(vpn) {
            // Served from the node's shared L3.
            batch.cache_hits += 1;
            now += (portion as f64 / self.topo.cost().l3_bw).round() as u64;
        } else {
            batch.cache_misses += 1;
            // Split the charged traffic into the DRAM part (the fill,
            // plus all reuse when the operand cannot stay resident) and
            // the L3-served reuse part.
            let dram_bytes = if fits_in_cache {
                portion.min(PAGE_SIZE)
            } else {
                portion
            };
            let l3_bytes = portion - dram_bytes;
            let cost = self.topo.cost();
            let factor = self.topo.numa_factor(core_node, home);
            let lines = dram_bytes.div_ceil(cost.cache_line).max(1);
            let exposure = match kind {
                MemAccessKind::Stream => cost.stream_latency_exposure,
                MemAccessKind::Blocked => cost.blocked_latency_exposure,
                MemAccessKind::Random => cost.random_latency_exposure,
            };
            // Slow-tier banks serve lines at a latency multiple and a
            // bandwidth fraction of DRAM (CXL-class fabric).
            let tier = self.topo.tier_of(home);
            let tier_lat = cost.tier_latency_mult(tier);
            let tier_bw = cost.tier_bw_mult(tier);
            let latency_ns =
                (lines as f64 * cost.dram_latency_ns * exposure * factor * tier_lat).round() as u64;
            let bw_ns = (dram_bytes as f64 / (cost.core_mem_bw * tier_bw) * factor).round() as u64;
            let l3_bw = cost.l3_bw;
            let xfer = self.kernel.interconnect.access(
                &self.topo,
                now,
                core_node,
                home,
                dram_bytes,
                latency_ns + bw_ns,
            );
            now = xfer.end;
            now += (l3_bytes as f64 / l3_bw).round() as u64;
            if home == core_node {
                batch.local += 1;
            } else {
                batch.remote += 1;
            }
        }
        batch.mem_ns += now.since(start);
        now
    }

    /// Charge the expected page-walk cost of one page touch under the
    /// ptplace model: TLB-miss probability (by access pattern) times the
    /// walk latency from the touching core's node to the page table's
    /// home. With placement unset this is a single branch and no cost —
    /// existing runs stay byte-identical. Replicated tables walk locally;
    /// a lazy replica reconciles (and is charged for it) on the first
    /// walk from a node holding stale ranges.
    fn charge_pt_walk(
        &mut self,
        core_node: NodeId,
        now: SimTime,
        kind: MemAccessKind,
        stats: &mut RunStats,
    ) -> SimTime {
        let Some(placement) = self.space.pt_placement() else {
            return now;
        };
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut now = now;
        let pt_home = match placement {
            numa_vm::PtPlacement::SingleHome(node) => node,
            numa_vm::PtPlacement::Replicated => {
                if self.space.pt_node_is_stale(core_node) {
                    stats.counters.bump(Counter::PtReplicaStaleHits);
                    let written = self.space.pt_sync_node(core_node);
                    if written > 0 {
                        let dur = cost.pt_replica_sync_ns(written);
                        stats.counters.bump(Counter::PtReplicaSyncs);
                        self.trace.record(
                            now,
                            TraceEventKind::PtReplicaSync {
                                entries: written,
                                dur_ns: dur,
                            },
                        );
                        now += dur;
                    }
                }
                core_node
            }
        };
        let hops = topo.hops(core_node, pt_home);
        let miss = match kind {
            MemAccessKind::Stream => cost.tlb_miss_rate_stream,
            MemAccessKind::Blocked => cost.tlb_miss_rate_blocked,
            MemAccessKind::Random => cost.tlb_miss_rate_random,
        };
        let walk = (miss * cost.pt_walk_ns(hops)).round() as u64;
        if hops > 0 && walk > 0 {
            stats.counters.bump(Counter::PtWalksRemote);
        }
        now + walk
    }

    /// Execute an `Op::Memcpy`: a user-space SSE-class copy between two
    /// simulated buffers (the paper's Fig. 4 baseline).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_memcpy(
        &mut self,
        tid: usize,
        core: CoreId,
        mut now: SimTime,
        src: VirtAddr,
        dst: VirtAddr,
        bytes: u64,
        stats: &mut RunStats,
    ) -> SimTime {
        let topo = self.topology().clone();
        let cost = topo.cost();
        let mut off = 0u64;
        while off < bytes {
            let chunk = (PAGE_SIZE - (src + off).page_offset()).min(bytes - off);
            let (t1, src_node) = self.ensure_mapped(tid, core, now, src + off, false, stats);
            let (t2, dst_node) = self.ensure_mapped(tid, core, t1, dst + off, true, stats);
            now = t2;
            if self.oom_kill_pending {
                return now;
            }
            let start = now;
            let xfer = self.kernel.interconnect.transfer(
                &topo,
                now,
                src_node,
                dst_node,
                chunk,
                cost.user_copy_bw,
            );
            now = xfer.end;
            stats
                .breakdown
                .add(CostComponent::MemoryAccess, now.since(start));
            off += chunk;
        }
        now
    }
}

/// The distinct page-touch addresses of a contiguous access, streamed
/// without materialising a `Vec` (the engine's expansion hot path).
pub(crate) fn touch_iter(addr: VirtAddr, bytes: u64) -> impl Iterator<Item = VirtAddr> {
    PageRange::covering(addr, bytes)
        .iter()
        .map(move |vpn| VirtAddr::from_vpn(vpn).max_addr(addr))
}

/// The distinct page-touch addresses of a contiguous access.
pub(crate) fn build_touches(addr: VirtAddr, bytes: u64) -> Vec<VirtAddr> {
    touch_iter(addr, bytes).collect()
}

/// The distinct page-touch addresses of a strided access, preserving
/// first-touch order (consecutive segments often share a page).
pub(crate) fn build_strided_touches(
    base: VirtAddr,
    seg_bytes: u64,
    stride: u64,
    count: u64,
) -> Vec<VirtAddr> {
    let mut touches: Vec<VirtAddr> = Vec::new();
    let mut last_vpn = u64::MAX;
    for s in 0..count {
        let seg_start = base + s * stride;
        for vpn in PageRange::covering(seg_start, seg_bytes).iter() {
            if vpn != last_vpn {
                last_vpn = vpn;
                touches.push(VirtAddr::from_vpn(vpn).max_addr(seg_start));
            }
        }
    }
    touches
}

/// Small helper: clamp a page's base address so the first touched byte of
/// the first page is the caller's `addr` (faults must hit the exact
/// address the program touches, not the page base below a mapping).
trait MaxAddr {
    fn max_addr(self, other: VirtAddr) -> VirtAddr;
}

impl MaxAddr for VirtAddr {
    fn max_addr(self, other: VirtAddr) -> VirtAddr {
        if other.raw() > self.raw() {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunStats;
    use numa_vm::MemPolicy;

    #[test]
    fn access_populates_and_charges() {
        let mut m = Machine::two_node();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        let mut stats = RunStats::default();
        let end = m.exec_access(
            0,
            CoreId(0),
            SimTime::ZERO,
            a,
            4 * PAGE_SIZE,
            4 * PAGE_SIZE,
            true,
            MemAccessKind::Stream,
            &mut stats,
        );
        assert!(end > SimTime::ZERO);
        assert_eq!(m.page_node(a), Some(NodeId(0)));
        assert!(stats.breakdown.get(CostComponent::MemoryAccess) > 0);
        assert_eq!(stats.counters.get(Counter::CacheMisses), 4);
    }

    #[test]
    fn second_pass_hits_cache_and_is_cheaper() {
        let mut m = Machine::two_node();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        let mut stats = RunStats::default();
        let t1 = m.exec_access(
            0,
            CoreId(0),
            SimTime::ZERO,
            a,
            4 * PAGE_SIZE,
            4 * PAGE_SIZE,
            false,
            MemAccessKind::Stream,
            &mut stats,
        );
        let t2 = m.exec_access(
            0,
            CoreId(0),
            t1,
            a,
            4 * PAGE_SIZE,
            4 * PAGE_SIZE,
            false,
            MemAccessKind::Stream,
            &mut stats,
        );
        assert!(t2.since(t1) < t1.since(SimTime::ZERO));
        assert_eq!(stats.counters.get(Counter::CacheHits), 4);
    }

    #[test]
    fn remote_access_slower_than_local() {
        let mut m = Machine::two_node();
        let a = m.alloc(PAGE_SIZE, MemPolicy::Bind(NodeId(1)));
        let b = m.alloc(PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
        let mut stats = RunStats::default();
        // Populate both from core 0 (node 0); policies pin the frames.
        let t = m.exec_access(
            0,
            CoreId(0),
            SimTime::ZERO,
            a,
            8,
            8,
            true,
            MemAccessKind::Blocked,
            &mut stats,
        );
        let t = m.exec_access(
            0,
            CoreId(0),
            t,
            b,
            8,
            8,
            true,
            MemAccessKind::Blocked,
            &mut stats,
        );
        m.flush_caches();
        // Timed, cold accesses.
        let t1 = m.exec_access(
            0,
            CoreId(0),
            t,
            a,
            8,
            PAGE_SIZE,
            false,
            MemAccessKind::Blocked,
            &mut stats,
        );
        let remote_ns = t1.since(t);
        m.flush_caches();
        let t2 = m.exec_access(
            0,
            CoreId(0),
            t1,
            b,
            8,
            PAGE_SIZE,
            false,
            MemAccessKind::Blocked,
            &mut stats,
        );
        let local_ns = t2.since(t1);
        assert!(
            remote_ns > local_ns,
            "remote {remote_ns} must exceed local {local_ns}"
        );
        let ratio = remote_ns as f64 / local_ns as f64;
        assert!((1.1..1.6).contains(&ratio), "NUMA factor band, got {ratio}");
    }

    #[test]
    fn memcpy_between_nodes_populates_both_sides() {
        let mut m = Machine::two_node();
        let src = m.alloc(2 * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
        let dst = m.alloc(2 * PAGE_SIZE, MemPolicy::Bind(NodeId(1)));
        let mut stats = RunStats::default();
        let end = m.exec_memcpy(
            0,
            CoreId(0),
            SimTime::ZERO,
            src,
            dst,
            2 * PAGE_SIZE,
            &mut stats,
        );
        assert!(end > SimTime::ZERO);
        assert_eq!(m.page_node(src), Some(NodeId(0)));
        assert_eq!(m.page_node(dst), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "no handler registered")]
    fn segv_without_handler_panics() {
        use numa_stats::CostComponent;
        use numa_vm::Protection;
        let mut m = Machine::two_node();
        let a = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
        let mut stats = RunStats::default();
        let t = m.exec_access(
            0,
            CoreId(0),
            SimTime::ZERO,
            a,
            8,
            8,
            true,
            MemAccessKind::Stream,
            &mut stats,
        );
        let range = PageRange::new(a.vpn(), a.vpn() + 1);
        m.kernel
            .mprotect(
                &mut m.space,
                &mut m.tlb,
                t,
                CoreId(0),
                range,
                Protection::None,
                CostComponent::MprotectMark,
            )
            .unwrap();
        m.exec_access(
            0,
            CoreId(0),
            t,
            a,
            8,
            8,
            false,
            MemAccessKind::Stream,
            &mut stats,
        );
    }
}
