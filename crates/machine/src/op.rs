//! The op ISA simulated threads execute.

use numa_stats::CostComponent;
use numa_topology::NodeId;
use numa_vm::{MemPolicy, PageRange, Protection, VirtAddr};

/// How an access pattern exposes DRAM latency.
///
/// The distinction carries the paper's §4.5 observation: BLAS1-style
/// streaming is prefetch-friendly ("the processor cache hides the remote
/// access latency"), blocked BLAS3 traffic is partially latency-bound, and
/// dependent pointer chasing pays full latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// Sequential streaming (hardware prefetch hides most latency).
    Stream,
    /// Blocked/tiled traffic (partial latency exposure).
    Blocked,
    /// Dependent random access (full latency exposure).
    Random,
}

/// One step of a simulated thread.
#[derive(Debug, Clone)]
pub enum Op {
    /// Pure computation: `flops` at the core's peak rate scaled by
    /// `efficiency` (0 < efficiency <= 1).
    Compute {
        /// Floating-point operations to retire.
        flops: u64,
        /// Fraction of peak the kernel class achieves.
        efficiency: f64,
    },
    /// Busy time that is not memory or flops (claim loops, bookkeeping).
    ComputeNs(u64),
    /// Touch `bytes` of memory starting at `addr`, charging `traffic`
    /// bytes of DRAM movement spread uniformly across the touched pages.
    ///
    /// `traffic == bytes` models a single pass; a blocked GEMM that sweeps
    /// a tile many times sets `traffic` to its true byte volume so the
    /// bandwidth pressure (and NUMA penalty) is honest while faults are
    /// still taken per page.
    Access {
        /// First byte touched.
        addr: VirtAddr,
        /// Extent of the touched region.
        bytes: u64,
        /// Total DRAM traffic to charge across the region.
        traffic: u64,
        /// Store (true) or load (false).
        write: bool,
        /// Latency-exposure class.
        kind: MemAccessKind,
    },
    /// Touch `count` segments of `seg_bytes` each, `stride` bytes apart,
    /// starting at `base` — the access pattern of a matrix *tile* inside a
    /// column-major matrix (each block column is one segment). `traffic`
    /// bytes of DRAM movement are spread uniformly over the touched pages.
    ///
    /// This is what makes the paper's Table-1 sub-page effect reproducible:
    /// with blocks smaller than 512×512 doubles, one 4 kB page holds
    /// segments of *several* blocks, so next-touch migrations drag
    /// neighbouring blocks' rows along (§4.5).
    AccessStrided {
        /// First byte of the first segment.
        base: VirtAddr,
        /// Bytes per segment.
        seg_bytes: u64,
        /// Distance between segment starts.
        stride: u64,
        /// Number of segments.
        count: u64,
        /// Total DRAM traffic to charge across the touched pages.
        traffic: u64,
        /// Store (true) or load (false).
        write: bool,
        /// Latency-exposure class.
        kind: MemAccessKind,
    },
    /// User-space `memcpy` between two simulated buffers (Fig. 4's
    /// baseline curve): SSE-class copy bandwidth, page faults taken on
    /// both sides as needed.
    Memcpy {
        /// Source base.
        src: VirtAddr,
        /// Destination base.
        dst: VirtAddr,
        /// Bytes to copy.
        bytes: u64,
    },
    /// `move_pages(2)`.
    MovePages {
        /// Pages to migrate.
        pages: Vec<VirtAddr>,
        /// Destination per page.
        dest: Vec<NodeId>,
    },
    /// `migrate_pages(2)`.
    MigratePages {
        /// Source node set.
        from: Vec<NodeId>,
        /// Destination node set.
        to: Vec<NodeId>,
    },
    /// Tier migration of a page set to `dest` — a promotion into DRAM or
    /// a demotion into the slow tier, issued by the tiering daemon.
    ///
    /// `transactional` selects the Nomad-style non-exclusive copy (copy
    /// without unmapping, write-generation recheck at commit, abort and
    /// retry on concurrent writes); otherwise each page migrates
    /// stop-the-world and concurrent touches stall on the window.
    TierMigrate {
        /// Virtual page numbers to move.
        pages: Vec<u64>,
        /// Destination node (its tier decides promotion vs demotion).
        dest: NodeId,
        /// Transactional vs stop-the-world mechanism.
        transactional: bool,
    },
    /// `madvise(MADV_MIGRATE_NEXT_TOUCH)`.
    MadviseNextTouch {
        /// Pages to mark.
        range: PageRange,
    },
    /// `mprotect(2)`, attributed to `component` in the cost breakdown.
    Mprotect {
        /// Pages to re-protect.
        range: PageRange,
        /// New protection.
        prot: Protection,
        /// Breakdown attribution (mark vs restore).
        component: CostComponent,
    },
    /// `munmap(2)` of the whole mapping starting at `addr`: tear down the
    /// VMA, return its frames to the allocator, flush stale translations.
    /// Tenant-churn workloads use this so departed generations recycle
    /// their memory back into the shared pool.
    Munmap {
        /// Base address of the mapping to remove (must equal a VMA start).
        addr: VirtAddr,
    },
    /// `mbind(2)`.
    Mbind {
        /// Pages whose VMA policy changes.
        range: PageRange,
        /// The new policy.
        policy: MemPolicy,
    },
    /// Move the executing thread to another core (scheduler migration).
    /// Under the ptplace model a single-home page table that was
    /// co-located with the thread follows it (numaPTE-style PT
    /// migration), paying the PT copy plus a batched TLB shootdown.
    MigrateThread {
        /// Destination core.
        to: numa_topology::CoreId,
    },
    /// Take `node` offline: mark it unallocatable and evacuate every
    /// resident page to the nearest online node with room (Linux memory
    /// hot-remove). Expands into one evacuation micro-op per resident
    /// page so concurrent threads interleave with the drain; pages whose
    /// evacuation fails permanently are accounted as degraded and left in
    /// place (partial-failure semantics, like a `migrate_pages` that runs
    /// out of memory).
    NodeOffline {
        /// Node to drain and mark offline.
        node: NodeId,
    },
    /// Bring a previously offlined `node` back online (memory hot-add).
    /// Pages are not moved back — the node simply becomes allocatable.
    NodeOnline {
        /// Node to mark allocatable again.
        node: NodeId,
    },
    /// Arrive at barrier `id` (sized by
    /// the barrier sizes passed to [`crate::Machine::run`]).
    Barrier(usize),
    /// Do nothing (placeholder emitted by empty loop bodies).
    Nop,
}

impl Op {
    /// Stable short name for tracing (`OpStart`/`OpEnd` events).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Compute { .. } => "compute",
            Op::ComputeNs(_) => "compute_ns",
            Op::Access { .. } => "access",
            Op::AccessStrided { .. } => "access_strided",
            Op::Memcpy { .. } => "memcpy",
            Op::MovePages { .. } => "move_pages",
            Op::MigratePages { .. } => "migrate_pages",
            Op::TierMigrate { .. } => "tier_migrate",
            Op::MadviseNextTouch { .. } => "madvise_next_touch",
            Op::Mprotect { .. } => "mprotect",
            Op::Munmap { .. } => "munmap",
            Op::Mbind { .. } => "mbind",
            Op::MigrateThread { .. } => "migrate_thread",
            Op::NodeOffline { .. } => "node_offline",
            Op::NodeOnline { .. } => "node_online",
            Op::Barrier(_) => "barrier",
            Op::Nop => "nop",
        }
    }

    /// A one-pass read over `[addr, addr+bytes)`.
    pub fn read(addr: VirtAddr, bytes: u64, kind: MemAccessKind) -> Op {
        Op::Access {
            addr,
            bytes,
            traffic: bytes,
            write: false,
            kind,
        }
    }

    /// A one-pass write over `[addr, addr+bytes)`.
    pub fn write(addr: VirtAddr, bytes: u64, kind: MemAccessKind) -> Op {
        Op::Access {
            addr,
            bytes,
            traffic: bytes,
            write: true,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_helpers_single_pass() {
        let a = VirtAddr(0x1000);
        match Op::read(a, 64, MemAccessKind::Stream) {
            Op::Access {
                bytes,
                traffic,
                write,
                ..
            } => {
                assert_eq!(bytes, 64);
                assert_eq!(traffic, 64);
                assert!(!write);
            }
            _ => unreachable!(),
        }
        match Op::write(a, 64, MemAccessKind::Blocked) {
            Op::Access { write, .. } => assert!(write),
            _ => unreachable!(),
        }
    }
}
