//! The machine composition layer.
//!
//! A [`Machine`] assembles the whole simulated host: topology, virtual
//! memory, kernel, per-node last-level caches, and the discrete-event
//! thread engine. Simulated threads are op generators (closures yielding
//! [`Op`]s); the engine executes them in virtual-time order, taking page
//! faults through the kernel, delivering SIGSEGV to a registered
//! [`SegvHandler`] (the user-space next-touch library), and charging every
//! nanosecond to the run's [`RunStats`].
//!
//! The engine runs on a single host thread — determinism is a correctness
//! requirement for regenerating the paper's tables (DESIGN.md §7).
//! Concurrency *inside the simulation* is expressed through virtual time
//! and the contended resources of `numa-kernel`.

pub mod access;
pub mod cache;
pub mod engine;
pub mod op;
pub mod shard;

pub use engine::{EngineRun, Program, RunResult, RunStats, ThreadSpec};
pub use op::{MemAccessKind, Op};
pub use shard::{run_sharded, LedgerConfig, ShardConfig, ShardedRunResult, TenantRun};

use numa_kernel::{Kernel, KernelConfig};
use numa_sim::{SimTime, Trace};
use numa_topology::{CoreId, NodeId, Topology};
use numa_vm::{AddressSpace, FrameAllocator, MemPolicy, Protection, Tlb, VirtAddr, VmaKind};
use std::sync::Arc;

/// A SIGSEGV handler registered by the user-space runtime (the mprotect
/// based next-touch library, paper §3.2 / Figure 1).
///
/// Receives the machine so it can issue syscalls; must return the virtual
/// time at which the handler returns (the faulting access is then retried
/// by the engine — "touch retry" in Figure 1).
pub trait SegvHandler {
    /// Handle a protection fault raised by thread `tid` (running on
    /// `core`) at `addr`, starting at `now`. Costs of any syscalls the
    /// handler issues should be merged into `stats`.
    fn on_segv(
        &mut self,
        machine: &mut Machine,
        tid: usize,
        core: CoreId,
        addr: VirtAddr,
        now: SimTime,
        stats: &mut RunStats,
    ) -> SimTime;
}

/// The assembled simulated host.
pub struct Machine {
    topo: Arc<Topology>,
    /// The simulated kernel (public: the runtime layer calls syscalls).
    pub kernel: Kernel,
    /// The single simulated process's address space.
    pub space: AddressSpace,
    /// Physical frames.
    pub frames: FrameAllocator,
    /// TLB shootdown bookkeeping.
    pub tlb: Tlb,
    /// Per-node last-level caches.
    pub caches: Vec<cache::L3Cache>,
    /// Event trace (disabled by default).
    pub trace: Trace,
    pub(crate) segv_handler: Option<Box<dyn SegvHandler>>,
    /// Per-page access counters (vpn -> touches), bumped by the access
    /// model. The tiering daemon's hot/cold classification reads and
    /// decays this — the same sampling idea as AutoNUMA's scan hooks, but
    /// driven by the simulated accesses themselves. A `BTreeMap` so that
    /// daemon scans iterate in a deterministic order.
    pub heat: std::collections::BTreeMap<u64, u64>,
    /// Engine lookahead fast path (see `engine`): inline-continue a
    /// thread's micro-ops while no other thread is runnable before its
    /// clock. Exact by construction; disable to cross-check equivalence.
    pub(crate) fast_path: bool,
    /// Micro-ops executed via the fast path (host-performance telemetry,
    /// deliberately *not* part of `RunStats` so enabling/disabling the
    /// fast path cannot perturb any reported statistic).
    pub fastpath_micros: u64,
    /// Set by the fault path when an allocation failed fatally under the
    /// OOM-kill policy: the executing thread is the victim. The engine
    /// clears the flag after reaping the thread at the end of the current
    /// micro-op.
    pub(crate) oom_kill_pending: bool,
}

impl Machine {
    /// Build a machine from a topology and kernel configuration. Frame
    /// capacity per node follows the topology's `memory_bytes`.
    pub fn new(topo: Arc<Topology>, config: KernelConfig) -> Self {
        let cost = topo.cost();
        assert_eq!(
            cost.page_size,
            numa_vm::PAGE_SIZE,
            "cost-model page size must match the VM page size"
        );
        let capacities = topo
            .node_ids()
            .map(|n| topo.node(n).memory_bytes / cost.page_size)
            .collect();
        let caches = topo
            .node_ids()
            .map(|n| cache::L3Cache::new((topo.node(n).l3_bytes / cost.page_size) as usize))
            .collect();
        let kernel = Kernel::new(topo.clone(), config);
        // One shared trace handle across all layers: the kernel (and its
        // lock set) already hold clones, so enabling the machine's handle
        // enables recording everywhere at once.
        let trace = kernel.trace.clone();
        Machine {
            kernel,
            space: AddressSpace::new(),
            frames: FrameAllocator::with_capacities(capacities),
            tlb: Tlb::new(topo.core_count()),
            caches,
            trace,
            segv_handler: None,
            heat: std::collections::BTreeMap::new(),
            topo,
            fast_path: engine::fast_path_default(),
            fastpath_micros: 0,
            oom_kill_pending: false,
        }
    }

    /// Force the engine's lookahead fast path on or off for this machine
    /// (it defaults to [`engine::fast_path_default`]). Results are
    /// bit-identical either way; the slow path exists to prove that.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Enable event tracing with a bounded buffer of `capacity` events.
    /// The trace handle is shared with the kernel and lock layers, so one
    /// call turns on recording everywhere. Call *after* untimed setup
    /// (population) so the trace covers only the measured run.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// The paper's 4-socket Opteron with the paper's kernel.
    pub fn opteron_4p() -> Self {
        Machine::new(
            Arc::new(numa_topology::presets::opteron_4p()),
            KernelConfig::default(),
        )
    }

    /// A small two-node machine for tests.
    pub fn two_node() -> Self {
        Machine::new(
            Arc::new(numa_topology::presets::two_node()),
            KernelConfig::default(),
        )
    }

    /// The tiered 4 DRAM + 2 CXL machine with tiering enabled.
    pub fn tiered_4p2() -> Self {
        Machine::new(
            Arc::new(numa_topology::presets::tiered_4p2()),
            KernelConfig::tiered(),
        )
    }

    /// The machine topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The NUMA node `core` belongs to.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        self.topo.node_of_core(core)
    }

    /// Move a thread between cores at `now` (scheduler migration). Under
    /// the ptplace model a single-home page table that was co-located
    /// with the departing thread follows it to the destination node
    /// (numaPTE-style PT migration): the PT copy is charged linearly in
    /// the table's live entry count, and the stale translations cached
    /// against the old home are flushed with one batched shootdown. All
    /// other configurations — placement unset, a deliberately remote
    /// home, or per-node replicas — move nothing and cost nothing.
    pub fn migrate_thread(
        &mut self,
        from: CoreId,
        to: CoreId,
        now: SimTime,
        stats: &mut RunStats,
    ) -> SimTime {
        let from_node = self.topo.node_of_core(from);
        let to_node = self.topo.node_of_core(to);
        if from_node == to_node {
            return now;
        }
        let Some(numa_vm::PtPlacement::SingleHome(home)) = self.space.pt_placement() else {
            return now;
        };
        if home != from_node {
            return now;
        }
        let cost = self.topo.cost();
        let entries = self.space.page_table.len() as u64;
        let copy = cost.pt_migrate_ns(entries);
        self.space.pt_set_home(to_node);
        let hit = self.tlb.shootdown_all(to);
        self.kernel
            .counters
            .bump(numa_stats::Counter::TlbShootdowns);
        let flush = cost.tlb_flush_ns(hit);
        let dur = copy + flush;
        self.trace.record(
            now,
            numa_sim::TraceEventKind::PtMigrate {
                entries,
                dur_ns: dur,
            },
        );
        stats.breakdown.add(numa_stats::CostComponent::Other, copy);
        stats
            .breakdown
            .add(numa_stats::CostComponent::TlbFlush, flush);
        now + dur
    }

    /// Register the user-space SIGSEGV handler (replaces any previous one).
    pub fn set_segv_handler(&mut self, handler: Box<dyn SegvHandler>) {
        self.segv_handler = Some(handler);
    }

    /// Remove the SIGSEGV handler.
    pub fn clear_segv_handler(&mut self) -> Option<Box<dyn SegvHandler>> {
        self.segv_handler.take()
    }

    /// Allocate an anonymous RW buffer of `len` bytes with `policy`,
    /// returning the VM layer's typed error on failure (zero length,
    /// address-space exhaustion). The fallible form of [`Machine::alloc`]
    /// for callers that can degrade gracefully.
    pub fn try_alloc(&mut self, len: u64, policy: MemPolicy) -> Result<VirtAddr, numa_vm::VmError> {
        self.space.mmap(
            len,
            Protection::ReadWrite,
            VmaKind::PrivateAnonymous,
            policy,
        )
    }

    /// Allocate an anonymous RW buffer of `len` bytes with `policy`.
    /// Convenience used by runtimes and tests; panics where
    /// [`Machine::try_alloc`] would return an error.
    pub fn alloc(&mut self, len: u64, policy: MemPolicy) -> VirtAddr {
        self.try_alloc(len, policy).expect("mmap in simulation")
    }

    /// The node currently holding the page at `addr`, if populated
    /// (huge mappings resolve through their head page).
    pub fn page_node(&self, addr: VirtAddr) -> Option<NodeId> {
        let pte = self.space.page_table.get(self.resolve_vpn(addr))?;
        Some(self.frames.node_of(pte.frame))
    }

    /// Reset all contention state — interconnect watermarks and kernel
    /// locks — without touching memory contents or placement. Call
    /// between an experiment's (untimed) setup phase and its timed run,
    /// so setup traffic does not queue ahead of measured traffic.
    pub fn reset_contention(&mut self) {
        self.kernel.interconnect.reset();
        self.kernel.locks.reset();
    }

    /// Drop all cached page-residency state (between experiment phases
    /// that should not share cache warmth).
    pub fn flush_caches(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
    }

    /// Halve every page's access-heat counter, dropping pages that reach
    /// zero. The tiering daemon calls this after each scan so that heat
    /// reflects recent traffic, not all-time totals (exponential decay,
    /// as in kernel hot-page tracking).
    pub fn decay_heat(&mut self) {
        self.heat.retain(|_, h| {
            *h /= 2;
            *h > 0
        });
    }

    /// Snapshot the congestion state: busy nanoseconds per interconnect
    /// link and per node memory controller. This is the instrumentation
    /// behind the paper's §4.5 diagnosis that the big LU wins come from
    /// removing "congestion when multiple threads access each others'
    /// NUMA memory across a single HyperTransport link".
    pub fn congestion_report(&self) -> CongestionReport {
        CongestionReport {
            link_busy_ns: (0..self.topo.link_count())
                .map(|l| self.kernel.interconnect.link_busy_ns(l))
                .collect(),
            mem_busy_ns: self
                .topo
                .node_ids()
                .map(|n| self.kernel.interconnect.mem_busy_ns(n))
                .collect(),
        }
    }

    /// Per-resource busy/wait/utilisation over `[0, horizon]` (typically
    /// the run's makespan): every interconnect link, every node memory
    /// controller, and the two kernel locks.
    pub fn utilisation_report(&self, horizon: SimTime) -> UtilisationReport {
        let usage = |r: &numa_sim::Resource| ResourceUsage {
            name: r.name().to_string(),
            busy_ns: r.total_busy_ns(),
            wait_ns: r.total_wait_ns(),
            acquisitions: r.acquisitions(),
            utilisation: r.utilisation(horizon),
        };
        let ic = &self.kernel.interconnect;
        let mut resources: Vec<ResourceUsage> = ic.link_resources().iter().map(usage).collect();
        resources.extend(ic.mem_resources().iter().map(usage));
        resources.push(usage(&self.kernel.locks.mmap));
        resources.push(usage(&self.kernel.locks.pt));
        UtilisationReport {
            horizon_ns: horizon.ns(),
            resources,
        }
    }
}

/// Usage counters for one contended resource over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// Diagnostic name ("link0", "mc2", "mmap_lock", ...).
    pub name: String,
    /// Total time spent servicing requests.
    pub busy_ns: u64,
    /// Total time requesters spent queued.
    pub wait_ns: u64,
    /// Number of acquisitions served.
    pub acquisitions: u64,
    /// busy_ns / horizon (always <= 1.0 for a serial resource).
    pub utilisation: f64,
}

/// Per-run resource utilisation/wait report (links, memory controllers,
/// kernel locks).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilisationReport {
    /// The horizon the utilisations were computed against.
    pub horizon_ns: u64,
    /// One row per resource, links then memory controllers then locks.
    pub resources: Vec<ResourceUsage>,
}

impl UtilisationReport {
    /// Render as a printable table.
    pub fn to_table(&self) -> numa_stats::Table {
        let mut t = numa_stats::Table::new([
            "resource",
            "busy_ns",
            "wait_ns",
            "acquisitions",
            "utilisation",
        ]);
        for r in &self.resources {
            t.row([
                r.name.clone(),
                r.busy_ns.to_string(),
                r.wait_ns.to_string(),
                r.acquisitions.to_string(),
                format!("{:.4}", r.utilisation),
            ]);
        }
        t
    }

    /// Machine-readable form for the `--json` results file.
    pub fn to_json(&self) -> numa_stats::Json {
        use numa_stats::Json;
        let rows: Vec<Json> = self
            .resources
            .iter()
            .map(|r| {
                Json::obj()
                    .set("name", r.name.as_str())
                    .set("busy_ns", r.busy_ns)
                    .set("wait_ns", r.wait_ns)
                    .set("acquisitions", r.acquisitions)
                    .set("utilisation", r.utilisation)
            })
            .collect();
        Json::obj()
            .set("horizon_ns", self.horizon_ns)
            .set("resources", rows)
    }
}

/// Busy-time snapshot of the shared memory-system resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionReport {
    /// Busy nanoseconds per link, in link-id order.
    pub link_busy_ns: Vec<u64>,
    /// Busy nanoseconds per node memory controller, in node-id order.
    pub mem_busy_ns: Vec<u64>,
}

impl CongestionReport {
    /// Total traffic-time across all links.
    pub fn total_link_ns(&self) -> u64 {
        self.link_busy_ns.iter().sum()
    }

    /// Total memory-controller busy time.
    pub fn total_mem_ns(&self) -> u64 {
        self.mem_busy_ns.iter().sum()
    }

    /// Ratio between the busiest and least-busy memory controller — a
    /// quick imbalance indicator (1.0 = perfectly balanced).
    pub fn mem_imbalance(&self) -> f64 {
        let max = self.mem_busy_ns.iter().copied().max().unwrap_or(0);
        let min = self.mem_busy_ns.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_assembles() {
        let m = Machine::opteron_4p();
        assert_eq!(m.topology().node_count(), 4);
        assert_eq!(m.caches.len(), 4);
        // 2 MB L3 / 4 kB pages = 512 page slots.
        assert_eq!(m.caches[0].capacity(), 512);
    }

    #[test]
    fn alloc_and_page_node() {
        let mut m = Machine::two_node();
        let a = m.alloc(numa_vm::PAGE_SIZE, MemPolicy::FirstTouch);
        assert_eq!(m.page_node(a), None, "not yet touched");
    }
}
