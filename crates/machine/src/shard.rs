//! Sharded deterministic execution: many tenant machines in parallel.
//!
//! A *tenant* is one complete simulated process — its own address space,
//! page tables, frame allocator, kernel locks and caches — so tenants
//! share no mappings by construction (the shard partitioning rule: a
//! shard boundary may only separate processes, never threads of one
//! process). A *shard* is a group of tenants executed serially by one
//! worker; tenant `t` belongs to shard `t % shards`, and shard `s` runs
//! on worker `s % jobs`.
//!
//! Execution advances in fixed virtual-time windows (see
//! [`numa_sim::WindowClock`]): within a window every worker advances its
//! tenants independently through [`Machine::run_until`]; at the window
//! barrier all cross-tenant coupling is reconciled:
//!
//! * **frame capacity** — tenants draw refills from a shared
//!   [`FrameLedger`] and yield spare capacity back; the ledger is served
//!   in tenant-id order (deposits first, then requests), so the sequence
//!   of grants and denials — and therefore every downstream allocation
//!   failure — never depends on how tenants were packed into shards;
//! * **L3 thrash** — per-window cache-miss deltas are *summed* (a
//!   commutative fold) and compared against a limit; crossing it flushes
//!   every running tenant's caches, modelling machine-wide LLC pollution;
//! * **progress** — the minimum next-event time across all tenants (a
//!   global, packing-invariant quantity) drives window advancement,
//!   jumping over empty windows without extra barrier rounds.
//!
//! Because every coupling is applied at fixed window boundaries in an
//! order keyed on tenant id (never shard or worker id), the run's output
//! — makespans, breakdowns, counters, trace order — is byte-identical
//! for any `shards` × `jobs` combination, including `shards = 1`, which
//! executes exactly today's single-threaded engine schedule per tenant.

use crate::engine::{EngineRun, RunResult, RunStats, ThreadSpec};
use crate::Machine;
use numa_sim::{merge_streams, SimTime, TraceEvent, WindowClock};
use numa_stats::{Counter, Counters};
use numa_topology::{NodeId, Topology};
use std::sync::{Arc, Barrier, Mutex};

/// One tenant's machine and workload, produced by the builder closure
/// *inside* a worker thread (a [`Machine`] is intentionally not `Send`:
/// it never crosses threads, only its plain-data results do).
pub struct TenantRun {
    /// The tenant's private simulated host.
    pub machine: Machine,
    /// Its simulated threads.
    pub threads: Vec<ThreadSpec>,
    /// Barrier team sizes for [`crate::Op::Barrier`] ops.
    pub barrier_sizes: Vec<usize>,
}

/// Shared frame-capacity pool configuration (the cross-tenant memory
/// pressure model). All quantities are frames per NUMA node.
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// Unassigned frames pooled per node at start (on top of the initial
    /// per-tenant slices).
    pub pool_frames_per_node: u64,
    /// Capacity each tenant's allocator starts with on every node.
    pub initial_frames_per_node: u64,
    /// A tenant with fewer free frames than this on a node requests a
    /// refill at the next barrier.
    pub low_free_frames: u64,
    /// Frames requested per refill.
    pub refill_frames: u64,
    /// Free-frame headroom a tenant keeps; surplus above it is yielded
    /// back to the pool at barriers (so munmapped memory recycles).
    pub keep_free_frames: u64,
}

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards the tenant set is partitioned into (≥ 1).
    pub shards: usize,
    /// Worker threads (≥ 1; effective workers = min(jobs, shards)).
    pub jobs: usize,
    /// Window width override in ns; `None` derives it from the
    /// topology's conservative lookahead
    /// ([`Topology::min_cross_node_latency_ns`] ×
    /// [`numa_sim::WINDOW_LOOKAHEAD_MULTIPLE`]).
    pub window_ns: Option<u64>,
    /// Shared frame-capacity pool; `None` leaves every tenant on its
    /// preset bank capacities (no memory coupling).
    pub ledger: Option<LedgerConfig>,
    /// Machine-wide cache-miss-per-window limit; crossing it flushes all
    /// tenant caches at the barrier. 0 disables the thrash model.
    pub thrash_miss_limit: u64,
    /// Per-tenant trace buffer capacity (0 = tracing off).
    pub trace_capacity: usize,
}

impl ShardConfig {
    /// Single shard, single worker, no cross-tenant coupling — the
    /// configuration provably equivalent to running each tenant's
    /// [`Machine::run`] back to back.
    pub fn serial() -> Self {
        ShardConfig {
            shards: 1,
            jobs: 1,
            window_ns: None,
            ledger: None,
            thrash_miss_limit: 0,
            trace_capacity: 0,
        }
    }
}

/// Result of a sharded run: per-tenant results plus the deterministic
/// fold of everything cross-tenant, all independent of `shards`/`jobs`.
#[derive(Debug, Clone)]
pub struct ShardedRunResult {
    /// Maximum tenant makespan.
    pub makespan: SimTime,
    /// Barrier rounds executed.
    pub windows: u64,
    /// Empty windows jumped without a barrier round.
    pub windows_skipped: u64,
    /// Window width used, in ns.
    pub window_ns: u64,
    /// Per-tenant makespans, indexed by tenant id.
    pub tenant_makespans: Vec<SimTime>,
    /// Per-tenant engine results, indexed by tenant id.
    pub tenants: Vec<RunResult>,
    /// Engine stats folded over tenants in tenant-id order.
    pub stats: RunStats,
    /// Kernel counters folded over tenants in tenant-id order.
    pub kernel_counters: Counters,
    /// Satisfied ledger refill requests.
    pub ledger_grants: u64,
    /// Requests granted less than they asked (the pressure signal).
    pub ledger_denials: u64,
    /// Capacity returns to the pool.
    pub ledger_yields: u64,
    /// Windows that tripped the thrash limit and flushed all caches.
    pub flush_windows: u64,
    /// Merged trace, `(tenant_id, event)` ordered by
    /// `(time, tenant_id, emission order)`.
    pub trace: Vec<(usize, TraceEvent)>,
}

/// What one tenant publishes at a window barrier.
struct WindowSummary {
    /// Next pending event time, `None` once the tenant drained.
    next_event: Option<SimTime>,
    /// Engine cache misses incurred this window.
    misses_delta: u64,
    /// Refill wanted per node.
    requests: Vec<u64>,
    /// Capacity already yielded per node (worker-side), to deposit.
    deposits: Vec<u64>,
}

/// Barrier-round state shared by all workers. Only ever touched by the
/// barrier leader between the two waits, and read-only by everyone after
/// the second wait, so one mutex suffices.
struct SharedState {
    clock: WindowClock,
    ledger: Option<numa_vm::FrameLedger>,
    grants: Vec<Vec<u64>>,
    flush: bool,
    stop: bool,
    flush_windows: u64,
}

/// Plain-data outcome a worker ships back for one tenant.
struct TenantOutcome {
    tenant: usize,
    result: RunResult,
    kernel_counters: Counters,
    trace: Vec<TraceEvent>,
}

/// A tenant resident on a worker.
struct LiveTenant {
    id: usize,
    machine: Machine,
    run: Option<EngineRun>,
    finished: bool,
    last_misses: u64,
}

/// Run `tenant_count` tenants built by `build` (called with the tenant
/// id, from worker threads) under the windowed-barrier schedule.
///
/// `topo` supplies the lookahead for the default window width; tenants
/// are expected to be built over the same topology (same latency
/// matrix), which every provided workload does.
pub fn run_sharded<F>(
    topo: &Arc<Topology>,
    tenant_count: usize,
    cfg: &ShardConfig,
    build: F,
) -> ShardedRunResult
where
    F: Fn(usize) -> TenantRun + Sync,
{
    let shards = cfg.shards.max(1);
    let jobs = cfg.jobs.max(1);
    let width = cfg
        .window_ns
        .unwrap_or_else(|| WindowClock::width_for_lookahead(topo.min_cross_node_latency_ns()))
        .max(1);
    let nodes = topo.node_count();

    if tenant_count == 0 {
        return ShardedRunResult {
            makespan: SimTime::ZERO,
            windows: 0,
            windows_skipped: 0,
            window_ns: width,
            tenant_makespans: Vec::new(),
            tenants: Vec::new(),
            stats: RunStats::default(),
            kernel_counters: Counters::new(),
            ledger_grants: 0,
            ledger_denials: 0,
            ledger_yields: 0,
            flush_windows: 0,
            trace: Vec::new(),
        };
    }

    // Worker packing never reaches the output (all cross-tenant merges key
    // on tenant id), so clamp to the host like `threadpool::par_map` does:
    // workers beyond the CPU count only add barrier convoying.
    let workers = jobs
        .min(shards)
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);
    let shared = Mutex::new(SharedState {
        clock: WindowClock::new(width),
        ledger: cfg
            .ledger
            .as_ref()
            .map(|l| numa_vm::FrameLedger::new(vec![l.pool_frames_per_node; nodes])),
        grants: vec![vec![0; nodes]; tenant_count],
        flush: false,
        stop: false,
        flush_windows: 0,
    });
    let summaries: Vec<Mutex<Option<WindowSummary>>> =
        (0..tenant_count).map(|_| Mutex::new(None)).collect();
    let barrier = Barrier::new(workers);
    let outcomes: Mutex<Vec<TenantOutcome>> = Mutex::new(Vec::with_capacity(tenant_count));
    let build = &build;
    let shared = &shared;
    let summaries = &summaries;
    let barrier = &barrier;
    let outcomes = &outcomes;
    let ledger_cfg = cfg.ledger.clone();
    let thrash_limit = cfg.thrash_miss_limit;
    let trace_capacity = cfg.trace_capacity;

    std::thread::scope(|scope| {
        for me in 0..workers {
            let ledger_cfg = ledger_cfg.clone();
            scope.spawn(move || {
                // Tenants whose shard lands on this worker, ascending id.
                let mut mine: Vec<LiveTenant> = (0..tenant_count)
                    .filter(|t| (t % shards) % workers == me)
                    .map(|id| {
                        let TenantRun {
                            mut machine,
                            threads,
                            barrier_sizes,
                        } = build(id);
                        if let Some(l) = &ledger_cfg {
                            for n in 0..nodes {
                                machine
                                    .frames
                                    .set_capacity(NodeId(n as u16), l.initial_frames_per_node);
                            }
                        }
                        if trace_capacity > 0 {
                            machine.enable_trace(trace_capacity);
                        }
                        let run = machine.start_run(threads, &barrier_sizes);
                        LiveTenant {
                            id,
                            machine,
                            run: Some(run),
                            finished: false,
                            last_misses: 0,
                        }
                    })
                    .collect();

                let mut horizon = SimTime(width);
                loop {
                    for tenant in &mut mine {
                        let summary = if tenant.finished {
                            WindowSummary {
                                next_event: None,
                                misses_delta: 0,
                                requests: Vec::new(),
                                deposits: Vec::new(),
                            }
                        } else {
                            let LiveTenant { machine, run, .. } = tenant;
                            let run = run.as_mut().expect("unfinished tenant has a run");
                            let next = machine.run_until(run, Some(horizon));
                            if next.is_none() {
                                tenant.finished = true;
                            }
                            let misses = run.stats().counters.get(Counter::CacheMisses);
                            let misses_delta = misses - tenant.last_misses;
                            tenant.last_misses = misses;
                            let (requests, deposits) = match &ledger_cfg {
                                None => (Vec::new(), Vec::new()),
                                Some(l) => {
                                    let mut req = vec![0; nodes];
                                    let mut dep = vec![0; nodes];
                                    // A drained tenant hands back all its
                                    // spare headroom; a running one keeps
                                    // its configured cushion.
                                    let keep = if tenant.finished {
                                        0
                                    } else {
                                        l.keep_free_frames
                                    };
                                    for n in 0..nodes {
                                        let node = NodeId(n as u16);
                                        let free = tenant.machine.frames.free_on(node);
                                        if free > keep {
                                            dep[n] = tenant
                                                .machine
                                                .frames
                                                .yield_capacity(node, free - keep);
                                        }
                                        if !tenant.finished
                                            && tenant.machine.frames.free_on(node)
                                                < l.low_free_frames
                                        {
                                            req[n] = l.refill_frames;
                                        }
                                    }
                                    (req, dep)
                                }
                            };
                            WindowSummary {
                                next_event: next,
                                misses_delta,
                                requests,
                                deposits,
                            }
                        };
                        *summaries[tenant.id].lock().unwrap() = Some(summary);
                    }

                    if barrier.wait().is_leader() {
                        let mut sh = shared.lock().unwrap();
                        let sh = &mut *sh;
                        let mut min_next: Option<SimTime> = None;
                        let mut miss_sum = 0u64;
                        // Deposits first (commutative), so capacity freed
                        // this window is grantable this window.
                        if let Some(ledger) = &mut sh.ledger {
                            for slot in summaries.iter() {
                                if let Some(s) = slot.lock().unwrap().as_ref() {
                                    for (n, &d) in s.deposits.iter().enumerate() {
                                        ledger.deposit(NodeId(n as u16), d);
                                    }
                                }
                            }
                        }
                        // Requests strictly in tenant-id order: the grant
                        // sequence must not depend on packing.
                        for (t, slot) in summaries.iter().enumerate() {
                            let slot = slot.lock().unwrap();
                            let s = slot.as_ref().expect("summary published");
                            miss_sum += s.misses_delta;
                            if let Some(p) = s.next_event {
                                min_next = Some(
                                    min_next.map_or(p, |m: SimTime| if p < m { p } else { m }),
                                );
                            }
                            let grant = &mut sh.grants[t];
                            grant.iter_mut().for_each(|g| *g = 0);
                            if let Some(ledger) = &mut sh.ledger {
                                for (n, &want) in s.requests.iter().enumerate() {
                                    if want > 0 {
                                        grant[n] = ledger.request(NodeId(n as u16), want);
                                    }
                                }
                            }
                        }
                        sh.flush = thrash_limit > 0 && miss_sum >= thrash_limit;
                        if sh.flush {
                            sh.flush_windows += 1;
                        }
                        match min_next {
                            None => sh.stop = true,
                            Some(m) => sh.clock.skip_to(m),
                        }
                    }
                    barrier.wait();

                    {
                        let sh = shared.lock().unwrap();
                        if sh.stop {
                            break;
                        }
                        horizon = sh.clock.horizon();
                        for tenant in &mut mine {
                            if tenant.finished {
                                continue;
                            }
                            for (n, &g) in sh.grants[tenant.id].iter().enumerate() {
                                if g > 0 {
                                    tenant.machine.frames.grant_capacity(NodeId(n as u16), g);
                                }
                            }
                            if sh.flush {
                                tenant.machine.flush_caches();
                            }
                        }
                    }
                }

                let mut done: Vec<TenantOutcome> = mine
                    .into_iter()
                    .map(|t| TenantOutcome {
                        tenant: t.id,
                        result: t.run.expect("run present").finish(),
                        kernel_counters: t.machine.kernel.counters.clone(),
                        trace: t.machine.trace.snapshot(),
                    })
                    .collect();
                outcomes.lock().unwrap().append(&mut done);
            });
        }
    });

    let mut done = std::mem::take(&mut *outcomes.lock().unwrap());
    done.sort_by_key(|o| o.tenant);
    debug_assert_eq!(done.len(), tenant_count);

    // Fold everything in tenant-id order — float sums in the breakdown
    // are order-sensitive, so the order must be packing-invariant.
    let mut stats = RunStats::default();
    let mut kernel_counters = Counters::new();
    let mut makespan = SimTime::ZERO;
    let mut tenant_makespans = Vec::with_capacity(tenant_count);
    let mut trace_runs: Vec<Vec<(usize, TraceEvent)>> = Vec::with_capacity(tenant_count);
    let mut tenants = Vec::with_capacity(tenant_count);
    for o in done {
        stats.breakdown.merge(&o.result.stats.breakdown);
        stats.counters.merge(&o.result.stats.counters);
        kernel_counters.merge(&o.kernel_counters);
        makespan = makespan.max(o.result.makespan);
        tenant_makespans.push(o.result.makespan);
        trace_runs.push(o.trace.into_iter().map(|e| (o.tenant, e)).collect());
        tenants.push(o.result);
    }
    let trace = merge_streams(trace_runs, |(_, e)| e.at);

    let sh = shared.lock().unwrap();
    ShardedRunResult {
        makespan,
        windows: sh.clock.windows(),
        windows_skipped: sh.clock.skipped(),
        window_ns: width,
        tenant_makespans,
        tenants,
        stats,
        kernel_counters,
        ledger_grants: sh.ledger.as_ref().map_or(0, |l| l.grants()),
        ledger_denials: sh.ledger.as_ref().map_or(0, |l| l.denials()),
        ledger_yields: sh.ledger.as_ref().map_or(0, |l| l.yields()),
        flush_windows: sh.flush_windows,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemAccessKind, Op};
    use numa_vm::MemPolicy;

    fn tenant(id: usize) -> TenantRun {
        let mut machine = Machine::two_node();
        let buf = machine.alloc(16 * numa_vm::PAGE_SIZE, MemPolicy::FirstTouch);
        let pages = 4 + (id % 4) as u64;
        let threads = vec![ThreadSpec::scripted(
            numa_topology::CoreId((id % 2) as u16),
            vec![
                Op::ComputeNs(50 * (id as u64 + 1)),
                Op::write(buf, pages * numa_vm::PAGE_SIZE, MemAccessKind::Stream),
                Op::read(buf, pages * numa_vm::PAGE_SIZE, MemAccessKind::Random),
                Op::Munmap { addr: buf },
            ],
        )];
        TenantRun {
            machine,
            threads,
            barrier_sizes: Vec::new(),
        }
    }

    fn fingerprint(r: &ShardedRunResult) -> (u64, Vec<u64>, String, Vec<(usize, u64)>) {
        (
            r.makespan.ns(),
            r.tenant_makespans.iter().map(|t| t.ns()).collect(),
            format!("{:?}{:?}", r.stats.breakdown, r.stats.counters),
            r.trace.iter().map(|(t, e)| (*t, e.at.ns())).collect(),
        )
    }

    #[test]
    fn sharded_equals_serial_runs() {
        let topo = Arc::new(numa_topology::presets::two_node());
        let n = 6;
        let sharded = run_sharded(&topo, n, &ShardConfig::serial(), tenant);
        // Reference: each tenant run monolithically.
        for id in 0..n {
            let TenantRun {
                mut machine,
                threads,
                barrier_sizes,
            } = tenant(id);
            let r = machine.run(threads, &barrier_sizes);
            assert_eq!(r.makespan, sharded.tenant_makespans[id], "tenant {id}");
            assert_eq!(
                format!("{:?}", r.stats.breakdown),
                format!("{:?}", sharded.tenants[id].stats.breakdown),
                "tenant {id} breakdown"
            );
        }
    }

    #[test]
    fn output_invariant_across_shards_and_jobs() {
        let topo = Arc::new(numa_topology::presets::two_node());
        let n = 9;
        let cfg = |shards, jobs| ShardConfig {
            shards,
            jobs,
            window_ns: None,
            ledger: Some(LedgerConfig {
                pool_frames_per_node: 64,
                initial_frames_per_node: 8,
                low_free_frames: 4,
                refill_frames: 8,
                keep_free_frames: 16,
            }),
            thrash_miss_limit: 64,
            trace_capacity: 256,
        };
        let base = fingerprint(&run_sharded(&topo, n, &cfg(1, 1), tenant));
        for (s, j) in [(2, 1), (3, 2), (8, 4), (9, 9), (16, 3)] {
            let r = run_sharded(&topo, n, &cfg(s, j), tenant);
            assert_eq!(base, fingerprint(&r), "shards={s} jobs={j}");
        }
    }

    #[test]
    fn ledger_pressure_grants_and_recycles() {
        let topo = Arc::new(numa_topology::presets::two_node());
        let cfg = ShardConfig {
            shards: 2,
            jobs: 2,
            window_ns: None,
            ledger: Some(LedgerConfig {
                // Initial slices cover the largest single-window touch
                // burst (7 pages) so refills stay watermark-driven; the
                // multitenant workload additionally enables the OOM-kill
                // policy so outright exhaustion degrades, not panics.
                pool_frames_per_node: 32,
                initial_frames_per_node: 8,
                low_free_frames: 4,
                refill_frames: 4,
                keep_free_frames: 6,
            }),
            thrash_miss_limit: 0,
            trace_capacity: 0,
        };
        let r = run_sharded(&topo, 4, &cfg, tenant);
        assert!(r.ledger_grants > 0, "tiny initial slices force refills");
        assert!(r.ledger_yields > 0, "munmap returns capacity");
        assert!(r.windows > 0);
    }

    #[test]
    fn empty_tenant_set() {
        let topo = Arc::new(numa_topology::presets::two_node());
        let r = run_sharded(&topo, 0, &ShardConfig::serial(), tenant);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.windows, 0);
    }
}
