//! Per-node last-level cache model.
//!
//! Page-granular FIFO residency: fine enough to make the Figure-8
//! crossover (working sets beyond the 2 MB shared L3 suddenly paying DRAM
//! and NUMA costs) appear, coarse enough to stay cheap. The paper's L3 is
//! shared by the node's four cores, which the per-node granularity models
//! directly.

use numa_sim::FxHashMap;
use std::collections::VecDeque;

/// A page-granular FIFO cache of fixed capacity.
///
/// Invalidation is lazy: `invalidate` only drops the page from the
/// residency map, leaving a stale entry in the FIFO order that eviction
/// skips (each entry carries the sequence number it was inserted under,
/// so a re-inserted page is never confused with its stale ghost). This
/// keeps `invalidate` O(1) — it runs once per migrated page, and
/// migration-heavy runs (next-touch LU) used to spend a linear
/// `retain` over the whole FIFO on every one. The eviction *order* of
/// live pages is exactly the eager scheme's.
#[derive(Debug, Clone)]
pub struct L3Cache {
    capacity: usize,
    /// Insertion counter; tags FIFO entries so stale ones are skippable.
    seq: u64,
    /// FIFO of (insertion seq, vpn); may contain stale entries.
    order: VecDeque<(u64, u64)>,
    /// vpn -> seq of its live FIFO entry. Size == live page count.
    resident: FxHashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl L3Cache {
    /// A cache holding `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        L3Cache {
            capacity,
            seq: 0,
            order: VecDeque::with_capacity(capacity),
            resident: FxHashMap::with_capacity_and_hasher(capacity * 2, Default::default()),
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touch page `vpn`: returns `true` on hit. Misses insert the page,
    /// evicting FIFO when full.
    pub fn touch(&mut self, vpn: u64) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if self.resident.contains_key(&vpn) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() == self.capacity {
            // Pop stale ghosts until the oldest *live* page is evicted.
            while let Some((seq, old)) = self.order.pop_front() {
                if self.resident.get(&old) == Some(&seq) {
                    self.resident.remove(&old);
                    break;
                }
            }
        }
        self.seq += 1;
        self.order.push_back((self.seq, vpn));
        self.resident.insert(vpn, self.seq);
        false
    }

    /// Invalidate one page (after migration the cached copy is stale on
    /// the *old* node; on real hardware coherence handles this — here we
    /// drop it so residency follows the data).
    pub fn invalidate(&mut self, vpn: u64) {
        self.resident.remove(&vpn);
        // Bound the stale backlog so the FIFO cannot outgrow the cache
        // under invalidation storms with few evictions.
        if self.order.len() >= 2 * self.capacity.max(32) {
            let resident = &self.resident;
            self.order.retain(|(seq, v)| resident.get(v) == Some(seq));
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.order.clear();
        self.resident.clear();
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages currently resident.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = L3Cache::new(4);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn fifo_eviction() {
        let mut c = L3Cache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(3); // evicts 1
        assert!(!c.touch(1), "1 was evicted");
        assert!(c.len() <= 2);
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = L3Cache::new(8);
        for round in 0..5 {
            for vpn in 0..8u64 {
                let hit = c.touch(vpn);
                assert_eq!(hit, round > 0);
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_fifo() {
        // Sequential sweep over capacity+1 pages: FIFO gives 0 hits.
        let mut c = L3Cache::new(4);
        for _ in 0..3 {
            for vpn in 0..5u64 {
                assert!(!c.touch(vpn));
            }
        }
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = L3Cache::new(4);
        c.touch(7);
        c.invalidate(7);
        assert!(!c.touch(7));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = L3Cache::new(0);
        assert!(!c.touch(1));
        assert!(!c.touch(1));
    }
}
