//! Property tests for the sharded orchestrator: random shard partitions
//! of random process sets must run in lockstep with `shards = 1` — and
//! `shards = 1` without coupling must equal today's monolithic engine —
//! on makespan, per-thread breakdowns, counters, and trace event order,
//! in both fast-path modes, with tracing on and off.

use numa_machine::shard::{run_sharded, LedgerConfig, ShardConfig, ShardedRunResult};
use numa_machine::{Machine, MemAccessKind, Op, TenantRun, ThreadSpec};
use numa_sim::Splitmix64;
use numa_topology::CoreId;
use numa_vm::{MemPolicy, PageRange, PAGE_SIZE};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministically build tenant `id`'s machine and random script from
/// `seed`. Two threads per tenant; ops drawn from the whole churn ISA
/// (computes, touches, next-touch marks, thread migration, `move_pages`,
/// `munmap` of a second throwaway mapping).
fn tenant(seed: u64, fast_path: bool, id: usize) -> TenantRun {
    let topo = Arc::new(numa_topology::presets::two_node());
    let mut machine = Machine::new(topo.clone(), numa_kernel::KernelConfig::default());
    machine.set_fast_path(fast_path);
    let buf = machine.alloc(32 * PAGE_SIZE, MemPolicy::FirstTouch);
    let scratch = machine.alloc(8 * PAGE_SIZE, MemPolicy::FirstTouch);
    let mut rng = Splitmix64::new(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let cores = topo.core_count() as u64;
    let threads = (0..2)
        .map(|t| {
            let core = CoreId(rng.below(cores) as u16);
            let n_ops = 1 + rng.below(10) as usize;
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                ops.push(match rng.below(7) {
                    0 => Op::ComputeNs(1 + rng.below(5_000)),
                    1 => Op::write(
                        buf + rng.below(28) * PAGE_SIZE,
                        (1 + rng.below(4)) * PAGE_SIZE,
                        MemAccessKind::Stream,
                    ),
                    2 => Op::read(
                        buf + rng.below(28) * PAGE_SIZE,
                        (1 + rng.below(4)) * PAGE_SIZE,
                        MemAccessKind::Random,
                    ),
                    3 => Op::MadviseNextTouch {
                        range: PageRange::covering(
                            buf + rng.below(28) * PAGE_SIZE,
                            (1 + rng.below(4)) * PAGE_SIZE,
                        ),
                    },
                    4 => Op::MigrateThread {
                        to: CoreId(rng.below(cores) as u16),
                    },
                    5 => Op::MovePages {
                        pages: vec![buf + rng.below(32) * PAGE_SIZE],
                        dest: vec![numa_topology::NodeId(rng.below(2) as u16)],
                    },
                    _ => {
                        // Touch then unmap the scratch mapping exactly once
                        // (thread 0 only; munmap of a missing VMA is an
                        // error by design).
                        if t == 0 {
                            Op::write(scratch, PAGE_SIZE, MemAccessKind::Stream)
                        } else {
                            Op::ComputeNs(17)
                        }
                    }
                });
            }
            if t == 0 && rng.below(2) == 1 {
                ops.push(Op::Munmap { addr: scratch });
            }
            ThreadSpec::scripted(core, ops)
        })
        .collect();
    TenantRun {
        machine,
        threads,
        barrier_sizes: Vec::new(),
    }
}

/// Everything the lockstep contract covers, in comparable form.
fn fingerprint(r: &ShardedRunResult) -> (Vec<u64>, Vec<Vec<u64>>, String, String, Vec<String>) {
    (
        r.tenant_makespans.iter().map(|t| t.ns()).collect(),
        r.tenants
            .iter()
            .map(|t| t.thread_end.iter().map(|e| e.ns()).collect())
            .collect(),
        format!(
            "{:?}{:?}",
            r.stats.breakdown,
            r.stats.counters.iter().collect::<Vec<_>>()
        ),
        format!("{:?}", r.kernel_counters.iter().collect::<Vec<_>>()),
        r.trace
            .iter()
            .map(|(tenant, e)| format!("{tenant}:{}:{}:{}", e.at.ns(), e.tid, e.kind.label()))
            .collect(),
    )
}

fn config(shards: usize, jobs: usize, couple: bool, trace: bool) -> ShardConfig {
    ShardConfig {
        shards,
        jobs,
        window_ns: None,
        ledger: couple.then_some(LedgerConfig {
            pool_frames_per_node: 128,
            initial_frames_per_node: 24,
            low_free_frames: 8,
            refill_frames: 8,
            keep_free_frames: 16,
        }),
        thrash_miss_limit: if couple { 96 } else { 0 },
        trace_capacity: if trace { 512 } else { 0 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random partitions: shards=1 and shards=N produce byte-identical
    /// output with full coupling (ledger + thrash) and tracing enabled.
    #[test]
    fn random_partition_lockstep(
        seed in any::<u64>(),
        tenants in 1usize..8,
        shards in 2usize..12,
        jobs in 1usize..5,
        fast_path in any::<bool>(),
    ) {
        let topo = Arc::new(numa_topology::presets::two_node());
        let build = |id| tenant(seed, fast_path, id);
        let base = run_sharded(&topo, tenants, &config(1, 1, true, true), build);
        let part = run_sharded(&topo, tenants, &config(shards, jobs, true, true), build);
        prop_assert_eq!(fingerprint(&base), fingerprint(&part));
        prop_assert_eq!(base.windows, part.windows);
        prop_assert_eq!(base.windows_skipped, part.windows_skipped);
        prop_assert_eq!(
            (base.ledger_grants, base.ledger_denials, base.ledger_yields, base.flush_windows),
            (part.ledger_grants, part.ledger_denials, part.ledger_yields, part.flush_windows)
        );
    }

    /// With coupling neutralised, the windowed orchestrator at any
    /// partition equals today's monolithic engine run per tenant — in
    /// both fast-path modes, tracing off (the monolithic reference runs
    /// untraced).
    #[test]
    fn shards_equal_monolithic_engine(
        seed in any::<u64>(),
        tenants in 1usize..6,
        shards in 1usize..10,
        jobs in 1usize..4,
        fast_path in any::<bool>(),
    ) {
        let topo = Arc::new(numa_topology::presets::two_node());
        let sharded = run_sharded(&topo, tenants, &config(shards, jobs, false, false), |id| {
            tenant(seed, fast_path, id)
        });
        for id in 0..tenants {
            let TenantRun { mut machine, threads, barrier_sizes } = tenant(seed, fast_path, id);
            let mono = machine.run(threads, &barrier_sizes);
            prop_assert_eq!(mono.makespan, sharded.tenant_makespans[id]);
            prop_assert_eq!(&mono.thread_end, &sharded.tenants[id].thread_end);
            prop_assert_eq!(
                format!("{:?}", mono.stats.breakdown),
                format!("{:?}", sharded.tenants[id].stats.breakdown)
            );
            prop_assert_eq!(
                format!("{:?}", mono.stats.counters.iter().collect::<Vec<_>>()),
                format!("{:?}", sharded.tenants[id].stats.counters.iter().collect::<Vec<_>>())
            );
        }
    }

    /// Fast path on and off agree under the sharded schedule (the PR 3
    /// equivalence, re-proven through windowed re-entrancy), traced.
    #[test]
    fn fast_path_modes_agree_when_sharded(
        seed in any::<u64>(),
        tenants in 1usize..5,
        shards in 1usize..8,
    ) {
        let topo = Arc::new(numa_topology::presets::two_node());
        let fast = run_sharded(&topo, tenants, &config(shards, 2, true, true), |id| {
            tenant(seed, true, id)
        });
        let slow = run_sharded(&topo, tenants, &config(shards, 2, true, true), |id| {
            tenant(seed, false, id)
        });
        prop_assert_eq!(fingerprint(&fast), fingerprint(&slow));
    }
}
