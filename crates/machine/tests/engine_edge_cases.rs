//! Edge cases of the machine engine: huge mappings through the op path,
//! unaligned memcpy, tracing, contention reset, and cache flushing.

use numa_kernel::KernelConfig;
use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_stats::Breakdown;
use numa_topology::{presets, CoreId, NodeId};
use numa_vm::{MemPolicy, PAGES_PER_HUGE, PAGE_SIZE};
use std::sync::Arc;

fn huge_machine() -> Machine {
    Machine::new(
        Arc::new(presets::opteron_4p()),
        KernelConfig {
            huge_page_migration: true,
            ..KernelConfig::default()
        },
    )
}

#[test]
fn huge_mapping_lazy_migrates_through_the_engine() {
    let mut m = huge_machine();
    let addr = m
        .kernel
        .mmap_huge(&mut m.space, 4 << 20, MemPolicy::Bind(NodeId(0)))
        .unwrap();
    // Populate both huge pages.
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::write(addr, 4 << 20, MemAccessKind::Stream)],
        )],
        &[],
    );
    assert!(r.makespan.ns() > 0);
    assert_eq!(m.frames.live_on(NodeId(0)), 2, "two huge frames");

    // Mark + touch from node 2.
    let range = numa_vm::PageRange::new(addr.vpn(), addr.vpn() + 2 * PAGES_PER_HUGE);
    m.run(
        vec![ThreadSpec::scripted(
            CoreId(8),
            vec![
                Op::MadviseNextTouch { range },
                Op::read(addr, 4 << 20, MemAccessKind::Stream),
            ],
        )],
        &[],
    );
    assert_eq!(m.frames.live_on(NodeId(2)), 2, "both huge pages followed");
    assert_eq!(m.page_node(addr + (3 << 20)), Some(NodeId(2)));
}

#[test]
fn unaligned_memcpy_copies_exactly() {
    let mut m = Machine::two_node();
    let src = m.alloc(4 * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
    let dst = m.alloc(4 * PAGE_SIZE, MemPolicy::Bind(NodeId(1)));
    // Start 100 bytes into the source, copy a page and a half.
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::Memcpy {
                src: src + 100,
                dst: dst + 100,
                bytes: PAGE_SIZE + PAGE_SIZE / 2,
            }],
        )],
        &[],
    );
    // Both touched pages of each side populated, none beyond.
    assert!(m.page_node(src + 100).is_some());
    assert!(m.page_node(src + PAGE_SIZE + 100).is_some());
    assert!(m.page_node(dst + PAGE_SIZE + 100).is_some());
    assert_eq!(m.page_node(dst + 3 * PAGE_SIZE), None);
    // Duration roughly bytes / 2 GB/s plus fault costs.
    let copy_ns = (PAGE_SIZE + PAGE_SIZE / 2) as f64 / 2.0;
    assert!(r.makespan.ns() as f64 > copy_ns);
}

#[test]
fn zero_byte_ops_are_free() {
    let mut m = Machine::two_node();
    let buf = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
    let r = m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::Access {
                    addr: buf,
                    bytes: 0,
                    traffic: 0,
                    write: false,
                    kind: MemAccessKind::Stream,
                },
                Op::Memcpy {
                    src: buf,
                    dst: buf,
                    bytes: 0,
                },
                Op::Nop,
            ],
        )],
        &[],
    );
    assert_eq!(r.makespan.ns(), 0);
}

#[test]
fn trace_records_faults_when_enabled() {
    use numa_sim::TraceEventKind;
    let mut m = Machine::two_node();
    m.enable_trace(1024);
    let buf = m.alloc(2 * PAGE_SIZE, MemPolicy::FirstTouch);
    m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::write(buf, 2 * PAGE_SIZE, MemAccessKind::Stream)],
        )],
        &[],
    );
    let events = m.trace.snapshot();
    let fault_events = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::PageFault { .. }))
        .count();
    assert_eq!(fault_events, 2, "one trace event per first-touch fault");
    // The engine wraps each fault in a typed span as well.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::Span { .. })));
}

#[test]
fn reset_contention_clears_watermarks_but_not_placement() {
    let mut m = Machine::two_node();
    let buf = m.alloc(16 * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
    numa_rt_populate(&mut m, buf, 16);
    // Heavy traffic to stain the watermarks.
    m.run(
        vec![ThreadSpec::scripted(
            CoreId(2),
            vec![Op::read(buf, 16 * PAGE_SIZE, MemAccessKind::Blocked)],
        )],
        &[],
    );
    assert!(m.kernel.interconnect.mem_busy_ns(NodeId(0)) > 0);
    m.reset_contention();
    assert_eq!(m.kernel.interconnect.mem_busy_ns(NodeId(0)), 0);
    // Placement untouched.
    assert_eq!(m.page_node(buf), Some(NodeId(0)));
}

// Local helper to avoid a dev-dependency on numa-rt from numa-machine.
fn numa_rt_populate(m: &mut Machine, addr: numa_vm::VirtAddr, pages: u64) {
    for p in 0..pages {
        m.kernel.handle_fault(
            &mut m.space,
            &mut m.frames,
            &mut m.tlb,
            numa_sim::SimTime::ZERO,
            CoreId(0),
            addr + p * PAGE_SIZE,
            true,
            &mut Breakdown::new(),
        );
    }
}

#[test]
fn barrier_only_threads_finish_at_zero() {
    let mut m = Machine::two_node();
    let specs = vec![
        ThreadSpec::scripted(CoreId(0), vec![Op::Barrier(0)]),
        ThreadSpec::scripted(CoreId(1), vec![Op::Barrier(0)]),
    ];
    let r = m.run(specs, &[2]);
    assert_eq!(r.makespan.ns(), 0);
}

#[test]
#[should_panic(expected = "unregistered barrier")]
fn unregistered_barrier_panics() {
    let mut m = Machine::two_node();
    m.run(
        vec![ThreadSpec::scripted(CoreId(0), vec![Op::Barrier(3)])],
        &[1],
    );
}

#[test]
fn flush_caches_forces_refill() {
    let mut m = Machine::two_node();
    let buf = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
    let mk_read = || vec![Op::read(buf, 4 * PAGE_SIZE, MemAccessKind::Blocked)];
    m.run(vec![ThreadSpec::scripted(CoreId(0), mk_read())], &[]);
    let warm = {
        let r = m.run(vec![ThreadSpec::scripted(CoreId(0), mk_read())], &[]);
        r.makespan.ns()
    };
    m.flush_caches();
    m.reset_contention();
    let cold = {
        let r = m.run(vec![ThreadSpec::scripted(CoreId(0), mk_read())], &[]);
        r.makespan.ns()
    };
    assert!(cold > warm, "cold rerun ({cold}) must exceed warm ({warm})");
}

#[test]
fn congestion_report_reflects_traffic() {
    let mut m = Machine::two_node();
    let buf = m.alloc(8 * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
    numa_rt_populate(&mut m, buf, 8);
    m.reset_contention();
    let before = m.congestion_report();
    assert_eq!(before.total_link_ns(), 0);
    assert_eq!(before.total_mem_ns(), 0);
    // Remote read from node 1 crosses the link and hits node 0's MC.
    m.run(
        vec![ThreadSpec::scripted(
            CoreId(2),
            vec![Op::read(buf, 8 * PAGE_SIZE, MemAccessKind::Blocked)],
        )],
        &[],
    );
    let after = m.congestion_report();
    assert!(
        after.total_link_ns() > 0,
        "remote traffic must use the link"
    );
    assert!(after.mem_busy_ns[0] > 0, "home controller busy");
    assert_eq!(after.mem_busy_ns[1], 0, "node 1's controller untouched");
    assert!(after.mem_imbalance().is_infinite());
}
