//! Property-based tests for the machine engine: determinism, clock
//! monotonicity and placement invariants under randomized workloads.

use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_topology::{CoreId, NodeId};
use numa_vm::{MemPolicy, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

/// A randomized multi-threaded workload over one shared buffer.
fn build_workload(
    m: &mut Machine,
    ops_per_thread: &[Vec<(u8, u64)>],
) -> (Vec<ThreadSpec>, VirtAddr) {
    let buf = m.alloc(64 * PAGE_SIZE, MemPolicy::FirstTouch);
    let ncores = m.topology().core_count() as u16;
    let specs = ops_per_thread
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let ops: Vec<Op> = raw
                .iter()
                .map(|(kind, arg)| match kind % 4 {
                    0 => Op::ComputeNs(arg % 10_000 + 1),
                    1 => Op::write(
                        buf + (arg % 60) * PAGE_SIZE,
                        2 * PAGE_SIZE,
                        MemAccessKind::Stream,
                    ),
                    2 => Op::read(
                        buf + (arg % 60) * PAGE_SIZE,
                        PAGE_SIZE,
                        MemAccessKind::Blocked,
                    ),
                    _ => Op::MadviseNextTouch {
                        range: numa_vm::PageRange::covering(
                            buf + (arg % 32) * PAGE_SIZE,
                            PAGE_SIZE,
                        ),
                    },
                })
                .collect();
            ThreadSpec::scripted(CoreId((i as u16 * 5) % ncores), ops)
        })
        .collect();
    (specs, buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical workloads produce bit-identical results: makespan,
    /// per-thread ends, full breakdown and counters.
    #[test]
    fn engine_is_deterministic(
        workload in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u64>()), 0..15),
            1..6,
        )
    ) {
        let run = || {
            let mut m = Machine::opteron_4p();
            let (specs, _) = build_workload(&mut m, &workload);
            let r = m.run(specs, &[]);
            (r.makespan, r.thread_end.clone(), r.stats.breakdown.clone(),
             m.kernel.counters.clone())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }

    /// Fault injection off must mean *off*: running with no injector at
    /// all, with an empty plan installed, and with a rate-0 chaos plan
    /// installed must produce bit-identical results — makespan, thread
    /// ends, breakdown and counters. This pins the disabled/vacuous fast
    /// path: consults at a decision point may never perturb timing,
    /// accounting or placement unless a fault actually fires.
    #[test]
    fn vacuous_fault_plans_are_byte_identical(
        workload in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u64>()), 0..12),
            1..5,
        ),
        seed in any::<u64>(),
    ) {
        use numa_sim::FaultPlan;
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::opteron_4p();
            if let Some(plan) = plan {
                m.kernel.set_fault_plan(plan);
            }
            let (mut specs, buf) = build_workload(&mut m, &workload);
            // Exercise the syscall decision points too: one thread batch-
            // migrates half the buffer and then does a process-level
            // migration, so MovePagesCopy and MigratePagesCopy consult.
            let pages: Vec<_> = (0..32).map(|p| buf + p * PAGE_SIZE).collect();
            let n = pages.len();
            specs.push(ThreadSpec::scripted(
                CoreId(6),
                vec![
                    Op::MovePages { pages, dest: vec![NodeId(2); n] },
                    Op::MigratePages { from: vec![NodeId(0)], to: vec![NodeId(3)] },
                ],
            ));
            let r = m.run(specs, &[]);
            let placement: Vec<_> = (0..64)
                .map(|p| m.page_node(buf + p * PAGE_SIZE))
                .collect();
            (r.makespan, r.thread_end.clone(), r.stats.breakdown.clone(),
             m.kernel.counters.clone(), placement)
        };
        let disabled = run(None);
        let empty = run(Some(FaultPlan::new(seed)));
        let rate_zero = run(Some(FaultPlan::chaos(seed, 0)));
        prop_assert_eq!(&disabled, &empty, "empty plan diverged from no injector");
        prop_assert_eq!(&disabled, &rate_zero, "rate-0 plan diverged from no injector");
    }

    /// With *disjoint* footprints, a rival thread can only contend for
    /// shared resources, never help — so thread 0's end time with a rival
    /// is at least its solo end time. (With a shared buffer this is
    /// legitimately false: the rival may absorb thread 0's first-touch
    /// faults.)
    #[test]
    fn contention_never_speeds_up_disjoint_threads(
        solo_ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..12,),
        rival_ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..12,),
    ) {
        let build_disjoint = |m: &mut Machine, per_thread: &[Vec<(u8, u64)>]| -> Vec<ThreadSpec> {
            per_thread
                .iter()
                .enumerate()
                .map(|(i, raw)| {
                    let buf = m.alloc(64 * PAGE_SIZE, MemPolicy::FirstTouch);
                    let ops: Vec<Op> = raw
                        .iter()
                        .map(|(kind, arg)| match kind % 3 {
                            0 => Op::ComputeNs(arg % 10_000 + 1),
                            1 => Op::write(
                                buf + (arg % 60) * PAGE_SIZE,
                                2 * PAGE_SIZE,
                                MemAccessKind::Stream,
                            ),
                            _ => Op::read(
                                buf + (arg % 60) * PAGE_SIZE,
                                PAGE_SIZE,
                                MemAccessKind::Blocked,
                            ),
                        })
                        .collect();
                    // Same node so they genuinely contend.
                    ThreadSpec::scripted(CoreId(i as u16 % 4), ops)
                })
                .collect()
        };
        let solo_end = {
            let mut m = Machine::opteron_4p();
            let specs = build_disjoint(&mut m, std::slice::from_ref(&solo_ops));
            m.run(specs, &[]).thread_end[0]
        };
        let contended_end = {
            let mut m = Machine::opteron_4p();
            let specs = build_disjoint(&mut m, &[solo_ops.clone(), rival_ops.clone()]);
            m.run(specs, &[]).thread_end[0]
        };
        prop_assert!(
            contended_end >= solo_end,
            "a disjoint rival cannot make thread 0 faster: {contended_end:?} < {solo_end:?}"
        );
    }

    /// After any workload, the VM invariants hold and every mapped page
    /// is backed by a live frame.
    #[test]
    fn vm_invariants_after_random_runs(
        workload in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u64>()), 0..12),
            1..5,
        )
    ) {
        let mut m = Machine::opteron_4p();
        let (specs, _) = build_workload(&mut m, &workload);
        m.run(specs, &[]);
        m.space.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("vm invariant: {e}"))
        })?;
        let mapped = m.space.page_table.len() as u64;
        prop_assert_eq!(m.frames.live_total(), mapped, "one live frame per mapping");
        for (vpn, pte) in m.space.page_table.iter() {
            prop_assert!(m.frames.get(pte.frame).is_some(), "vpn {} dangling", vpn);
        }
    }

    /// First-touch placement: whatever the interleaving, every page of a
    /// first-touch buffer ends on the node of some thread that wrote it.
    #[test]
    fn first_touch_lands_on_a_toucher(core_picks in proptest::collection::vec(0u16..16, 1..5)) {
        let mut m = Machine::opteron_4p();
        let buf = m.alloc(8 * PAGE_SIZE, MemPolicy::FirstTouch);
        let toucher_nodes: Vec<NodeId> = core_picks
            .iter()
            .map(|c| m.topology().node_of_core(CoreId(*c)))
            .collect();
        let specs: Vec<ThreadSpec> = core_picks
            .iter()
            .map(|c| {
                ThreadSpec::scripted(
                    CoreId(*c),
                    vec![Op::write(buf, 8 * PAGE_SIZE, MemAccessKind::Stream)],
                )
            })
            .collect();
        m.run(specs, &[]);
        for p in 0..8u64 {
            let node = m.page_node(buf + p * PAGE_SIZE).unwrap();
            prop_assert!(
                toucher_nodes.contains(&node),
                "page {} on {:?}, touchers {:?}",
                p, node, toucher_nodes
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Internal consistency of the engine redesign: for a *single* thread
    /// (no concurrency to interleave), executing an access through the
    /// micro-op scheduler must cost exactly the same as the atomic
    /// convenience path — the expansion may not change single-thread
    /// semantics.
    #[test]
    fn micro_op_path_equals_atomic_path_single_thread(
        accesses in proptest::collection::vec((0u64..60, 1u64..3, any::<bool>()), 1..10)
    ) {
        use numa_machine::RunStats;
        use numa_sim::SimTime;

        // Through the engine (micro-ops).
        let engine_ns = {
            let mut m = Machine::opteron_4p();
            let buf = m.alloc(64 * PAGE_SIZE, MemPolicy::FirstTouch);
            let ops: Vec<Op> = accesses
                .iter()
                .map(|(page, pages, write)| Op::Access {
                    addr: buf + page * PAGE_SIZE,
                    bytes: pages * PAGE_SIZE,
                    traffic: pages * PAGE_SIZE,
                    write: *write,
                    kind: MemAccessKind::Blocked,
                })
                .collect();
            m.run(vec![ThreadSpec::scripted(CoreId(5), ops)], &[])
                .makespan
                .ns()
        };

        // Atomic path, same machine state evolution.
        let atomic_ns = {
            let mut m = Machine::opteron_4p();
            let buf = m.alloc(64 * PAGE_SIZE, MemPolicy::FirstTouch);
            let mut stats = RunStats::default();
            let mut t = SimTime::ZERO;
            for (page, pages, write) in &accesses {
                t = m.exec_access(
                    0,
                    CoreId(5),
                    t,
                    buf + page * PAGE_SIZE,
                    pages * PAGE_SIZE,
                    pages * PAGE_SIZE,
                    *write,
                    MemAccessKind::Blocked,
                    &mut stats,
                );
            }
            t.ns()
        };
        prop_assert_eq!(engine_ns, atomic_ns);
    }
}
