//! Thread-to-core scheduling helpers.
//!
//! Workloads that model scheduler behaviour (a thread bouncing between
//! sockets, a runtime re-packing its team) emit [`Op::MigrateThread`]
//! between their compute/access ops. Under the ptplace model a
//! single-home page table that was co-located with the thread follows
//! it (numaPTE-style PT migration); otherwise the op only rebinds the
//! thread's core.

use numa_machine::{Machine, Op};
use numa_topology::{CoreId, NodeId};

/// The op that moves the executing thread onto `core`.
pub fn migrate_to(core: CoreId) -> Op {
    Op::MigrateThread { to: core }
}

/// The op that moves the executing thread onto the first core of `node`.
///
/// Panics if the node has no cores — an experiment-configuration bug.
pub fn migrate_to_node(machine: &Machine, node: NodeId) -> Op {
    let core = *machine
        .topology()
        .cores_of_node(node)
        .first()
        .unwrap_or_else(|| panic!("{node} has no cores to migrate onto"));
    migrate_to(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MemAccessKind, ThreadSpec};
    use numa_stats::Counter;
    use numa_vm::{MemPolicy, PtPlacement, PtSyncMode, PAGE_SIZE};

    #[test]
    fn migrate_op_rebinds_thread_core() {
        let mut m = Machine::opteron_4p();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        // Write from core 0 (node 0), migrate to node 2, write again:
        // the second buffer lands on node 2 by first touch.
        let b = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        let ops = vec![
            Op::write(a, 4 * PAGE_SIZE, MemAccessKind::Stream),
            migrate_to_node(&m, NodeId(2)),
            Op::write(b, 4 * PAGE_SIZE, MemAccessKind::Stream),
        ];
        m.run(vec![ThreadSpec::scripted(CoreId(0), ops)], &[]);
        assert_eq!(m.page_node(a), Some(NodeId(0)));
        assert_eq!(m.page_node(b), Some(NodeId(2)));
    }

    #[test]
    fn colocated_single_home_pt_follows_the_thread() {
        let mut m = Machine::opteron_4p();
        let nodes = m.topology().node_count();
        m.space
            .pt_configure(PtPlacement::SingleHome(NodeId(0)), PtSyncMode::Eager, nodes);
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        let shootdowns_before = m.kernel.counters.get(Counter::TlbShootdowns);
        let ops = vec![
            Op::write(a, 4 * PAGE_SIZE, MemAccessKind::Stream),
            migrate_to_node(&m, NodeId(3)),
            Op::read(a, 4 * PAGE_SIZE, MemAccessKind::Stream),
        ];
        let r = m.run(vec![ThreadSpec::scripted(CoreId(0), ops)], &[]);
        assert_eq!(
            m.space.pt_placement(),
            Some(PtPlacement::SingleHome(NodeId(3))),
            "co-located PT must re-home with the thread"
        );
        assert_eq!(
            m.kernel.counters.get(Counter::TlbShootdowns),
            shootdowns_before + 1,
            "PT migration batches one shootdown"
        );
        assert!(r.makespan.ns() > 0);
    }

    #[test]
    fn remote_home_and_unset_placement_stay_put() {
        // Deliberately-remote home: stays where it was pinned.
        let mut m = Machine::opteron_4p();
        let nodes = m.topology().node_count();
        m.space
            .pt_configure(PtPlacement::SingleHome(NodeId(1)), PtSyncMode::Eager, nodes);
        let a = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
        let ops = vec![
            Op::write(a, PAGE_SIZE, MemAccessKind::Stream),
            migrate_to_node(&m, NodeId(3)),
        ];
        m.run(vec![ThreadSpec::scripted(CoreId(0), ops)], &[]);
        assert_eq!(
            m.space.pt_placement(),
            Some(PtPlacement::SingleHome(NodeId(1)))
        );

        // Placement unset: the op costs nothing at all.
        let mut m = Machine::opteron_4p();
        let mut stats = numa_machine::RunStats::default();
        let end = m.migrate_thread(CoreId(0), CoreId(12), numa_sim::SimTime(77), &mut stats);
        assert_eq!(end, numa_sim::SimTime(77));
    }
}
