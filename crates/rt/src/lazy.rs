//! Migration strategies (paper §3.4).
//!
//! A buffer that needs to follow its threads can be moved three ways:
//!
//! * **Synchronous** — `move_pages` right now, paying the full cost up
//!   front whether or not the data is ever touched again;
//! * **Kernel next-touch** — mark with `madvise`; each page migrates
//!   inside the fault of its first toucher (pages never touched never
//!   move);
//! * **Lazy migration** — the §3.4 idiom: the *destination is already
//!   known* (the thread just moved), but instead of a synchronous call the
//!   buffer is marked next-touch so migration happens "in the background"
//!   of the thread's own first accesses, 30 % faster per page and skipping
//!   untouched pages.
//!
//! [`MigrationStrategy`] packages the three so experiments and
//! applications can switch with one parameter.

use crate::buffer::Buffer;
use numa_machine::Op;
use numa_topology::NodeId;

/// Why a strategy could not be expanded into ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyError {
    /// [`MigrationStrategy::Sync`] was asked to expand without a
    /// destination node; synchronous `move_pages` has nowhere to move to.
    MissingDestination,
    /// [`MigrationStrategy::UserNextTouch`] must expand through
    /// [`crate::UserNextTouch::mark_ops`] so the region registry stays in
    /// sync with the mprotect.
    NeedsRegistry,
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::MissingDestination => {
                write!(
                    f,
                    "MigrationStrategy::Sync needs an explicit destination node"
                )
            }
            StrategyError::NeedsRegistry => {
                write!(
                    f,
                    "use UserNextTouch::mark_ops so the region registry stays in sync"
                )
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// How a workload redistributes buffers after thread migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStrategy {
    /// Leave data where it is (the baseline "Static" columns of Table 1
    /// and Figure 8).
    Static,
    /// Synchronous `move_pages` to a known destination.
    Sync,
    /// Kernel next-touch (`madvise`), destination decided by whoever
    /// touches first.
    KernelNextTouch,
    /// User-space next-touch (mprotect + SIGSEGV), whole-region
    /// granularity. The caller must have a
    /// [`crate::UserNextTouch`] handler installed.
    UserNextTouch,
}

impl MigrationStrategy {
    /// Ops that apply this strategy to `buffer`, with typed failure.
    ///
    /// `dest` is required by [`MigrationStrategy::Sync`] (the known
    /// destination) and ignored by the next-touch strategies (the
    /// toucher decides). [`MigrationStrategy::UserNextTouch`] always
    /// fails here: use [`crate::UserNextTouch::mark_ops`] instead, since
    /// the registry must be updated alongside the mprotect.
    pub fn try_ops(self, buffer: &Buffer, dest: Option<NodeId>) -> Result<Vec<Op>, StrategyError> {
        match self {
            MigrationStrategy::Static => Ok(Vec::new()),
            MigrationStrategy::Sync => {
                let dest = dest.ok_or(StrategyError::MissingDestination)?;
                let pages = buffer.page_addrs();
                let dest = vec![dest; pages.len()];
                Ok(vec![Op::MovePages { pages, dest }])
            }
            MigrationStrategy::KernelNextTouch => Ok(vec![Op::MadviseNextTouch {
                range: buffer.page_range(),
            }]),
            MigrationStrategy::UserNextTouch => Err(StrategyError::NeedsRegistry),
        }
    }

    /// Ops that apply this strategy to `buffer` (infallible convenience).
    ///
    /// A [`MigrationStrategy::Sync`] without a destination degrades to
    /// kernel next-touch — the toucher decides, which is the semantically
    /// closest strategy that needs no destination — instead of dying.
    /// [`MigrationStrategy::UserNextTouch`] still panics: that is an API
    /// misuse ([`crate::UserNextTouch::mark_ops`] keeps the registry in
    /// sync), not a recoverable condition.
    pub fn ops(self, buffer: &Buffer, dest: Option<NodeId>) -> Vec<Op> {
        match self.try_ops(buffer, dest) {
            Ok(ops) => ops,
            Err(StrategyError::MissingDestination) => MigrationStrategy::KernelNextTouch
                .try_ops(buffer, None)
                .expect("kernel next-touch expansion is infallible"),
            Err(e @ StrategyError::NeedsRegistry) => panic!("{e}"),
        }
    }

    /// Short label used by experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            MigrationStrategy::Static => "static",
            MigrationStrategy::Sync => "sync",
            MigrationStrategy::KernelNextTouch => "kernel-nt",
            MigrationStrategy::UserNextTouch => "user-nt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::Machine;
    use numa_vm::PAGE_SIZE;

    #[test]
    fn static_is_empty() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, PAGE_SIZE);
        assert!(MigrationStrategy::Static.ops(&b, None).is_empty());
    }

    #[test]
    fn sync_builds_move_pages() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 3 * PAGE_SIZE);
        let ops = MigrationStrategy::Sync.ops(&b, Some(NodeId(1)));
        match &ops[..] {
            [Op::MovePages { pages, dest }] => {
                assert_eq!(pages.len(), 3);
                assert!(dest.iter().all(|n| *n == NodeId(1)));
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn kernel_nt_builds_madvise() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 2 * PAGE_SIZE);
        let ops = MigrationStrategy::KernelNextTouch.ops(&b, None);
        assert!(matches!(&ops[..], [Op::MadviseNextTouch { range }] if range.pages() == 2));
    }

    #[test]
    fn sync_without_dest_degrades_to_next_touch() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, PAGE_SIZE);
        assert_eq!(
            MigrationStrategy::Sync.try_ops(&b, None).err(),
            Some(StrategyError::MissingDestination)
        );
        let ops = MigrationStrategy::Sync.ops(&b, None);
        assert!(matches!(&ops[..], [Op::MadviseNextTouch { range }] if range.pages() == 1));
    }

    #[test]
    #[should_panic(expected = "mark_ops")]
    fn user_nt_via_strategy_panics() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, PAGE_SIZE);
        MigrationStrategy::UserNextTouch.ops(&b, None);
    }

    #[test]
    fn labels_are_distinct() {
        let all = [
            MigrationStrategy::Static,
            MigrationStrategy::Sync,
            MigrationStrategy::KernelNextTouch,
            MigrationStrategy::UserNextTouch,
        ];
        let mut labels: Vec<_> = all.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
