//! Zero-cost experiment setup.
//!
//! Microbenchmarks need buffers pre-populated on chosen nodes *before* the
//! timed region (the paper times migration from node #0 with data already
//! resident there, Fig. 4/5/7). These helpers drive the kernel fault path
//! directly at virtual time zero and discard the costs, so the timed run
//! starts from a clean, known placement.

use crate::buffer::Buffer;
use numa_kernel::FaultResolution;
use numa_machine::Machine;
use numa_sim::SimTime;
use numa_stats::Breakdown;
use numa_topology::{CoreId, NodeId};
use numa_vm::VirtAddr;
#[cfg(test)]
use numa_vm::PAGE_SIZE;

/// Populate every page of `buffer` on `node` (fault from one of that
/// node's cores), without charging any virtual time.
///
/// Panics if the node has no cores or a fault cannot be resolved — both
/// are experiment-configuration bugs.
pub fn populate_on_node(machine: &mut Machine, buffer: &Buffer, node: NodeId) {
    let core = *machine
        .topology()
        .cores_of_node(node)
        .first()
        .unwrap_or_else(|| panic!("{node} has no cores to populate from"));
    populate_from_core(machine, buffer, core);
}

/// Populate every page of `buffer` by faulting from `core` (placement
/// follows the buffer's policy), without charging any virtual time.
pub fn populate_from_core(machine: &mut Machine, buffer: &Buffer, core: CoreId) {
    for vpn in buffer.page_range().iter() {
        let addr = page_touch_addr(buffer, vpn);
        if machine
            .space
            .page_table
            .get(machine.resolve_vpn(addr))
            .map(|p| p.permits(true))
            .unwrap_or(false)
        {
            continue;
        }
        match machine.kernel.handle_fault(
            &mut machine.space,
            &mut machine.frames,
            &mut machine.tlb,
            SimTime::ZERO,
            core,
            addr,
            true,
            &mut Breakdown::new(),
        ) {
            FaultResolution::Resolved { .. } => {}
            other => panic!("setup fault at {addr} not resolved: {other:?}"),
        }
    }
}

/// Assert that every page of `buffer` resides on `node` (test/bench
/// postcondition).
pub fn assert_resident_on(machine: &Machine, buffer: &Buffer, node: NodeId) {
    for vpn in buffer.page_range().iter() {
        let addr = page_touch_addr(buffer, vpn);
        let got = machine.page_node(addr);
        assert_eq!(
            got,
            Some(node),
            "page {vpn} of buffer at {} is on {got:?}, expected {node}",
            buffer.addr
        );
    }
}

/// Count pages of `buffer` per node, in node order (diagnostics).
pub fn residency_histogram(machine: &Machine, buffer: &Buffer) -> Vec<u64> {
    let mut hist = vec![0u64; machine.topology().node_count()];
    for vpn in buffer.page_range().iter() {
        if let Some(node) = machine.page_node(page_touch_addr(buffer, vpn)) {
            hist[node.index()] += 1;
        }
    }
    hist
}

fn page_touch_addr(buffer: &Buffer, vpn: u64) -> VirtAddr {
    let a = VirtAddr::from_vpn(vpn);
    if a.raw() < buffer.addr.raw() {
        buffer.addr
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_places_all_pages() {
        let mut m = Machine::opteron_4p();
        let b = Buffer::alloc(&mut m, 16 * PAGE_SIZE);
        populate_on_node(&mut m, &b, NodeId(2));
        assert_resident_on(&m, &b, NodeId(2));
        let hist = residency_histogram(&m, &b);
        assert_eq!(hist, vec![0, 0, 16, 0]);
    }

    #[test]
    fn populate_is_idempotent() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 4 * PAGE_SIZE);
        populate_on_node(&mut m, &b, NodeId(1));
        let allocated = m.frames.allocated_total();
        populate_on_node(&mut m, &b, NodeId(1));
        assert_eq!(m.frames.allocated_total(), allocated, "no re-allocation");
    }

    #[test]
    fn histogram_counts_unpopulated_as_nothing() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 4 * PAGE_SIZE);
        assert_eq!(residency_histogram(&m, &b), vec![0, 0]);
    }
}
