//! The user-space runtime.
//!
//! What an application links against on the paper's machine:
//!
//! * [`buffer`] — NUMA-aware allocation (`numa_alloc_*` analogues);
//! * [`next_touch`] — the **user-space** next-touch library of §3.2
//!   (Figure 1): `mprotect(PROT_NONE)` marking, a SIGSEGV handler that
//!   migrates whole registered regions with `move_pages` and restores
//!   protection;
//! * [`lazy`] — the migration-strategy helpers: synchronous `move_pages`,
//!   kernel next-touch marking, and the §3.4 *lazy migration* idiom;
//! * [`omp`] — an OpenMP-like runtime: teams, `parallel_for` with static
//!   and dynamic schedules, single regions, implicit barriers — what the
//!   paper's `#pragma omp parallel for` loops compile to;
//! * [`sched`] — thread-to-core migration ops (under the ptplace model,
//!   a co-located page table follows the thread, numaPTE-style);
//! * [`setup`] — zero-cost experiment setup (pre-populating buffers on
//!   chosen nodes before the timed run);
//! * [`autobalance`] — an AutoNUMA-style *automatic* balancer (periodic
//!   sampling scans instead of application hooks), for comparing the
//!   paper's explicit next-touch against what Linux later mainlined.

pub mod autobalance;
pub mod buffer;
pub mod lazy;
pub mod next_touch;
pub mod omp;
pub mod retry;
pub mod sched;
pub mod setup;
pub mod tenant;

pub use autobalance::{AutoBalance, AutoBalanceState};
pub use buffer::Buffer;
pub use lazy::{MigrationStrategy, StrategyError};
pub use next_touch::UserNextTouch;
pub use omp::{Schedule, Team, WorkPlan};
pub use retry::RetryPolicy;
pub use tenant::{build_tenant, TenantProfile};
