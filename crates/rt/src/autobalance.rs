//! Automatic NUMA balancing — the road not taken by the paper.
//!
//! The paper's next-touch needs the *application* (or its OpenMP runtime)
//! to say when redistribution is worthwhile (§3.4: "entering a new
//! parallel section is usually a natural event"). What Linux eventually
//! mainlined instead (AutoNUMA, 2012) drops the hint entirely: the kernel
//! periodically unmaps sampled pages so the next touch faults, and
//! migrates pages that fault from a remote node.
//!
//! [`AutoBalance`] retrofits that behaviour onto any [`crate::WorkPlan`]: every
//! `period` phases it splices in a scanner phase that next-touch-marks a
//! *sample* of the registered buffers' pages. Comparing it against the
//! paper's explicit hooks quantifies what the hint is worth: the explicit
//! hook marks exactly the data about to be used, the sampler spends faults
//! on data that never moves and misses data that should.

use crate::buffer::Buffer;
use numa_machine::Op;
use numa_sim::Splitmix64;
use numa_vm::PageRange;

/// Configuration of the automatic balancer.
#[derive(Debug, Clone)]
pub struct AutoBalance {
    /// Insert a scan every this many plan phases.
    pub period: usize,
    /// Fraction of each buffer's pages marked per scan, in percent
    /// (AutoNUMA's task_scan_size analogue).
    pub sample_percent: u64,
    /// PRNG seed for sample selection.
    pub seed: u64,
}

impl Default for AutoBalance {
    fn default() -> Self {
        AutoBalance {
            period: 2,
            sample_percent: 25,
            seed: 0x5ca1ab1e,
        }
    }
}

impl AutoBalance {
    /// The marking ops of one scan over `buffers`: a deterministic random
    /// sample of page runs, `sample_percent` of each buffer.
    pub fn scan_ops(&self, buffers: &[Buffer], scan_index: u64) -> Vec<Op> {
        let mut rng = Splitmix64::new(self.seed ^ scan_index.wrapping_mul(0x9E37));
        let mut ops = Vec::new();
        for b in buffers {
            let range = b.page_range();
            let pages = range.pages();
            if pages == 0 {
                continue;
            }
            let want = (pages * self.sample_percent).div_ceil(100).max(1);
            // Mark `want` pages as a handful of contiguous runs (the
            // scanner walks VMAs linearly, so samples are runs, not
            // scattered single pages).
            let runs = want.div_ceil(16).max(1);
            let run_len = want.div_ceil(runs);
            for _ in 0..runs {
                let start = range.start_vpn + rng.below(pages);
                let end = (start + run_len).min(range.end_vpn);
                ops.push(Op::MadviseNextTouch {
                    range: PageRange::new(start, end),
                });
            }
        }
        ops
    }
}

/// Splice automatic scans into a plan-building loop: call
/// [`AutoBalanceState::maybe_scan`] once per phase you append; it returns
/// the scanner ops to prepend (as a `single` phase) when a scan is due.
#[derive(Debug)]
pub struct AutoBalanceState {
    config: AutoBalance,
    buffers: Vec<Buffer>,
    phase_count: usize,
    scan_count: u64,
}

impl AutoBalanceState {
    /// Track `buffers` with the given configuration.
    pub fn new(config: AutoBalance, buffers: Vec<Buffer>) -> Self {
        AutoBalanceState {
            config,
            buffers,
            phase_count: 0,
            scan_count: 0,
        }
    }

    /// Register another buffer mid-run (AutoNUMA scans whatever is
    /// mapped).
    pub fn track(&mut self, buffer: Buffer) {
        self.buffers.push(buffer);
    }

    /// Advance one phase; when a scan is due, return its marking ops.
    pub fn maybe_scan(&mut self) -> Option<Vec<Op>> {
        self.phase_count += 1;
        if self.config.period == 0 || !self.phase_count.is_multiple_of(self.config.period) {
            return None;
        }
        self.scan_count += 1;
        let ops = self.config.scan_ops(&self.buffers, self.scan_count);
        if ops.is_empty() {
            None
        } else {
            Some(ops)
        }
    }

    /// Scans performed so far.
    pub fn scans(&self) -> u64 {
        self.scan_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{Machine, MemAccessKind};
    use numa_rt_test_helpers::*;
    use numa_topology::NodeId;
    use numa_vm::PAGE_SIZE;

    // Local alias so the test body below reads naturally.
    mod numa_rt_test_helpers {
        pub use crate::omp::{Schedule, Team, WorkPlan};
        pub use crate::setup;
    }

    #[test]
    fn scan_ops_are_deterministic_and_bounded() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 64 * PAGE_SIZE);
        let cfg = AutoBalance::default();
        let a1 = cfg.scan_ops(&[b], 1);
        let a2 = cfg.scan_ops(&[b], 1);
        assert_eq!(a1.len(), a2.len(), "same scan index, same sample");
        let marked: u64 = a1
            .iter()
            .map(|op| match op {
                Op::MadviseNextTouch { range } => range.pages(),
                _ => 0,
            })
            .sum();
        // 25% of 64 pages, within run-rounding slack.
        assert!((8..=24).contains(&marked), "marked {marked}");
        // Different scans sample differently.
        let b1 = cfg.scan_ops(&[b], 2);
        assert!(
            a1.iter()
                .zip(&b1)
                .any(|(x, y)| format!("{x:?}") != format!("{y:?}")),
            "scan 2 should differ from scan 1"
        );
    }

    #[test]
    fn periodic_scans_fire_on_schedule() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 16 * PAGE_SIZE);
        let mut st = AutoBalanceState::new(
            AutoBalance {
                period: 3,
                ..AutoBalance::default()
            },
            vec![b],
        );
        let fired: Vec<bool> = (0..9).map(|_| st.maybe_scan().is_some()).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(st.scans(), 3);
    }

    /// End-to-end: with all data parked on node 0 and all work on node 1,
    /// automatic scanning migrates a growing fraction of the data without
    /// any application hook — slower to converge than an explicit hook,
    /// but it gets there.
    #[test]
    fn auto_scans_converge_toward_locality() {
        let mut m = Machine::opteron_4p();
        let buf = Buffer::alloc(&mut m, 128 * PAGE_SIZE);
        setup::populate_on_node(&mut m, &buf, NodeId(0));
        let mut st = AutoBalanceState::new(
            AutoBalance {
                period: 1,
                sample_percent: 30,
                seed: 9,
            },
            vec![buf],
        );

        let mut plan = WorkPlan::new();
        for _ in 0..10 {
            if let Some(scan) = st.maybe_scan() {
                plan.single(move || scan.clone());
            }
            // All the work happens on node 1.
            plan.parallel_for(4, Schedule::Static, move |_| {
                vec![Op::Access {
                    addr: buf.addr,
                    bytes: buf.len,
                    traffic: buf.len,
                    write: false,
                    kind: MemAccessKind::Blocked,
                }]
            });
        }
        Team::on_node(&m, NodeId(1)).run(&mut m, plan);

        let hist = setup::residency_histogram(&m, &buf);
        assert!(
            hist[1] > 90,
            "after 10 scans most pages should have migrated to node 1: {hist:?}"
        );
    }
}
