//! Tenant-churn workload builder for the sharded multitenant engine.
//!
//! Models the tenant lifecycle of a multitenant host in the style of
//! *Revisiting Page Migration for Main-Memory Database Systems*: each
//! tenant process runs generations of `mmap → populate → mark
//! next-touch → move cores → re-touch (pulling its pages across the
//! interconnect) → explicit `move_pages` → `munmap`, with a
//! deterministic per-tenant RNG varying buffer sizes, cores, and phase
//! lengths so a thousand tenants don't march in lockstep.
//!
//! Buffers for every generation are mapped up front (address-space
//! bookkeeping is untimed; frames are only allocated at first touch),
//! so the simulated churn is entirely faults, migrations, TLB
//! shootdowns and frees — the traffic the frame ledger meters.

use numa_machine::{Machine, MemAccessKind, Op, TenantRun, ThreadSpec};
use numa_sim::Splitmix64;
use numa_topology::{CoreId, Topology};
use numa_vm::{MemPolicy, PAGE_SIZE};
use std::sync::Arc;

/// Shape of one tenant's churn, all knobs in pages/ops.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Workload seed; combined with the tenant id so every tenant is
    /// distinct but reproducible.
    pub seed: u64,
    /// mmap → churn → munmap cycles per tenant.
    pub generations: usize,
    /// Smallest per-generation buffer, in pages.
    pub min_pages: u64,
    /// Largest per-generation buffer, in pages (inclusive).
    pub max_pages: u64,
    /// Upper bound on the initial stagger and inter-phase think time, ns.
    pub think_ns: u64,
}

impl Default for TenantProfile {
    fn default() -> Self {
        TenantProfile {
            seed: 0x7e4a_4475,
            generations: 2,
            min_pages: 3,
            max_pages: 6,
            think_ns: 4_000,
        }
    }
}

/// Build tenant `id`'s machine and script over `topo`.
///
/// The kernel runs with the deterministic OOM-kill policy enabled: a
/// tenant that outruns its granted frame capacity loses its allocating
/// thread (Linux `oom_kill_allocating_task`) instead of panicking the
/// host — under ledger pressure that is a workload condition, not a bug.
pub fn build_tenant(topo: &Arc<Topology>, id: usize, profile: &TenantProfile) -> TenantRun {
    let mut config = numa_kernel::KernelConfig::default();
    config.pressure.oom_kill = true;
    let mut machine = Machine::new(topo.clone(), config);

    let mut rng = Splitmix64::new(profile.seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let cores = topo.core_count() as u64;
    let home = CoreId(rng.below(cores) as u16);
    let away = CoreId(((home.0 as u64 + 1 + rng.below(cores - 1)) % cores) as u16);

    let mut ops = Vec::new();
    ops.push(Op::ComputeNs(1 + rng.below(profile.think_ns.max(1))));
    for _ in 0..profile.generations {
        let pages = profile.min_pages + rng.below(profile.max_pages - profile.min_pages + 1);
        let bytes = pages * PAGE_SIZE;
        let buf = machine.alloc(bytes, MemPolicy::FirstTouch);
        let range = machine.space.find_vma(buf).expect("fresh mapping").range;

        // Populate on the home core (first touch places the frames).
        ops.push(Op::write(buf, bytes, MemAccessKind::Stream));
        ops.push(Op::ComputeNs(1 + rng.below(profile.think_ns.max(1))));
        // Mark a prefix for kernel next-touch, move to the away core, and
        // re-touch everything: marked pages migrate inside their faults
        // and land local; the unmarked tail stays home and is accessed
        // remotely — the exact trade the paper's next-touch exists to win.
        let marked = 1 + rng.below(pages);
        ops.push(Op::MadviseNextTouch {
            range: numa_vm::PageRange::new(range.start_vpn, range.start_vpn + marked),
        });
        ops.push(Op::MigrateThread { to: away });
        ops.push(Op::read(buf, bytes, MemAccessKind::Random));
        // Explicitly push a prefix of the pages somewhere else — the
        // `move_pages` half of the churn (§2.3 of the paper).
        let moved = 1 + rng.below(pages);
        let dest = topo.node_of_core(home);
        ops.push(Op::MovePages {
            pages: (0..moved).map(|p| buf + p * PAGE_SIZE).collect(),
            dest: vec![dest; moved as usize],
        });
        // Re-read the moved prefix from the away core: these accesses now
        // cross the interconnect (the remote-access cost the churn pays
        // for placing data near the *next* phase instead of this one).
        ops.push(Op::read(buf, moved * PAGE_SIZE, MemAccessKind::Random));
        ops.push(Op::ComputeNs(1 + rng.below(profile.think_ns.max(1))));
        // Generation over: give the frames back.
        ops.push(Op::Munmap { addr: buf });
        ops.push(Op::MigrateThread { to: home });
    }

    TenantRun {
        machine,
        threads: vec![ThreadSpec::scripted(home, ops)],
        barrier_sizes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_script_runs_to_completion() {
        let topo = Arc::new(numa_topology::presets::opteron_4p());
        let profile = TenantProfile::default();
        let TenantRun {
            mut machine,
            threads,
            barrier_sizes,
        } = build_tenant(&topo, 7, &profile);
        let r = machine.run(threads, &barrier_sizes);
        assert!(r.makespan.ns() > 0);
        // All generations unmapped: no frames left live.
        assert_eq!(machine.frames.live_total(), 0, "munmap recycled frames");
        assert!(machine.frames.freed_total() > 0);
    }

    #[test]
    fn distinct_tenants_distinct_schedules() {
        let topo = Arc::new(numa_topology::presets::opteron_4p());
        let profile = TenantProfile::default();
        let run = |id| {
            let TenantRun {
                mut machine,
                threads,
                barrier_sizes,
            } = build_tenant(&topo, id, &profile);
            machine.run(threads, &barrier_sizes).makespan
        };
        assert_ne!(run(1), run(2), "seeded variation");
        assert_eq!(run(3), run(3), "reproducible");
    }
}
