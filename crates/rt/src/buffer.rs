//! NUMA-aware buffers (the `numa_alloc_onnode` / `numa_alloc_interleaved`
//! analogues from libnuma, §2.3).

use numa_machine::Machine;
use numa_topology::NodeId;
use numa_vm::{MemPolicy, PageRange, VirtAddr, PAGE_SIZE};

/// A simulated user-space buffer: base address plus length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// First byte.
    pub addr: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl Buffer {
    /// Allocate `len` bytes with first-touch placement.
    pub fn alloc(machine: &mut Machine, len: u64) -> Buffer {
        let addr = machine.alloc(len, MemPolicy::FirstTouch);
        Buffer { addr, len }
    }

    /// Allocate `len` bytes bound to `node` (`numa_alloc_onnode`).
    pub fn alloc_on(machine: &mut Machine, len: u64, node: NodeId) -> Buffer {
        let addr = machine.alloc(len, MemPolicy::Bind(node));
        Buffer { addr, len }
    }

    /// Allocate `len` bytes interleaved across all nodes
    /// (`numa_alloc_interleaved` — the paper's best static policy for LU,
    /// §4.5).
    pub fn alloc_interleaved(machine: &mut Machine, len: u64) -> Buffer {
        let nodes = machine.topology().node_count();
        let addr = machine.alloc(len, MemPolicy::interleave_all(nodes));
        Buffer { addr, len }
    }

    /// The pages spanned by this buffer.
    pub fn page_range(&self) -> PageRange {
        PageRange::covering(self.addr, self.len)
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.page_range().pages()
    }

    /// A sub-buffer at `[offset, offset+len)`.
    pub fn slice(&self, offset: u64, len: u64) -> Buffer {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {}) exceeds buffer of {} bytes",
            offset + len,
            self.len
        );
        Buffer {
            addr: self.addr + offset,
            len,
        }
    }

    /// Split into `n` contiguous, page-aligned chunks (last chunk takes
    /// the remainder). Used to hand one chunk per migration thread
    /// (Fig. 7).
    pub fn split_pages(&self, n: usize) -> Vec<Buffer> {
        let total_pages = self.pages();
        let per = total_pages / n as u64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let start_page = i * per;
            let end_page = if i == n as u64 - 1 {
                total_pages
            } else {
                (i + 1) * per
            };
            if end_page <= start_page {
                continue;
            }
            let off = start_page * PAGE_SIZE;
            let len = ((end_page - start_page) * PAGE_SIZE).min(self.len - off);
            out.push(self.slice(off, len));
        }
        out
    }

    /// Addresses of every page in the buffer (inputs for `move_pages`).
    pub fn page_addrs(&self) -> Vec<VirtAddr> {
        self.page_range()
            .iter()
            .map(VirtAddr::from_vpn)
            .map(|a| {
                if a.raw() < self.addr.raw() {
                    self.addr
                } else {
                    a
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_variants_have_expected_policies() {
        let mut m = Machine::two_node();
        let a = Buffer::alloc(&mut m, 4 * PAGE_SIZE);
        assert_eq!(
            m.space.find_vma(a.addr).unwrap().policy,
            MemPolicy::FirstTouch
        );
        let b = Buffer::alloc_on(&mut m, PAGE_SIZE, NodeId(1));
        assert_eq!(
            m.space.find_vma(b.addr).unwrap().policy,
            MemPolicy::Bind(NodeId(1))
        );
        let c = Buffer::alloc_interleaved(&mut m, PAGE_SIZE);
        assert!(matches!(
            m.space.find_vma(c.addr).unwrap().policy,
            MemPolicy::Interleave(_)
        ));
    }

    #[test]
    fn page_math() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 3 * PAGE_SIZE + 1);
        assert_eq!(b.pages(), 4);
        assert_eq!(b.page_addrs().len(), 4);
    }

    #[test]
    fn slice_and_split() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let s = b.slice(2 * PAGE_SIZE, PAGE_SIZE);
        assert_eq!(s.addr, b.addr + 2 * PAGE_SIZE);
        let parts = b.split_pages(3);
        assert_eq!(parts.len(), 3);
        let total: u64 = parts.iter().map(|p| p.pages()).sum();
        assert_eq!(total, 8);
        // Chunks are disjoint and ordered.
        assert!(parts[0].addr < parts[1].addr && parts[1].addr < parts[2].addr);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversized_slice_panics() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, PAGE_SIZE);
        b.slice(0, 2 * PAGE_SIZE);
    }

    #[test]
    fn split_more_chunks_than_pages() {
        let mut m = Machine::two_node();
        let b = Buffer::alloc(&mut m, 2 * PAGE_SIZE);
        let parts = b.split_pages(4);
        let total: u64 = parts.iter().map(|p| p.pages()).sum();
        assert_eq!(total, 2);
    }
}
