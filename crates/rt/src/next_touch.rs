//! The user-space next-touch library (paper §3.2, Figure 1).
//!
//! Marking: `mprotect(PROT_NONE)` over the buffer, remembering the region
//! in a registry. Faulting: the kernel raises SIGSEGV; the handler looks
//! up the registered region containing the faulting address, migrates the
//! *entire region* to the toucher's node with `move_pages` (this is the
//! variable-granularity advantage the paper highlights: "the user library
//! may migrate larger or more complex areas (for instance a matrix
//! column)"), restores the protection with a second `mprotect`, and
//! returns so the faulting access can retry.
//!
//! ```
//! use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
//! use numa_rt::{setup, Buffer, UserNextTouch};
//! use numa_topology::{CoreId, NodeId};
//!
//! let mut machine = Machine::opteron_4p();
//! let buf = Buffer::alloc(&mut machine, 1 << 20);
//! setup::populate_on_node(&mut machine, &buf, NodeId(0));
//!
//! let nt = UserNextTouch::new();
//! machine.set_segv_handler(nt.handler());
//! let mut ops = nt.mark_ops(&buf);
//! // Touch one byte from a node-3 core: the whole region follows.
//! ops.push(Op::read(buf.addr, 1, MemAccessKind::Stream));
//! machine.run(vec![ThreadSpec::scripted(CoreId(12), ops)], &[]);
//! assert_eq!(machine.page_node(buf.addr), Some(NodeId(3)));
//! ```

use crate::buffer::Buffer;
use crate::retry::RetryPolicy;
use numa_kernel::PageStatus;
use numa_machine::{Machine, Op, RunStats, SegvHandler};
use numa_sim::{SimTime, TraceEventKind};
use numa_stats::{CostComponent, Counter};
use numa_topology::CoreId;
use numa_vm::{PageRange, Protection, VirtAddr};
use std::cell::RefCell;
use std::rc::Rc;

/// One registered migrate-on-next-touch region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    range: PageRange,
    /// Protection to restore after migration.
    restore: Protection,
}

/// Shared registry between the marking API and the signal handler.
type Registry = Rc<RefCell<Vec<Region>>>;

/// The user-space next-touch runtime.
///
/// Create one, install [`UserNextTouch::handler`] on the machine, then
/// emit [`UserNextTouch::mark_ops`] from the thread that wants to mark a
/// buffer. Every region is migrated at most once per marking.
#[derive(Debug, Clone, Default)]
pub struct UserNextTouch {
    registry: Registry,
    policy: RetryPolicy,
}

impl UserNextTouch {
    /// A fresh runtime with an empty registry and the default
    /// [`RetryPolicy`].
    pub fn new() -> Self {
        UserNextTouch::default()
    }

    /// A runtime whose handler retries transiently failed pages per
    /// `policy` before degrading (leaving them on their source node).
    pub fn with_retry_policy(policy: RetryPolicy) -> Self {
        UserNextTouch {
            registry: Registry::default(),
            policy,
        }
    }

    /// The SIGSEGV handler to install via
    /// [`Machine::set_segv_handler`].
    pub fn handler(&self) -> Box<dyn SegvHandler> {
        Box::new(NtSegvHandler {
            registry: Rc::clone(&self.registry),
            policy: self.policy,
        })
    }

    /// Ops that mark `buffer` as migrate-on-next-touch at user level, as
    /// one region (whole-buffer granularity).
    pub fn mark_ops(&self, buffer: &Buffer) -> Vec<Op> {
        self.mark_regions_ops(std::slice::from_ref(buffer))
    }

    /// Ops that mark several sub-regions independently (e.g. one region
    /// per matrix column): each region migrates as a unit when any of its
    /// pages is touched.
    pub fn mark_regions_ops(&self, regions: &[Buffer]) -> Vec<Op> {
        let mut ops = Vec::with_capacity(regions.len());
        let mut reg = self.registry.borrow_mut();
        for b in regions {
            let range = b.page_range();
            // Re-marking an already-registered region is idempotent.
            if !reg.iter().any(|r| r.range == range) {
                reg.push(Region {
                    range,
                    restore: Protection::ReadWrite,
                });
            }
            ops.push(Op::Mprotect {
                range,
                prot: Protection::None,
                component: CostComponent::MprotectMark,
            });
        }
        ops
    }

    /// Number of regions still awaiting their next touch.
    pub fn pending(&self) -> usize {
        self.registry.borrow().len()
    }
}

struct NtSegvHandler {
    registry: Registry,
    policy: RetryPolicy,
}

impl NtSegvHandler {
    /// Migrate `pages` to `dest`, re-issuing transiently failed (`EBUSY`)
    /// pages per the retry policy, then degrading gracefully: pages that
    /// keep failing — or the whole call, if the syscall itself errors —
    /// stay on their source node and the workload keeps running. Returns
    /// the virtual time the last attempt finished.
    fn move_with_retry(
        &self,
        machine: &mut Machine,
        now: SimTime,
        core: CoreId,
        pages: Vec<VirtAddr>,
        dest: numa_topology::NodeId,
        stats: &mut RunStats,
    ) -> SimTime {
        let mut t = now;
        let mut pending = pages;
        let mut attempts_left = self.policy.max_attempts;
        loop {
            let dest_nodes = vec![dest; pending.len()];
            let r = match machine.kernel.move_pages(
                &mut machine.space,
                &mut machine.frames,
                &mut machine.tlb,
                t,
                core,
                &pending,
                &dest_nodes,
            ) {
                Ok(r) => r,
                Err(_) => {
                    // The whole call failed: degrade rather than abort
                    // the workload — the region simply stays put.
                    for p in &pending {
                        machine.kernel.counters.bump(Counter::MigrationsDegraded);
                        machine.trace.record(
                            t,
                            TraceEventKind::MigrationDegraded {
                                page: p.vpn(),
                                reason: "syscall_error",
                            },
                        );
                    }
                    return t;
                }
            };
            stats.breakdown.merge(&r.outcome.breakdown);
            t = r.outcome.end;
            let busy: Vec<VirtAddr> = pending
                .iter()
                .zip(&r.status)
                .filter(|(_, s)| **s == PageStatus::Busy)
                .map(|(p, _)| *p)
                .collect();
            if busy.is_empty() {
                return t;
            }
            // Degrade when the budget runs out — or earlier, when the
            // kernel's retry-livelock watchdog reports that retries have
            // stopped making progress machine-wide (backing off further
            // would only prolong the livelock).
            let give_up = if attempts_left == 0 {
                Some("retries_exhausted")
            } else if !machine.kernel.watchdog_allow_retry(t) {
                Some("watchdog")
            } else {
                None
            };
            if let Some(reason) = give_up {
                for p in &busy {
                    machine.kernel.counters.bump(Counter::MigrationsGaveUp);
                    machine.trace.record(
                        t,
                        TraceEventKind::MigrationDegraded {
                            page: p.vpn(),
                            reason,
                        },
                    );
                }
                return t;
            }
            for p in &busy {
                machine.kernel.counters.bump(Counter::MigrationRetries);
                machine.trace.record(
                    t,
                    TraceEventKind::MigrationRetry {
                        page: p.vpn(),
                        attempts_left,
                    },
                );
            }
            attempts_left -= 1;
            t += self.policy.backoff_ns;
            pending = busy;
        }
    }
}

impl SegvHandler for NtSegvHandler {
    fn on_segv(
        &mut self,
        machine: &mut Machine,
        tid: usize,
        core: CoreId,
        addr: VirtAddr,
        now: SimTime,
        stats: &mut RunStats,
    ) -> SimTime {
        machine.trace.record_for(
            now,
            tid,
            numa_sim::TraceEventKind::OpStart {
                op: "user_nt_handler",
            },
        );
        // Find and remove the region containing the fault.
        let region = {
            let mut reg = self.registry.borrow_mut();
            let idx = reg.iter().position(|r| r.range.contains(addr.vpn()));
            match idx {
                Some(i) => reg.swap_remove(i),
                None => panic!(
                    "thread {tid} SIGSEGV at {addr} outside any registered \
                     next-touch region — genuine protection bug in the workload"
                ),
            }
        };

        let dest = machine.node_of_core(core);
        // Migrate the whole region to the toucher's node with the
        // (patched) move_pages — region granularity is the point (§3.4).
        // Transient failures are retried per the policy; pages that keep
        // failing stay put and the workload continues.
        let pages: Vec<VirtAddr> = region.range.iter().map(VirtAddr::from_vpn).collect();
        let moved_end = self.move_with_retry(machine, now, core, pages, dest, stats);

        // Restore protection so the retried touch (and everyone else)
        // proceeds — even for degraded pages, which must again be
        // accessible at their old home. The expect below is an invariant,
        // not error handling: the handler restores exactly the range it
        // protected earlier, so mprotect can only fail if the registry
        // itself is corrupt.
        let r2 = machine
            .kernel
            .mprotect(
                &mut machine.space,
                &mut machine.tlb,
                moved_end,
                core,
                region.range,
                region.restore,
                CostComponent::MprotectRestore,
            )
            .expect("mprotect restore inside SIGSEGV handler");
        stats.breakdown.merge(&r2.breakdown);
        machine.trace.record_for(
            now,
            tid,
            numa_sim::TraceEventKind::OpEnd {
                op: "user_nt_handler",
                dur_ns: r2.end.since(now),
            },
        );
        r2.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MemAccessKind, ThreadSpec};
    use numa_topology::NodeId;
    use numa_vm::PAGE_SIZE;

    /// End-to-end Figure-1 flow: populate on node 0, mark, touch from
    /// node 1, observe the whole region migrated and protection restored.
    #[test]
    fn user_next_touch_migrates_whole_region() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let nt = UserNextTouch::new();
        m.set_segv_handler(nt.handler());

        // Thread 0 on node 0 populates and marks; thread 1 on node 1
        // touches one page after the barrier.
        let mut ops0 = vec![Op::write(buf.addr, buf.len, MemAccessKind::Stream)];
        ops0.extend(nt.mark_ops(&buf));
        ops0.push(Op::Barrier(0));
        let ops1 = vec![
            Op::Barrier(0),
            // Touch only the 3rd page: the whole region must follow.
            Op::read(buf.addr + 2 * PAGE_SIZE, 8, MemAccessKind::Stream),
        ];
        let threads = vec![
            ThreadSpec::scripted(CoreId(0), ops0),
            ThreadSpec::scripted(CoreId(2), ops1),
        ];
        let r = m.run(threads, &[2]);

        for p in 0..8u64 {
            assert_eq!(
                m.page_node(buf.addr + p * PAGE_SIZE),
                Some(NodeId(1)),
                "page {p} must have migrated with the region"
            );
        }
        assert_eq!(nt.pending(), 0, "region consumed by its first touch");
        assert!(
            r.stats.breakdown.get(CostComponent::MovePagesCopy) > 0,
            "user NT path pays move_pages copies"
        );
        assert!(
            r.stats.breakdown.get(CostComponent::PageFaultSignal) > 0,
            "signal delivery must be charged"
        );
        assert!(r.stats.breakdown.get(CostComponent::MprotectRestore) > 0);
    }

    #[test]
    fn per_column_regions_migrate_independently() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let cols: Vec<Buffer> = (0..2)
            .map(|c| buf.slice(c * 4 * PAGE_SIZE, 4 * PAGE_SIZE))
            .collect();
        let nt = UserNextTouch::new();
        m.set_segv_handler(nt.handler());

        let mut ops0 = vec![Op::write(buf.addr, buf.len, MemAccessKind::Stream)];
        ops0.extend(nt.mark_regions_ops(&cols));
        ops0.push(Op::Barrier(0));
        let ops1 = vec![
            Op::Barrier(0),
            // Touch only column 1.
            Op::read(cols[1].addr, 8, MemAccessKind::Stream),
        ];
        m.run(
            vec![
                ThreadSpec::scripted(CoreId(0), ops0),
                ThreadSpec::scripted(CoreId(2), ops1),
            ],
            &[2],
        );
        // Column 1 migrated, column 0 did not (still pending).
        assert_eq!(m.page_node(cols[1].addr), Some(NodeId(1)));
        assert_eq!(m.page_node(cols[0].addr), Some(NodeId(0)));
        assert_eq!(nt.pending(), 1);
    }

    #[test]
    fn marking_is_idempotent_in_registry() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, PAGE_SIZE);
        let nt = UserNextTouch::new();
        let _ = nt.mark_ops(&buf);
        let _ = nt.mark_ops(&buf);
        assert_eq!(nt.pending(), 1);
    }
}
