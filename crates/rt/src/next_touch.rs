//! The user-space next-touch library (paper §3.2, Figure 1).
//!
//! Marking: `mprotect(PROT_NONE)` over the buffer, remembering the region
//! in a registry. Faulting: the kernel raises SIGSEGV; the handler looks
//! up the registered region containing the faulting address, migrates the
//! *entire region* to the toucher's node with `move_pages` (this is the
//! variable-granularity advantage the paper highlights: "the user library
//! may migrate larger or more complex areas (for instance a matrix
//! column)"), restores the protection with a second `mprotect`, and
//! returns so the faulting access can retry.
//!
//! ```
//! use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
//! use numa_rt::{setup, Buffer, UserNextTouch};
//! use numa_topology::{CoreId, NodeId};
//!
//! let mut machine = Machine::opteron_4p();
//! let buf = Buffer::alloc(&mut machine, 1 << 20);
//! setup::populate_on_node(&mut machine, &buf, NodeId(0));
//!
//! let nt = UserNextTouch::new();
//! machine.set_segv_handler(nt.handler());
//! let mut ops = nt.mark_ops(&buf);
//! // Touch one byte from a node-3 core: the whole region follows.
//! ops.push(Op::read(buf.addr, 1, MemAccessKind::Stream));
//! machine.run(vec![ThreadSpec::scripted(CoreId(12), ops)], &[]);
//! assert_eq!(machine.page_node(buf.addr), Some(NodeId(3)));
//! ```

use crate::buffer::Buffer;
use numa_machine::{Machine, Op, RunStats, SegvHandler};
use numa_sim::SimTime;
use numa_stats::CostComponent;
use numa_topology::CoreId;
use numa_vm::{PageRange, Protection, VirtAddr};
use std::cell::RefCell;
use std::rc::Rc;

/// One registered migrate-on-next-touch region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    range: PageRange,
    /// Protection to restore after migration.
    restore: Protection,
}

/// Shared registry between the marking API and the signal handler.
type Registry = Rc<RefCell<Vec<Region>>>;

/// The user-space next-touch runtime.
///
/// Create one, install [`UserNextTouch::handler`] on the machine, then
/// emit [`UserNextTouch::mark_ops`] from the thread that wants to mark a
/// buffer. Every region is migrated at most once per marking.
#[derive(Debug, Clone, Default)]
pub struct UserNextTouch {
    registry: Registry,
}

impl UserNextTouch {
    /// A fresh runtime with an empty registry.
    pub fn new() -> Self {
        UserNextTouch::default()
    }

    /// The SIGSEGV handler to install via
    /// [`Machine::set_segv_handler`].
    pub fn handler(&self) -> Box<dyn SegvHandler> {
        Box::new(NtSegvHandler {
            registry: Rc::clone(&self.registry),
        })
    }

    /// Ops that mark `buffer` as migrate-on-next-touch at user level, as
    /// one region (whole-buffer granularity).
    pub fn mark_ops(&self, buffer: &Buffer) -> Vec<Op> {
        self.mark_regions_ops(std::slice::from_ref(buffer))
    }

    /// Ops that mark several sub-regions independently (e.g. one region
    /// per matrix column): each region migrates as a unit when any of its
    /// pages is touched.
    pub fn mark_regions_ops(&self, regions: &[Buffer]) -> Vec<Op> {
        let mut ops = Vec::with_capacity(regions.len());
        let mut reg = self.registry.borrow_mut();
        for b in regions {
            let range = b.page_range();
            // Re-marking an already-registered region is idempotent.
            if !reg.iter().any(|r| r.range == range) {
                reg.push(Region {
                    range,
                    restore: Protection::ReadWrite,
                });
            }
            ops.push(Op::Mprotect {
                range,
                prot: Protection::None,
                component: CostComponent::MprotectMark,
            });
        }
        ops
    }

    /// Number of regions still awaiting their next touch.
    pub fn pending(&self) -> usize {
        self.registry.borrow().len()
    }
}

struct NtSegvHandler {
    registry: Registry,
}

impl SegvHandler for NtSegvHandler {
    fn on_segv(
        &mut self,
        machine: &mut Machine,
        tid: usize,
        core: CoreId,
        addr: VirtAddr,
        now: SimTime,
        stats: &mut RunStats,
    ) -> SimTime {
        machine.trace.record_for(
            now,
            tid,
            numa_sim::TraceEventKind::OpStart {
                op: "user_nt_handler",
            },
        );
        // Find and remove the region containing the fault.
        let region = {
            let mut reg = self.registry.borrow_mut();
            let idx = reg.iter().position(|r| r.range.contains(addr.vpn()));
            match idx {
                Some(i) => reg.swap_remove(i),
                None => panic!(
                    "thread {tid} SIGSEGV at {addr} outside any registered \
                     next-touch region — genuine protection bug in the workload"
                ),
            }
        };

        let dest = machine.node_of_core(core);
        // Migrate the whole region to the toucher's node with the
        // (patched) move_pages — region granularity is the point (§3.4).
        let pages: Vec<VirtAddr> = region.range.iter().map(VirtAddr::from_vpn).collect();
        let dest_nodes = vec![dest; pages.len()];
        let r = machine
            .kernel
            .move_pages(
                &mut machine.space,
                &mut machine.frames,
                &mut machine.tlb,
                now,
                core,
                &pages,
                &dest_nodes,
            )
            .expect("move_pages inside SIGSEGV handler");
        stats.breakdown.merge(&r.outcome.breakdown);

        // Restore protection so the retried touch (and everyone else)
        // proceeds.
        let r2 = machine
            .kernel
            .mprotect(
                &mut machine.space,
                &mut machine.tlb,
                r.outcome.end,
                core,
                region.range,
                region.restore,
                CostComponent::MprotectRestore,
            )
            .expect("mprotect restore inside SIGSEGV handler");
        stats.breakdown.merge(&r2.breakdown);
        machine.trace.record_for(
            now,
            tid,
            numa_sim::TraceEventKind::OpEnd {
                op: "user_nt_handler",
                dur_ns: r2.end.since(now),
            },
        );
        r2.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MemAccessKind, ThreadSpec};
    use numa_topology::NodeId;
    use numa_vm::PAGE_SIZE;

    /// End-to-end Figure-1 flow: populate on node 0, mark, touch from
    /// node 1, observe the whole region migrated and protection restored.
    #[test]
    fn user_next_touch_migrates_whole_region() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let nt = UserNextTouch::new();
        m.set_segv_handler(nt.handler());

        // Thread 0 on node 0 populates and marks; thread 1 on node 1
        // touches one page after the barrier.
        let mut ops0 = vec![Op::write(buf.addr, buf.len, MemAccessKind::Stream)];
        ops0.extend(nt.mark_ops(&buf));
        ops0.push(Op::Barrier(0));
        let ops1 = vec![
            Op::Barrier(0),
            // Touch only the 3rd page: the whole region must follow.
            Op::read(buf.addr + 2 * PAGE_SIZE, 8, MemAccessKind::Stream),
        ];
        let threads = vec![
            ThreadSpec::scripted(CoreId(0), ops0),
            ThreadSpec::scripted(CoreId(2), ops1),
        ];
        let r = m.run(threads, &[2]);

        for p in 0..8u64 {
            assert_eq!(
                m.page_node(buf.addr + p * PAGE_SIZE),
                Some(NodeId(1)),
                "page {p} must have migrated with the region"
            );
        }
        assert_eq!(nt.pending(), 0, "region consumed by its first touch");
        assert!(
            r.stats.breakdown.get(CostComponent::MovePagesCopy) > 0,
            "user NT path pays move_pages copies"
        );
        assert!(
            r.stats.breakdown.get(CostComponent::PageFaultSignal) > 0,
            "signal delivery must be charged"
        );
        assert!(r.stats.breakdown.get(CostComponent::MprotectRestore) > 0);
    }

    #[test]
    fn per_column_regions_migrate_independently() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, 8 * PAGE_SIZE);
        let cols: Vec<Buffer> = (0..2)
            .map(|c| buf.slice(c * 4 * PAGE_SIZE, 4 * PAGE_SIZE))
            .collect();
        let nt = UserNextTouch::new();
        m.set_segv_handler(nt.handler());

        let mut ops0 = vec![Op::write(buf.addr, buf.len, MemAccessKind::Stream)];
        ops0.extend(nt.mark_regions_ops(&cols));
        ops0.push(Op::Barrier(0));
        let ops1 = vec![
            Op::Barrier(0),
            // Touch only column 1.
            Op::read(cols[1].addr, 8, MemAccessKind::Stream),
        ];
        m.run(
            vec![
                ThreadSpec::scripted(CoreId(0), ops0),
                ThreadSpec::scripted(CoreId(2), ops1),
            ],
            &[2],
        );
        // Column 1 migrated, column 0 did not (still pending).
        assert_eq!(m.page_node(cols[1].addr), Some(NodeId(1)));
        assert_eq!(m.page_node(cols[0].addr), Some(NodeId(0)));
        assert_eq!(nt.pending(), 1);
    }

    #[test]
    fn marking_is_idempotent_in_registry() {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, PAGE_SIZE);
        let nt = UserNextTouch::new();
        let _ = nt.mark_ops(&buf);
        let _ = nt.mark_ops(&buf);
        assert_eq!(nt.pending(), 1);
    }
}
