//! Bounded retry and graceful degradation for user-space migration paths.
//!
//! A migration that fails transiently (`EBUSY`-like per-page status) is
//! worth re-issuing a few times; one that keeps failing is not worth
//! crashing over — the page simply stays on its source node and the
//! workload keeps running at remote-access speed. [`RetryPolicy`] bounds
//! the first and guarantees the second, for both the user-space
//! next-touch SIGSEGV handler ([`crate::UserNextTouch`]) and the tiering
//! daemon.

/// How a user-space migration path responds to transient failures:
/// up to [`RetryPolicy::max_attempts`] re-issues, each preceded by a
/// virtual-time backoff, then graceful degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues allowed after the initial attempt. Zero degrades on the
    /// first failure.
    pub max_attempts: u32,
    /// Virtual time waited before each re-issue, in ns. The wait extends
    /// the caller's makespan but is not charged to any cost component —
    /// it is idle time, not work.
    pub backoff_ns: u64,
}

impl Default for RetryPolicy {
    /// Three re-issues, 5 µs apart — comfortably longer than a page copy,
    /// so a genuinely transient holder has time to drain.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ns: 5_000,
        }
    }
}

impl RetryPolicy {
    /// Degrade immediately on any failure; never re-issue.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retries_a_few_times() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts > 0);
        assert!(p.backoff_ns > 0);
    }

    #[test]
    fn none_never_retries() {
        assert_eq!(RetryPolicy::none().max_attempts, 0);
    }
}
