//! An OpenMP-like runtime for the simulated machine.
//!
//! The paper parallelises its LU update loops with
//! `#pragma omp parallel for` and inserts next-touch hooks at iteration
//! starts (§4.5). This module gives workloads the same vocabulary:
//!
//! * a [`Team`] of threads pinned one per core;
//! * a [`WorkPlan`] of sequential *phases*, each ended by an implicit
//!   barrier: [`WorkPlan::parallel_for`] (static or dynamic schedule),
//!   [`WorkPlan::single`] (one thread works, the team waits) and
//!   [`WorkPlan::each_thread`] (every thread contributes its own ops);
//! * deterministic execution on the machine's DES engine.
//!
//! With the GCC OpenMP runtime "there is no guarantee about which thread
//! will compute which block on which processor" (§4.5) — the dynamic
//! schedule reproduces exactly that assignment unpredictability, which is
//! why the next-touch policy (rather than clairvoyant placement) is needed
//! in the first place.
//!
//! ```
//! use numa_machine::{Machine, Op};
//! use numa_rt::{Schedule, Team, WorkPlan};
//!
//! let mut machine = Machine::opteron_4p();
//! let mut plan = WorkPlan::new();
//! // #pragma omp parallel for schedule(dynamic, 4)
//! plan.parallel_for(100, Schedule::Dynamic(4), |_i| {
//!     vec![Op::ComputeNs(1_000)]
//! });
//! let result = Team::all_cores(&machine).run(&mut machine, plan);
//! // 100 x 1 us of work over 16 cores: roughly 7 us of virtual time.
//! assert!(result.makespan.ns() < 100_000);
//! ```

use numa_machine::{Machine, Op, Program, RunResult, ThreadSpec};
use numa_topology::{CoreId, NodeId};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Overhead of claiming a chunk from the shared iteration counter
/// (the `GOMP_loop_dynamic_next` analogue).
const DYNAMIC_CLAIM_NS: u64 = 80;

/// Loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks, iteration `i` on thread `i * T / n` — GCC's
    /// `schedule(static)`.
    Static,
    /// First-come chunks of the given size from a shared counter —
    /// `schedule(dynamic, chunk)`.
    Dynamic(usize),
    /// Exponentially shrinking first-come chunks with the given minimum —
    /// `schedule(guided, min)`: each claim takes half of the remaining
    /// iterations divided by the team size, so early claims are large
    /// (low claiming overhead) and late claims are small (good balance).
    Guided(usize),
}

type ForBody = Rc<RefCell<dyn FnMut(usize) -> Vec<Op>>>;
type SingleBody = Rc<RefCell<dyn FnMut() -> Vec<Op>>>;
type SingleCtxBody = Rc<RefCell<dyn FnMut(&Machine) -> Vec<Op>>>;
type ThreadBody = Rc<RefCell<dyn FnMut(usize) -> Vec<Op>>>;

enum Phase {
    ParallelFor {
        iters: usize,
        schedule: Schedule,
        body: ForBody,
        counter: Rc<Cell<usize>>,
    },
    Single {
        body: SingleBody,
    },
    SingleCtx {
        body: SingleCtxBody,
    },
    EachThread {
        body: ThreadBody,
    },
}

/// A linear sequence of barrier-separated phases.
#[derive(Default)]
pub struct WorkPlan {
    phases: Vec<Phase>,
}

impl WorkPlan {
    /// An empty plan.
    pub fn new() -> Self {
        WorkPlan::default()
    }

    /// Append a `parallel for` over `iters` iterations; `body(i)` returns
    /// the ops iteration `i` performs.
    pub fn parallel_for<F>(&mut self, iters: usize, schedule: Schedule, body: F) -> &mut Self
    where
        F: FnMut(usize) -> Vec<Op> + 'static,
    {
        self.phases.push(Phase::ParallelFor {
            iters,
            schedule,
            body: Rc::new(RefCell::new(body)),
            counter: Rc::new(Cell::new(0)),
        });
        self
    }

    /// Append a single region: thread 0 runs `body`, everyone else waits
    /// at the closing barrier.
    pub fn single<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut() -> Vec<Op> + 'static,
    {
        self.phases.push(Phase::Single {
            body: Rc::new(RefCell::new(body)),
        });
        self
    }

    /// Append a single region whose body inspects the machine at phase
    /// *execution* time (not plan-construction time): thread 0 runs
    /// `body(&machine)`, everyone else waits at the closing barrier.
    ///
    /// This is how daemons are spliced into a plan — e.g. the tiering
    /// daemon scans the live heat counters and page placement to decide
    /// what to promote or demote *now*, mid-run.
    pub fn single_ctx<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(&Machine) -> Vec<Op> + 'static,
    {
        self.phases.push(Phase::SingleCtx {
            body: Rc::new(RefCell::new(body)),
        });
        self
    }

    /// Append a phase where every thread runs `body(tid)`.
    pub fn each_thread<F>(&mut self, body: F) -> &mut Self
    where
        F: FnMut(usize) -> Vec<Op> + 'static,
    {
        self.phases.push(Phase::EachThread {
            body: Rc::new(RefCell::new(body)),
        });
        self
    }

    /// Number of phases queued.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when no phases are queued.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// A team of simulated threads, one per listed core.
#[derive(Debug, Clone)]
pub struct Team {
    /// The cores the team's threads are pinned to, in thread-id order.
    pub cores: Vec<CoreId>,
}

impl Team {
    /// One thread on every core of the machine (the paper's 16-thread
    /// configuration on the 4×4 Opteron).
    pub fn all_cores(machine: &Machine) -> Team {
        Team {
            cores: machine.topology().core_ids().collect(),
        }
    }

    /// One thread on every core of `node` (Fig. 7's same-node migration
    /// threads).
    pub fn on_node(machine: &Machine, node: NodeId) -> Team {
        Team {
            cores: machine.topology().cores_of_node(node),
        }
    }

    /// The first `n` cores of this team.
    pub fn take(&self, n: usize) -> Team {
        Team {
            cores: self.cores.iter().copied().take(n).collect(),
        }
    }

    /// Team size.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when the team has no threads.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Execute `plan` on `machine` with this team. Phases are separated
    /// by team-wide barriers; the run ends when every thread exhausts the
    /// plan.
    pub fn run(&self, machine: &mut Machine, plan: WorkPlan) -> RunResult {
        assert!(!self.cores.is_empty(), "cannot run a plan on an empty team");
        let phases: Rc<Vec<Phase>> = Rc::new(plan.phases);
        let nthreads = self.cores.len();
        let threads: Vec<ThreadSpec> = self
            .cores
            .iter()
            .enumerate()
            .map(|(tid, core)| {
                ThreadSpec::new(*core, thread_program(tid, nthreads, Rc::clone(&phases)))
            })
            .collect();
        machine.run(threads, &[nthreads])
    }
}

/// Build the op generator for one team thread.
fn thread_program(tid: usize, nthreads: usize, phases: Rc<Vec<Phase>>) -> Program {
    let mut buf: VecDeque<Op> = VecDeque::new();
    let mut phase_idx = 0usize;
    // For static schedules: the next local iteration and this thread's
    // [start, end) block in the current phase.
    let mut static_cursor = 0usize;
    let mut entered_phase = usize::MAX;

    Box::new(move |ctx| loop {
        if let Some(op) = buf.pop_front() {
            return Some(op);
        }
        if phase_idx >= phases.len() {
            return None;
        }
        match &phases[phase_idx] {
            Phase::ParallelFor {
                iters,
                schedule,
                body,
                counter,
            } => match schedule {
                Schedule::Static => {
                    if entered_phase != phase_idx {
                        entered_phase = phase_idx;
                        static_cursor = tid * iters / nthreads;
                    }
                    let end = (tid + 1) * iters / nthreads;
                    if static_cursor < end {
                        let i = static_cursor;
                        static_cursor += 1;
                        buf.extend(body.borrow_mut()(i));
                    } else {
                        buf.push_back(Op::Barrier(0));
                        phase_idx += 1;
                    }
                }
                Schedule::Dynamic(_) | Schedule::Guided(_) => {
                    let c = counter.get();
                    if c < *iters {
                        let chunk = match schedule {
                            Schedule::Dynamic(chunk) => (*chunk).max(1),
                            Schedule::Guided(min) => {
                                ((iters - c) / (2 * nthreads)).max((*min).max(1))
                            }
                            Schedule::Static => unreachable!(),
                        };
                        let hi = (c + chunk).min(*iters);
                        counter.set(hi);
                        buf.push_back(Op::ComputeNs(DYNAMIC_CLAIM_NS));
                        let mut b = body.borrow_mut();
                        for i in c..hi {
                            buf.extend(b(i));
                        }
                    } else {
                        buf.push_back(Op::Barrier(0));
                        phase_idx += 1;
                    }
                }
            },
            Phase::Single { body } => {
                if tid == 0 {
                    buf.extend(body.borrow_mut()());
                }
                buf.push_back(Op::Barrier(0));
                phase_idx += 1;
            }
            Phase::SingleCtx { body } => {
                if tid == 0 {
                    buf.extend(body.borrow_mut()(ctx.machine));
                }
                buf.push_back(Op::Barrier(0));
                phase_idx += 1;
            }
            Phase::EachThread { body } => {
                buf.extend(body.borrow_mut()(tid));
                buf.push_back(Op::Barrier(0));
                phase_idx += 1;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::SimTime;

    #[test]
    fn team_shapes() {
        let m = Machine::opteron_4p();
        assert_eq!(Team::all_cores(&m).len(), 16);
        assert_eq!(Team::on_node(&m, NodeId(1)).len(), 4);
        assert_eq!(Team::all_cores(&m).take(3).len(), 3);
    }

    #[test]
    fn static_schedule_covers_all_iterations_once() {
        let mut m = Machine::opteron_4p();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = Rc::clone(&seen);
        let mut plan = WorkPlan::new();
        plan.parallel_for(37, Schedule::Static, move |i| {
            seen2.borrow_mut().push(i);
            vec![Op::ComputeNs(10)]
        });
        let team = Team::all_cores(&m);
        team.run(&mut m, plan);
        let mut v = seen.borrow().clone();
        v.sort();
        assert_eq!(v, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_schedule_covers_all_iterations_once() {
        let mut m = Machine::opteron_4p();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = Rc::clone(&seen);
        let mut plan = WorkPlan::new();
        plan.parallel_for(100, Schedule::Dynamic(3), move |i| {
            seen2.borrow_mut().push(i);
            vec![Op::ComputeNs(5)]
        });
        Team::all_cores(&m).run(&mut m, plan);
        let mut v = seen.borrow().clone();
        v.sort();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn guided_schedule_covers_all_iterations_once() {
        let mut m = Machine::opteron_4p();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = Rc::clone(&seen);
        let mut plan = WorkPlan::new();
        plan.parallel_for(173, Schedule::Guided(2), move |i| {
            seen2.borrow_mut().push(i);
            vec![Op::ComputeNs(5)]
        });
        Team::all_cores(&m).run(&mut m, plan);
        let mut v = seen.borrow().clone();
        v.sort();
        assert_eq!(v, (0..173).collect::<Vec<_>>());
    }

    #[test]
    fn guided_claims_fewer_chunks_than_dynamic1() {
        // Guided's claiming overhead (one claim op per chunk) must be far
        // below dynamic(1)'s one-claim-per-iteration.
        let claims = |schedule| {
            let mut m = Machine::opteron_4p();
            let mut plan = WorkPlan::new();
            plan.parallel_for(256, schedule, |_| vec![Op::ComputeNs(1_000)]);
            let r = Team::all_cores(&m).take(4).run(&mut m, plan);
            // Each claim costs DYNAMIC_CLAIM_NS of Compute on top of the
            // 256 x 1000ns bodies; recover the claim count.
            let compute = r.stats.breakdown.get(numa_stats::CostComponent::Compute);
            (compute - 256_000) / DYNAMIC_CLAIM_NS
        };
        let dynamic1 = claims(Schedule::Dynamic(1));
        let guided = claims(Schedule::Guided(1));
        assert_eq!(dynamic1, 256);
        assert!(guided < 64, "guided made {guided} claims");
    }

    #[test]
    fn dynamic_balances_uneven_work() {
        // One long iteration plus many short ones: dynamic beats static
        // because the long iteration does not anchor a whole block.
        let run = |schedule| {
            let mut m = Machine::opteron_4p();
            let mut plan = WorkPlan::new();
            plan.parallel_for(64, schedule, |i| {
                vec![Op::ComputeNs(if i == 0 { 100_000 } else { 1_000 })]
            });
            Team::all_cores(&m).take(4).run(&mut m, plan).makespan
        };
        let stat = run(Schedule::Static);
        let dyn_ = run(Schedule::Dynamic(1));
        assert!(dyn_ <= stat, "dynamic {dyn_} vs static {stat}");
    }

    #[test]
    fn single_runs_once_and_blocks_team() {
        let mut m = Machine::opteron_4p();
        let count = Rc::new(Cell::new(0));
        let c2 = Rc::clone(&count);
        let mut plan = WorkPlan::new();
        plan.single(move || {
            c2.set(c2.get() + 1);
            vec![Op::ComputeNs(500)]
        });
        let r = Team::all_cores(&m).run(&mut m, plan);
        assert_eq!(count.get(), 1);
        // Everyone waits for the single region.
        assert!(r.thread_end.iter().all(|t| *t >= SimTime(500)));
    }

    #[test]
    fn single_ctx_sees_live_machine_state() {
        use numa_machine::MemAccessKind;
        use numa_vm::{MemPolicy, PAGE_SIZE};
        let mut m = Machine::opteron_4p();
        let a = m.alloc(PAGE_SIZE, MemPolicy::FirstTouch);
        let observed = Rc::new(Cell::new(None));
        let o2 = Rc::clone(&observed);
        let mut plan = WorkPlan::new();
        // Phase 1 populates the page; the single_ctx phase must observe
        // its placement, which did not exist at plan-construction time.
        plan.each_thread(move |tid| {
            if tid == 0 {
                vec![Op::write(a, PAGE_SIZE, MemAccessKind::Stream)]
            } else {
                vec![]
            }
        });
        plan.single_ctx(move |machine| {
            o2.set(machine.page_node(a));
            vec![]
        });
        Team::all_cores(&m).take(2).run(&mut m, plan);
        assert_eq!(observed.get(), Some(NodeId(0)));
    }

    #[test]
    fn each_thread_runs_per_tid() {
        let mut m = Machine::opteron_4p();
        let tids = Rc::new(RefCell::new(Vec::new()));
        let t2 = Rc::clone(&tids);
        let mut plan = WorkPlan::new();
        plan.each_thread(move |tid| {
            t2.borrow_mut().push(tid);
            vec![]
        });
        Team::all_cores(&m).take(5).run(&mut m, plan);
        let mut v = tids.borrow().clone();
        v.sort();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn phases_execute_in_order_with_barriers_between() {
        let mut m = Machine::opteron_4p();
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let mut plan = WorkPlan::new();
        plan.parallel_for(8, Schedule::Static, move |_| {
            l1.borrow_mut().push(1);
            vec![Op::ComputeNs(10)]
        });
        plan.parallel_for(8, Schedule::Static, move |_| {
            l2.borrow_mut().push(2);
            vec![Op::ComputeNs(10)]
        });
        Team::all_cores(&m).take(4).run(&mut m, plan);
        let v = log.borrow();
        let first_two = v.iter().position(|x| *x == 2).unwrap();
        assert!(
            v[..first_two].iter().all(|x| *x == 1),
            "no phase-2 body may run before phase 1 completes generation"
        );
    }

    #[test]
    #[should_panic(expected = "empty team")]
    fn empty_team_rejected() {
        let mut m = Machine::two_node();
        let team = Team { cores: vec![] };
        team.run(&mut m, WorkPlan::new());
    }
}
