//! Property-based tests for the runtime: OpenMP-like schedules cover
//! every iteration exactly once, buffers split losslessly, and the user
//! next-touch registry behaves.

use numa_machine::{Machine, Op};
use numa_rt::{Buffer, Schedule, Team, WorkPlan};
use numa_vm::PAGE_SIZE;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any schedule, any team size, any iteration count: each iteration
    /// body runs exactly once.
    #[test]
    fn schedules_cover_iterations_exactly_once(
        iters in 0usize..200,
        team in 1usize..16,
        dynamic in any::<bool>(),
        chunk in 1usize..8,
    ) {
        let mut m = Machine::opteron_4p();
        let seen = Rc::new(RefCell::new(vec![0u32; iters]));
        let seen2 = Rc::clone(&seen);
        let schedule = if dynamic { Schedule::Dynamic(chunk) } else { Schedule::Static };
        let mut plan = WorkPlan::new();
        plan.parallel_for(iters, schedule, move |i| {
            seen2.borrow_mut()[i] += 1;
            vec![Op::ComputeNs(10)]
        });
        Team::all_cores(&m).take(team).run(&mut m, plan);
        prop_assert!(
            seen.borrow().iter().all(|c| *c == 1),
            "coverage: {:?}",
            seen.borrow()
        );
    }

    /// Multi-phase plans preserve phase ordering for every thread count:
    /// all of phase k generates before any of phase k+1.
    #[test]
    fn phases_are_ordered(team in 1usize..16, phases in 1usize..5, iters in 1usize..20) {
        let mut m = Machine::opteron_4p();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut plan = WorkPlan::new();
        for ph in 0..phases {
            let l = Rc::clone(&log);
            plan.parallel_for(iters, Schedule::Dynamic(1), move |_| {
                l.borrow_mut().push(ph);
                vec![Op::ComputeNs(7)]
            });
        }
        Team::all_cores(&m).take(team).run(&mut m, plan);
        let v = log.borrow();
        prop_assert_eq!(v.len(), phases * iters);
        for w in v.windows(2) {
            prop_assert!(w[0] <= w[1], "phase order violated: {:?}", &v[..]);
        }
    }

    /// Buffer::split_pages is a lossless partition: chunks are disjoint,
    /// ordered, page-aligned and cover every page.
    #[test]
    fn split_pages_partitions(pages in 1u64..200, parts in 1usize..20) {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, pages * PAGE_SIZE);
        let chunks = buf.split_pages(parts);
        let mut covered = Vec::new();
        let mut prev_end = buf.page_range().start_vpn;
        for c in &chunks {
            let r = c.page_range();
            prop_assert_eq!(r.start_vpn, prev_end, "contiguous");
            prop_assert!(c.addr.is_page_aligned() || c.addr == buf.addr);
            prev_end = r.end_vpn;
            covered.extend(r.iter());
        }
        prop_assert_eq!(prev_end, buf.page_range().end_vpn);
        prop_assert_eq!(covered.len() as u64, pages);
    }

    /// Slicing is closed: any in-bounds slice has the right base and
    /// length, and page addresses stay within the parent.
    #[test]
    fn slices_stay_in_bounds(
        len in 1u64..100_000,
        off_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let mut m = Machine::two_node();
        let buf = Buffer::alloc(&mut m, len);
        let off = (len as f64 * off_frac) as u64;
        let slen = (((len - off) as f64) * len_frac).max(1.0) as u64;
        prop_assume!(off + slen <= len);
        let s = buf.slice(off, slen);
        prop_assert_eq!(s.addr.raw(), buf.addr.raw() + off);
        for a in s.page_addrs() {
            prop_assert!(a.raw() >= buf.addr.raw());
            prop_assert!(a.raw() < buf.addr.raw() + len);
        }
    }
}
