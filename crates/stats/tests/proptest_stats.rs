//! Property-based tests for the instrumentation primitives.

use numa_stats::{Breakdown, CostComponent, Counter, Counters, Histogram};
use proptest::prelude::*;

fn component(i: u8) -> CostComponent {
    CostComponent::ALL[i as usize % CostComponent::ALL.len()]
}

proptest! {
    /// Breakdown totals equal the sum of adds; percentages sum to ~100
    /// whenever anything was recorded.
    #[test]
    fn breakdown_totals(adds in proptest::collection::vec((0u8..16, 0u64..1_000_000), 1..60)) {
        let mut b = Breakdown::new();
        let mut sum = 0u64;
        for (c, ns) in &adds {
            b.add(component(*c), *ns);
            sum += ns;
        }
        prop_assert_eq!(b.total(), sum);
        if sum > 0 {
            let pct: f64 = CostComponent::ALL.iter().map(|c| b.percent(*c)).sum();
            prop_assert!((pct - 100.0).abs() < 1e-6, "percent sum {pct}");
        }
    }

    /// merge(a, b) == element-wise addition, and is commutative.
    #[test]
    fn breakdown_merge_commutes(
        xs in proptest::collection::vec((0u8..16, 0u64..100_000), 0..30),
        ys in proptest::collection::vec((0u8..16, 0u64..100_000), 0..30),
    ) {
        let build = |items: &[(u8, u64)]| {
            let mut b = Breakdown::new();
            for (c, ns) in items {
                b.add(component(*c), *ns);
            }
            b
        };
        let (a, b) = (build(&xs), build(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        for c in CostComponent::ALL {
            prop_assert_eq!(ab.get(c), a.get(c) + b.get(c));
        }
    }

    /// Histogram invariants: count/sum/min/max track the sample set, the
    /// quantile never under-reports, and merge equals concatenation.
    #[test]
    fn histogram_matches_samples(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        q in 0.0f64..1.0,
    ) {
        let mut hx = Histogram::new();
        for x in &xs { hx.record(*x); }
        prop_assert_eq!(hx.count(), xs.len() as u64);
        prop_assert_eq!(hx.sum(), xs.iter().sum::<u64>());
        prop_assert_eq!(hx.min(), xs.iter().min().copied());
        prop_assert_eq!(hx.max(), xs.iter().max().copied());

        // Quantile upper bound: at least ceil(q*n) samples are <= it.
        if q > 0.0 {
            let bound = hx.quantile(q).unwrap();
            let target = (q * xs.len() as f64).ceil().max(1.0) as usize;
            let covered = xs.iter().filter(|x| **x <= bound).count();
            prop_assert!(covered >= target, "q={q} bound={bound} covered={covered}/{target}");
        }

        // Merge == concatenation.
        let mut hy = Histogram::new();
        for y in &ys { hy.record(*y); }
        let mut merged = hx.clone();
        merged.merge(&hy);
        let mut all = Histogram::new();
        for v in xs.iter().chain(&ys) { all.record(*v); }
        prop_assert_eq!(merged, all);
    }

    /// Counters: merge is addition; clear resets; iteration order stable.
    #[test]
    fn counters_merge_adds(
        xs in proptest::collection::vec(0u64..1000, 1..20),
        ys in proptest::collection::vec(0u64..1000, 1..20),
    ) {
        let keys = [
            Counter::FirstTouchFaults,
            Counter::NextTouchFaults,
            Counter::PagesMovedSyscall,
            Counter::TlbShootdowns,
            Counter::CacheHits,
        ];
        let build = |vals: &[u64]| {
            let mut c = Counters::new();
            for (i, v) in vals.iter().enumerate() {
                c.add(keys[i % keys.len()], *v);
            }
            c
        };
        let (a, b) = (build(&xs), build(&ys));
        let mut m = a.clone();
        m.merge(&b);
        for k in keys {
            prop_assert_eq!(m.get(k), a.get(k) + b.get(k));
        }
        let mut cleared = m.clone();
        cleared.clear();
        for k in keys {
            prop_assert_eq!(cleared.get(k), 0);
        }
    }

    /// mb_per_s is scale-invariant: same ratio, same rate.
    #[test]
    fn mbps_scale_invariant(bytes in 1u64..1_000_000, ns in 1u64..1_000_000, k in 1u64..50) {
        let a = numa_stats::mb_per_s(bytes, ns);
        let b = numa_stats::mb_per_s(bytes * k, ns * k);
        prop_assert!((a - b).abs() < a.abs() * 1e-9 + 1e-9);
    }
}
