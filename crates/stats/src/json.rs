//! Hand-rolled JSON values, writer and parser.
//!
//! The vendored `serde` shim is derive-only and serializes nothing, so the
//! observability layer (Chrome trace export, machine-readable results)
//! builds JSON through this module instead. Objects keep insertion order —
//! output is byte-deterministic for a fixed input, which the determinism
//! tests rely on.
//!
//! The parser exists so tests and the CI smoke job can validate emitted
//! files without external tooling. It accepts standard JSON; numbers are
//! parsed as `f64` unless they fit an integer exactly.

use std::fmt;

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer (most simulator quantities are u64 nanoseconds).
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style; panics on non-objects).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to f64, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                use fmt::Write;
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        // Keep integral floats readable and stable.
                        let _ = write!(out, "{:.1}", v);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    // JSON has no Inf/NaN; emit null rather than invalid output.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a readable error with a byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serializes to a compact JSON string (`to_string()` comes with it).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("short \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates map to the replacement char; the writer
                        // never emits them so this only affects foreign input.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (input is &str so this is valid).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_ordered_objects() {
        let j = Json::obj()
            .set("b", 1u64)
            .set("a", "x")
            .set("list", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(j.to_string(), r#"{"b":1,"a":"x","list":[1,null]}"#);
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn roundtrip_through_parser() {
        let j = Json::obj()
            .set("name", "fig5")
            .set("seed", 42u64)
            .set("neg", Json::I64(-7))
            .set("ratio", 0.25)
            .set("ok", true)
            .set("rows", Json::Arr(vec![Json::Str("a,b".into())]));
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let j = Json::parse(" { \"k\" : [ 1 , -2.5 , \"\\u0041\\n\" ] } ").unwrap();
        let arr = j.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        // Chrome trace "ts" fields are floats; keep them recognisably float.
        assert_eq!(Json::F64(3.0).to_string(), "3.0");
        assert_eq!(Json::F64(3.5).to_string(), "3.5");
    }
}
