//! Per-component cost accounting.
//!
//! The paper's Figure 6 decomposes the total next-touch migration cost into
//! stacked percentage bars: for the user-space path `move_pages()` copy,
//! `move_pages()` control, the `mprotect` restore, the page fault + signal
//! handler, and the initial `mprotect` marking; for the kernel path the page
//! copy, the fault + migration control, and the `madvise` marking.
//!
//! [`Breakdown`] accumulates virtual nanoseconds per [`CostComponent`] so the
//! harness can regenerate exactly those stacks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cost category in the migration pipeline.
///
/// The variants mirror the stacked components of Figure 6 in the paper, plus
/// the extra categories used by the application-level experiments. The set is
/// closed (an enum rather than free-form strings) so that experiment output
/// is stable and typo-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CostComponent {
    /// `madvise(MADV_MIGRATE_NEXT_TOUCH)` marking cost (kernel next-touch).
    Madvise,
    /// `mprotect(PROT_NONE)` marking cost (user next-touch).
    MprotectMark,
    /// `mprotect` restore cost inside the SIGSEGV handler (user next-touch).
    MprotectRestore,
    /// Hardware page-fault plus (for the user path) signal delivery and
    /// handler entry/exit.
    PageFaultSignal,
    /// `move_pages()` control: locking, page-table walks, status copy-out.
    MovePagesControl,
    /// `move_pages()` actual page copy.
    MovePagesCopy,
    /// Kernel next-touch fault path control: flag check, PTE update,
    /// page-table locking.
    FaultControl,
    /// Kernel next-touch fault path page copy.
    FaultCopy,
    /// The destination-node lookup that the un-patched `move_pages`
    /// performs per page (quadratic term, §3.1).
    QuadraticLookup,
    /// TLB shootdown / flush cost.
    TlbFlush,
    /// Time spent waiting on contended kernel locks (mmap lock,
    /// page-table lock, zone lock).
    LockWait,
    /// `migrate_pages()` whole-process traversal cost.
    MigratePagesWalk,
    /// Application compute time.
    Compute,
    /// Application memory-access stall time.
    MemoryAccess,
    /// Anything not covered by a dedicated component.
    Other,
}

impl CostComponent {
    /// All variants, in a stable display order (stack order of Figure 6).
    pub const ALL: [CostComponent; 15] = [
        CostComponent::Madvise,
        CostComponent::MprotectMark,
        CostComponent::MprotectRestore,
        CostComponent::PageFaultSignal,
        CostComponent::MovePagesControl,
        CostComponent::MovePagesCopy,
        CostComponent::FaultControl,
        CostComponent::FaultCopy,
        CostComponent::QuadraticLookup,
        CostComponent::TlbFlush,
        CostComponent::LockWait,
        CostComponent::MigratePagesWalk,
        CostComponent::Compute,
        CostComponent::MemoryAccess,
        CostComponent::Other,
    ];

    /// Short human-readable label matching the paper's legend wording.
    pub fn label(self) -> &'static str {
        match self {
            CostComponent::Madvise => "madvise()",
            CostComponent::MprotectMark => "mprotect() Next-Touch",
            CostComponent::MprotectRestore => "mprotect() Restore",
            CostComponent::PageFaultSignal => "Page-Fault and Signal Handler",
            CostComponent::MovePagesControl => "move_pages() Control",
            CostComponent::MovePagesCopy => "move_pages() Copy Page",
            CostComponent::FaultControl => "Page-Fault and Migration Control",
            CostComponent::FaultCopy => "Copy Page",
            CostComponent::QuadraticLookup => "Destination-Node Lookup (unpatched)",
            CostComponent::TlbFlush => "TLB Flush",
            CostComponent::LockWait => "Lock Wait",
            CostComponent::MigratePagesWalk => "migrate_pages() Walk",
            CostComponent::Compute => "Compute",
            CostComponent::MemoryAccess => "Memory Access",
            CostComponent::Other => "Other",
        }
    }

    /// Position in [`CostComponent::ALL`]. The declaration order and the
    /// `ALL` order coincide (asserted by test), so the discriminant *is*
    /// the index — `Breakdown::add` sits on the engine's per-touch path
    /// and a 15-way linear scan per add was measurable there.
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for CostComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated virtual-nanosecond totals per [`CostComponent`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    totals: Vec<u64>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Breakdown {
            totals: vec![0; CostComponent::ALL.len()],
        }
    }

    /// Add `ns` to `component`.
    pub fn add(&mut self, component: CostComponent, ns: u64) {
        if self.totals.is_empty() {
            self.totals = vec![0; CostComponent::ALL.len()];
        }
        self.totals[component.index()] += ns;
    }

    /// Total for one component.
    pub fn get(&self, component: CostComponent) -> u64 {
        self.totals.get(component.index()).copied().unwrap_or(0)
    }

    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Percentage share of one component (0.0 if the breakdown is empty).
    pub fn percent(&self, component: CostComponent) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(component) as f64 * 100.0 / total as f64
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        if self.totals.is_empty() {
            self.totals = vec![0; CostComponent::ALL.len()];
        }
        for (i, v) in other.totals.iter().enumerate() {
            if let Some(slot) = self.totals.get_mut(i) {
                *slot += v;
            }
        }
    }

    /// Reset all totals to zero.
    pub fn clear(&mut self) {
        for v in &mut self.totals {
            *v = 0;
        }
    }

    /// Non-zero components in display order, as `(component, ns, percent)`.
    pub fn entries(&self) -> Vec<(CostComponent, u64, f64)> {
        CostComponent::ALL
            .iter()
            .filter(|c| self.get(**c) > 0)
            .map(|c| (*c, self.get(*c), self.percent(*c)))
            .collect()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, ns, pct) in self.entries() {
            writeln!(f, "{:<38} {:>14} ns  {:>6.2} %", c.label(), ns, pct)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_percent() {
        let mut b = Breakdown::new();
        b.add(CostComponent::FaultCopy, 80);
        b.add(CostComponent::FaultControl, 20);
        assert_eq!(b.total(), 100);
        assert!((b.percent(CostComponent::FaultCopy) - 80.0).abs() < 1e-9);
        assert!((b.percent(CostComponent::FaultControl) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Breakdown::new();
        a.add(CostComponent::Madvise, 5);
        let mut b = Breakdown::new();
        b.add(CostComponent::Madvise, 7);
        b.add(CostComponent::TlbFlush, 3);
        a.merge(&b);
        assert_eq!(a.get(CostComponent::Madvise), 12);
        assert_eq!(a.get(CostComponent::TlbFlush), 3);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let b = Breakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.percent(CostComponent::FaultCopy), 0.0);
        assert!(b.entries().is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut b = Breakdown::new();
        b.add(CostComponent::LockWait, 42);
        b.clear();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn display_contains_labels() {
        let mut b = Breakdown::new();
        b.add(CostComponent::MovePagesCopy, 10);
        let s = format!("{b}");
        assert!(s.contains("move_pages() Copy Page"));
    }

    #[test]
    fn all_components_have_distinct_indices() {
        for (i, c) in CostComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
