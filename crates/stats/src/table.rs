//! Aligned text tables and CSV emission for experiment output.
//!
//! Every `numa-bench` binary prints its result through [`Table`], so the
//! harness output looks like the paper's tables (e.g. Table 1: matrix size,
//! block size, static time, next-touch time, improvement).

use crate::json::Json;
use std::fmt;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the table width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as a JSON object `{"headers": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> Json {
        let headers = Json::Arr(self.headers.iter().map(|h| Json::Str(h.clone())).collect());
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                .collect(),
        );
        Json::obj().set("headers", headers).set("rows", rows)
    }

    /// Render as CSV (RFC-4180-ish: cells containing commas or quotes are
    /// quoted, quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for c in cells {
                if !first {
                    out.push(',');
                }
                first = false;
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    out.push('"');
                    out.push_str(&c.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(c);
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = Table::new(["size", "MB/s"]);
        t.row(["4", "612.0"]);
        t.row(["16384", "598.2"]);
        let s = format!("{t}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All rendered rows share the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn ragged_rows_allowed() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        let s = format!("{t}");
        assert!(s.contains('3'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn to_json_preserves_shape() {
        let mut t = Table::new(["size", "MB/s"]);
        t.row(["4", "612.0"]);
        let j = t.to_json();
        assert_eq!(
            j.to_string(),
            r#"{"headers":["size","MB/s"],"rows":[["4","612.0"]]}"#
        );
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["only"]);
        let s = format!("{t}");
        assert!(s.contains("only"));
        assert!(t.is_empty());
    }
}
