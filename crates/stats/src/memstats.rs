//! O(1) memory-metadata statistics.
//!
//! [`PtStats`] is the aggregate a page table reports about itself: how many
//! entries are installed and how many carry each interesting flag class.
//! The table maintains these tallies incrementally at map/unmap/protect
//! time, so reading them never walks the slabs — the same shift the paper
//! makes for migration metadata (batch once, then answer queries from the
//! aggregate instead of re-scanning).
//!
//! The struct lives here rather than in `numa-vm` so higher layers
//! (benches, experiment reports) can consume it without depending on the
//! VM crate's internals. It is deliberately *not* serialized into any
//! experiment JSON: it is host-side observability, and the golden-checksum
//! gate pins those outputs byte-for-byte.

use std::fmt;

/// Incrementally-maintained page-table aggregate. All counts are exact and
/// cost O(1) to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PtStats {
    /// Installed (present) entries.
    pub mapped: u64,
    /// Entries carrying the migrate-on-next-touch flag.
    pub next_touch: u64,
    /// Huge-page head entries.
    pub huge: u64,
    /// Entries pointing at a node-local replica page.
    pub replica: u64,
    /// Entries with an in-flight transactional (shadow) tier migration.
    pub shadow: u64,
    /// Storage extents (slabs) backing the table.
    pub slabs: u64,
}

impl fmt::Display for PtStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mapped={} next_touch={} huge={} replica={} shadow={} slabs={}",
            self.mapped, self.next_touch, self.huge, self.replica, self.shadow, self.slabs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_every_field() {
        let s = PtStats {
            mapped: 5,
            next_touch: 1,
            huge: 2,
            replica: 3,
            shadow: 4,
            slabs: 6,
        };
        let text = s.to_string();
        for part in [
            "mapped=5",
            "next_touch=1",
            "huge=2",
            "replica=3",
            "shadow=4",
            "slabs=6",
        ] {
            assert!(text.contains(part), "missing {part} in {text}");
        }
    }
}
