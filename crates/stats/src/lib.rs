//! Instrumentation primitives for the `numa-migrate` simulator.
//!
//! Everything the experiment harness prints — per-component cost breakdowns
//! (paper Figure 6), event counters, latency histograms, and the aligned
//! text/CSV tables that mirror the paper's figures — is built from the types
//! in this crate.
//!
//! The crate sits at the bottom of the workspace dependency graph so that the
//! VM, kernel and machine layers can all record into the same structures.

pub mod breakdown;
pub mod counters;
pub mod histogram;
pub mod json;
pub mod memstats;
pub mod table;

pub use breakdown::{Breakdown, CostComponent};
pub use counters::{Counter, Counters};
pub use histogram::Histogram;
pub use json::Json;
pub use memstats::PtStats;
pub use table::Table;

/// Throughput in MB/s given a byte count and a duration in nanoseconds.
///
/// This is the unit used by every throughput figure in the paper
/// (Figures 4, 5 and 7). Returns 0.0 for a zero-duration interval so that
/// degenerate measurements render as an obviously-wrong value rather than
/// panicking mid-sweep.
pub fn mb_per_s(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    // bytes/ns == GB/s; scale to MB/s.
    (bytes as f64 / ns as f64) * 1000.0
}

/// Format a nanosecond count as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_per_s_basic() {
        // 1 GB in 1 second = 1000 MB/s.
        assert!((mb_per_s(1_000_000_000, 1_000_000_000) - 1000.0).abs() < 1e-9);
        // 4 kB in 4 us = 1000 MB/s.
        assert!((mb_per_s(4096, 4096) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mb_per_s_zero_duration() {
        assert_eq!(mb_per_s(4096, 0), 0.0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
