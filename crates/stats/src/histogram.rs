//! Power-of-two latency histograms.
//!
//! Used to characterise per-page migration latencies and memory-access stall
//! distributions. Buckets are `[2^k, 2^{k+1})` nanoseconds, which is plenty
//! of resolution for a model whose constants span ~1 ns to ~1 s.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of log2 buckets: covers 0..2^63 ns.
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (nanoseconds by convention).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Approximate quantile from the bucket boundaries.
    ///
    /// Returns the *upper bound* of the bucket containing the requested
    /// quantile, so the estimate is conservative (never under-reports).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (63 - value.leading_zeros()) as usize
    }
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "count={} mean={:.1} min={:?} max={:?}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let bar = "#".repeat((n * 40 / peak) as usize);
            writeln!(f, "[2^{i:>2}) {n:>10} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_basic_stats() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6);
        assert!((h.mean() - 2.0).abs() < 1e-9);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(3));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn quantile_is_conservative() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!(q50 >= 20, "median upper bound must cover the true median");
        let q100 = h.quantile(1.0).unwrap();
        assert!(q100 >= 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }
}
