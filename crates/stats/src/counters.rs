//! Named event counters.
//!
//! The kernel and VM layers count discrete events — page faults, migrations,
//! TLB shootdowns, pages allocated per node — and the tests assert on them.
//! Counters are plain `u64`s behind a small fixed registry; the simulator is
//! single-threaded by design (determinism, see DESIGN.md §7) so no atomics
//! are needed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The discrete events tracked across the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// Minor page faults taken (first-touch allocation).
    FirstTouchFaults,
    /// Page faults that hit the kernel next-touch flag and migrated a page.
    NextTouchFaults,
    /// Protection faults delivered to user space as SIGSEGV.
    SegvSignals,
    /// Pages migrated by `move_pages`.
    PagesMovedSyscall,
    /// Pages migrated by the kernel next-touch fault path.
    PagesMovedFault,
    /// Pages migrated by `migrate_pages`.
    PagesMovedProcess,
    /// Pages that were already on their destination node (no copy needed).
    PagesAlreadyPlaced,
    /// TLB shootdowns issued.
    TlbShootdowns,
    /// Frames allocated.
    FramesAllocated,
    /// Frames freed.
    FramesFreed,
    /// `madvise` next-touch markings (pages marked).
    PagesMarkedNextTouch,
    /// `mprotect` calls.
    MprotectCalls,
    /// Remote (off-node) memory accesses.
    RemoteAccesses,
    /// Local (on-node) memory accesses.
    LocalAccesses,
    /// Last-level cache hits in the access model.
    CacheHits,
    /// Last-level cache misses in the access model.
    CacheMisses,
    /// Read-only page replications performed (extension, §6 future work).
    PagesReplicated,
    /// Huge pages migrated (extension, §6 future work).
    HugePagesMoved,
    /// parallel_for iterations executed.
    OmpIterations,
    /// Barrier episodes completed.
    BarriersCompleted,
    /// Pages promoted from the slow tier to DRAM (tiering subsystem).
    TierPromotions,
    /// Pages demoted from DRAM to the slow tier.
    TierDemotions,
    /// Transactional tier migrations committed (write generation
    /// unchanged between copy and commit).
    TierTxnCommits,
    /// Transactional tier migrations aborted: a concurrent writer
    /// dirtied the page between copy and commit.
    TierTxnAborts,
    /// Accesses that touched a page while its transactional shadow copy
    /// was in flight (the page was non-exclusively in both tiers).
    TierShadowHits,
    /// Accesses stalled behind a stop-the-world tier migration that had
    /// the page unmapped.
    TierStwStalls,
    /// Faults injected by the deterministic fault-injection plan
    /// (`numa_sim::faultinject`).
    FaultsInjected,
    /// Migration attempts retried after a transient (`-EBUSY`-like)
    /// failure — engine re-queues, handler re-issues, tier re-begins.
    MigrationRetries,
    /// Migrations degraded gracefully: the page was left on its source
    /// node (frame exhaustion, racing unmap, or a next-touch fault-path
    /// failure) and the workload kept running.
    MigrationsDegraded,
    /// Migrations abandoned after exhausting their retry budget.
    MigrationsGaveUp,
    /// Page walks that crossed the interconnect to reach a remotely homed
    /// page table (ptplace subsystem).
    PtWalksRemote,
    /// Replica write-through/reconcile episodes that wrote at least one
    /// PTE (eager propagation or lazy reconciliation).
    PtReplicaSyncs,
    /// Walks from a node whose replica was stale and had to reconcile
    /// first (lazy replication only).
    PtReplicaStaleHits,
    /// Direct-reclaim runs performed on the allocating thread (memory
    /// pressure below the min watermark, or a failed allocation).
    DirectReclaims,
    /// Pages scanned as reclaim victims (both skipped and reclaimed).
    ReclaimScans,
    /// Pages demoted/migrated away by reclaim (direct or `kreclaimd`).
    PagesReclaimed,
    /// Pages migrated off a node by hot-remove evacuation.
    PagesEvacuated,
    /// Nodes marked offline (unallocatable) by hot-remove.
    NodesOfflined,
    /// Nodes brought back online.
    NodesOnlined,
    /// Processes killed by the OOM policy (reclaim and fallback both
    /// failed; the allocating thread is the deterministic victim).
    OomKills,
    /// Retry-livelock watchdog firings: a retry window elapsed with
    /// retries but zero migration progress, forcing degradation.
    WatchdogFirings,
    /// Per-node memory-pressure level transitions observed at the
    /// allocator's probe points.
    PressureTransitions,
}

impl Counter {
    /// Every counter, in declaration (= `Ord`) order. The registry's
    /// iteration and display orders derive from this list.
    pub const ALL: [Counter; 42] = [
        Counter::FirstTouchFaults,
        Counter::NextTouchFaults,
        Counter::SegvSignals,
        Counter::PagesMovedSyscall,
        Counter::PagesMovedFault,
        Counter::PagesMovedProcess,
        Counter::PagesAlreadyPlaced,
        Counter::TlbShootdowns,
        Counter::FramesAllocated,
        Counter::FramesFreed,
        Counter::PagesMarkedNextTouch,
        Counter::MprotectCalls,
        Counter::RemoteAccesses,
        Counter::LocalAccesses,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::PagesReplicated,
        Counter::HugePagesMoved,
        Counter::OmpIterations,
        Counter::BarriersCompleted,
        Counter::TierPromotions,
        Counter::TierDemotions,
        Counter::TierTxnCommits,
        Counter::TierTxnAborts,
        Counter::TierShadowHits,
        Counter::TierStwStalls,
        Counter::FaultsInjected,
        Counter::MigrationRetries,
        Counter::MigrationsDegraded,
        Counter::MigrationsGaveUp,
        Counter::PtWalksRemote,
        Counter::PtReplicaSyncs,
        Counter::PtReplicaStaleHits,
        Counter::DirectReclaims,
        Counter::ReclaimScans,
        Counter::PagesReclaimed,
        Counter::PagesEvacuated,
        Counter::NodesOfflined,
        Counter::NodesOnlined,
        Counter::OomKills,
        Counter::WatchdogFirings,
        Counter::PressureTransitions,
    ];

    /// Number of counters.
    pub const COUNT: usize = Counter::ALL.len();
}

/// A registry of [`Counter`] values.
///
/// Stored as a flat array indexed by discriminant: `bump` sits on the
/// per-page-touch hot path of the access model (cache hit/miss,
/// local/remote tallies), where a map lookup per event is measurable
/// host time. Iteration and display skip zero counters, in declaration
/// order — observably identical to the former `BTreeMap` registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    values: [u64; Counter::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            values: [0; Counter::COUNT],
        }
    }
}

impl Counters {
    /// An empty registry (all counters read as zero).
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increment `counter` by 1.
    #[inline]
    pub fn bump(&mut self, counter: Counter) {
        self.values[counter as usize] += 1;
    }

    /// Increment `counter` by `n`.
    #[inline]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.values[counter as usize] += n;
    }

    /// Current value of `counter`.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Merge another registry into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (dst, src) in self.values.iter_mut().zip(other.values.iter()) {
            *dst += src;
        }
    }

    /// Reset every counter to zero.
    pub fn clear(&mut self) {
        self.values = [0; Counter::COUNT];
    }

    /// Per-counter delta since `earlier` (`self - earlier`). Panics on a
    /// counter that went backwards — counters are monotone, so that is a
    /// snapshotting bug. Window barriers fold these deltas so a shard's
    /// contribution per window is order-independent.
    pub fn diff(&self, earlier: &Counters) -> Counters {
        let mut out = Counters::new();
        for (i, (now, was)) in self.values.iter().zip(earlier.values.iter()).enumerate() {
            out.values[i] = now
                .checked_sub(*was)
                .unwrap_or_else(|| panic!("counter {i} went backwards: {now} < {was}"));
        }
        out
    }

    /// Iterate over non-zero counters in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(|&k| (k, self.values[k as usize]))
            .filter(|(_, v)| *v > 0)
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:?}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.get(Counter::NextTouchFaults), 0);
        c.bump(Counter::NextTouchFaults);
        c.add(Counter::NextTouchFaults, 2);
        assert_eq!(c.get(Counter::NextTouchFaults), 3);
    }

    #[test]
    fn merge_sums_disjoint_and_shared() {
        let mut a = Counters::new();
        a.add(Counter::CacheHits, 10);
        let mut b = Counters::new();
        b.add(Counter::CacheHits, 5);
        b.add(Counter::CacheMisses, 7);
        a.merge(&b);
        assert_eq!(a.get(Counter::CacheHits), 15);
        assert_eq!(a.get(Counter::CacheMisses), 7);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut c = Counters::new();
        c.add(Counter::TlbShootdowns, 4);
        c.clear();
        assert_eq!(c.get(Counter::TlbShootdowns), 0);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn all_list_matches_discriminants() {
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{c:?} out of place in Counter::ALL");
        }
    }

    #[test]
    fn iter_is_stable_and_nonzero_only() {
        let mut c = Counters::new();
        c.add(Counter::LocalAccesses, 1);
        c.add(Counter::RemoteAccesses, 2);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
