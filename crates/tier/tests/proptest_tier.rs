//! Property tests for transactional tier migration: frame conservation,
//! content preservation across round trips, and abort harmlessness.

use numa_machine::{Machine, MemAccessKind, Op, ThreadSpec};
use numa_sim::SimTime;
use numa_stats::Breakdown;
use numa_topology::{CoreId, NodeId};
use numa_vm::{MemPolicy, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

/// A tiered machine with `pages` pages first-touched from core 0 (DRAM
/// node 0), returning the buffer base.
fn populated_machine(pages: u64) -> (Machine, VirtAddr) {
    let mut m = Machine::tiered_4p2();
    let a = m.alloc(pages * PAGE_SIZE, MemPolicy::FirstTouch);
    m.run(
        vec![ThreadSpec::scripted(
            CoreId(0),
            vec![Op::write(a, pages * PAGE_SIZE, MemAccessKind::Stream)],
        )],
        &[],
    );
    (m, a)
}

proptest! {
    /// After an arbitrary mix of committed and aborted transactional
    /// demotions, no frame is lost or duplicated and every page is still
    /// mapped exactly once, shadow-free.
    #[test]
    fn no_page_lost_or_duplicated_after_commits(
        pages in 1u64..24,
        dirt in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let (mut m, a) = populated_machine(pages);
        let before = m.frames.live_total();
        let mut b = Breakdown::new();
        for p in 0..pages {
            let vpn = (a + p * PAGE_SIZE).vpn();
            let src = m.space.page_table.get(vpn).unwrap().frame;
            let copy_end = m
                .kernel
                .tier_txn_begin(&mut m.space, &mut m.frames, SimTime::ZERO, vpn, NodeId(4), &mut b)
                .expect("begin");
            if dirt[p as usize] {
                // A concurrent writer dirties the page mid-copy.
                m.frames.note_write(src);
            }
            let _ = m
                .kernel
                .tier_txn_commit(&mut m.space, &mut m.frames, copy_end, vpn, &mut b);
        }
        prop_assert_eq!(m.frames.live_total(), before);
        for p in 0..pages {
            let vpn = (a + p * PAGE_SIZE).vpn();
            let pte = m.space.page_table.get(vpn);
            prop_assert!(pte.is_some(), "page {} lost its mapping", p);
            prop_assert!(!pte.unwrap().has_shadow(), "page {} kept a shadow", p);
        }
    }

    /// Page contents survive any number of promote -> demote round trips.
    #[test]
    fn contents_survive_round_trips(pages in 1u64..12, trips in 1usize..4) {
        let (mut m, a) = populated_machine(pages);
        let vpns: Vec<u64> = (0..pages).map(|p| (a + p * PAGE_SIZE).vpn()).collect();
        let tags: Vec<u64> = vpns
            .iter()
            .map(|&vpn| {
                let pte = m.space.page_table.get(vpn).unwrap();
                m.frames.get(pte.frame).unwrap().content_tag
            })
            .collect();
        for _ in 0..trips {
            for dest in [NodeId(4), NodeId(0)] {
                m.run(
                    vec![ThreadSpec::scripted(
                        CoreId(0),
                        vec![Op::TierMigrate {
                            pages: vpns.clone(),
                            dest,
                            transactional: true,
                        }],
                    )],
                    &[],
                );
            }
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            let pte = m.space.page_table.get(vpn).unwrap();
            prop_assert_eq!(m.frames.get(pte.frame).unwrap().content_tag, tags[i]);
            prop_assert_eq!(m.frames.node_of(pte.frame), NodeId(0));
        }
        prop_assert_eq!(m.frames.live_total(), pages);
    }

    /// An aborted copy leaves the source mapping byte-for-byte untouched
    /// and frees the destination frame.
    #[test]
    fn aborted_copy_leaves_source_untouched(pages in 1u64..16, victim_raw in 0u64..16) {
        let (mut m, a) = populated_machine(pages);
        let victim = victim_raw % pages;
        let vpn = (a + victim * PAGE_SIZE).vpn();
        let pte_before = m.space.page_table.get(vpn).unwrap();
        let live_before = m.frames.live_total();
        let mut b = Breakdown::new();
        let copy_end = m
            .kernel
            .tier_txn_begin(&mut m.space, &mut m.frames, SimTime::ZERO, vpn, NodeId(5), &mut b)
            .expect("begin");
        m.frames.note_write(pte_before.frame);
        let (_, outcome) = m
            .kernel
            .tier_txn_commit(&mut m.space, &mut m.frames, copy_end, vpn, &mut b);
        prop_assert_eq!(outcome, numa_kernel::TxnOutcome::Aborted);
        let pte_after = m.space.page_table.get(vpn).unwrap();
        prop_assert_eq!(pte_after.frame, pte_before.frame);
        prop_assert_eq!(pte_after.flags, pte_before.flags);
        prop_assert!(!pte_after.has_shadow());
        prop_assert_eq!(m.frames.live_total(), live_before, "destination frame leaked");
        prop_assert_eq!(m.frames.live_on(NodeId(5)), 0);
    }
}
