//! Pluggable hot/cold classification policies.
//!
//! A policy looks at a [`TierView`] — the decayed per-page heat counters
//! and current placement captured from the live machine — and returns a
//! [`TierPlan`]: which slow-tier pages to promote and which DRAM pages to
//! demote. Destination nodes are chosen later by the daemon; policies
//! reason only about *which* pages belong in *which tier*, like the
//! kernel's hot-page promotion layers (kpromoted / NUMA-balancing tiering)
//! that separate classification from the migration mechanism.

use numa_machine::Machine;
use numa_topology::{MemTier, NodeId};
use numa_vm::PteFlags;

/// One mapped page as a policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Virtual page number.
    pub vpn: u64,
    /// Decayed access count (see `Machine::decay_heat`).
    pub heat: u64,
    /// Node currently holding the page.
    pub node: NodeId,
    /// Tier of that node.
    pub tier: MemTier,
}

/// Snapshot of everything a policy may consult. Captured from the live
/// machine at daemon wake-up time; deterministic because the heat map is
/// ordered and the page walk is sorted.
#[derive(Debug, Clone)]
pub struct TierView {
    /// All mapped small pages, in vpn order.
    pub pages: Vec<PageInfo>,
    /// Free frames summed over the DRAM tier.
    pub dram_free: u64,
    /// Free frames summed over the slow tier.
    pub slow_free: u64,
}

impl TierView {
    /// Capture the view from a machine. Huge and shadow-carrying pages are
    /// skipped — the kernel would refuse to migrate them anyway.
    pub fn capture(machine: &Machine) -> TierView {
        let topo = machine.topology();
        let mut pages = Vec::new();
        // The slab page table iterates in ascending vpn order, so one
        // linear walk replaces the old sort-then-probe scan.
        for (vpn, pte) in machine.space.page_table.iter() {
            if !pte.flags.contains(PteFlags::PRESENT)
                || pte.flags.contains(PteFlags::HUGE)
                || pte.has_shadow()
            {
                continue;
            }
            let node = machine.frames.node_of(pte.frame);
            pages.push(PageInfo {
                vpn,
                heat: machine.heat.get(&vpn).copied().unwrap_or(0),
                node,
                tier: topo.tier_of(node),
            });
        }
        let (mut dram_free, mut slow_free) = (0, 0);
        for n in topo.node_ids() {
            match topo.tier_of(n) {
                MemTier::Dram => dram_free += machine.frames.free_on(n),
                MemTier::Slow => slow_free += machine.frames.free_on(n),
            }
        }
        TierView {
            pages,
            dram_free,
            slow_free,
        }
    }

    /// Pages currently in the given tier, hottest first (ties by vpn so
    /// the order is total and deterministic).
    pub fn by_heat(&self, tier: MemTier, hottest_first: bool) -> Vec<PageInfo> {
        let mut v: Vec<PageInfo> = self
            .pages
            .iter()
            .copied()
            .filter(|p| p.tier == tier)
            .collect();
        if hottest_first {
            v.sort_by_key(|p| (std::cmp::Reverse(p.heat), p.vpn));
        } else {
            v.sort_by_key(|p| (p.heat, p.vpn));
        }
        v
    }
}

/// What a policy decided: vpns to move up and vpns to move down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierPlan {
    /// Slow-tier pages to promote into DRAM, in migration order.
    pub promote: Vec<u64>,
    /// DRAM pages to demote into the slow tier, in migration order.
    pub demote: Vec<u64>,
}

impl TierPlan {
    /// True when the policy found nothing to move.
    pub fn is_empty(&self) -> bool {
        self.promote.is_empty() && self.demote.is_empty()
    }
}

/// A hot/cold classification policy.
pub trait TierPolicy {
    /// Decide the round's promotions and demotions.
    fn plan(&mut self, view: &TierView) -> TierPlan;
    /// Short name for tables and traces.
    fn name(&self) -> &'static str;
}

/// Promote pages whose heat crosses a threshold; demote cold DRAM pages
/// only when room must be made. The kernel's `promotion_threshold`
/// discipline.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    /// Minimum heat for a slow-tier page to be promoted.
    pub promote_min: u64,
    /// Maximum heat for a DRAM page to be considered cold enough to evict.
    pub demote_max: u64,
    /// Cap on promotions per wake-up.
    pub max_moves: usize,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            promote_min: 4,
            demote_max: 1,
            max_moves: 64,
        }
    }
}

impl TierPolicy for ThresholdPolicy {
    fn plan(&mut self, view: &TierView) -> TierPlan {
        let hot: Vec<PageInfo> = view
            .by_heat(MemTier::Slow, true)
            .into_iter()
            .filter(|p| p.heat >= self.promote_min)
            .take(self.max_moves)
            .collect();
        if hot.is_empty() {
            return TierPlan::default();
        }
        // Make room for promotions that do not fit in free DRAM by
        // evicting the coldest eligible DRAM pages (bounded by slow-tier
        // space: a demotion that cannot land is not planned).
        let need = (hot.len() as u64).saturating_sub(view.dram_free);
        let demote: Vec<u64> = view
            .by_heat(MemTier::Dram, false)
            .into_iter()
            .filter(|p| p.heat <= self.demote_max)
            .take(need.min(view.slow_free) as usize)
            .map(|p| p.vpn)
            .collect();
        // Promotions beyond available room (free + newly evicted) would
        // fail allocation; trim them.
        let room = (view.dram_free + demote.len() as u64) as usize;
        TierPlan {
            promote: hot.into_iter().take(room).map(|p| p.vpn).collect(),
            demote,
        }
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Keep the hottest pages in DRAM by swapping: each hot slow-tier page
/// displaces the coldest DRAM page that is strictly colder than it.
/// Approximates LRU because decayed heat is recency-weighted.
#[derive(Debug, Clone)]
pub struct LruishPolicy {
    /// Cap on swaps per wake-up.
    pub max_moves: usize,
}

impl Default for LruishPolicy {
    fn default() -> Self {
        LruishPolicy { max_moves: 64 }
    }
}

impl TierPolicy for LruishPolicy {
    fn plan(&mut self, view: &TierView) -> TierPlan {
        let hot = view.by_heat(MemTier::Slow, true);
        let cold = view.by_heat(MemTier::Dram, false);
        let mut plan = TierPlan::default();
        let mut free = view.dram_free;
        let mut cold_it = cold.into_iter();
        for h in hot.into_iter().take(self.max_moves) {
            if h.heat == 0 {
                break;
            }
            if free > 0 {
                // Room available: promote without evicting anyone.
                plan.promote.push(h.vpn);
                free -= 1;
                continue;
            }
            // Swap with a strictly colder DRAM page, if one exists and
            // the slow tier can absorb it.
            match cold_it.next() {
                Some(c) if c.heat < h.heat && (plan.demote.len() as u64) < view.slow_free => {
                    plan.demote.push(c.vpn);
                    plan.promote.push(h.vpn);
                }
                _ => break,
            }
        }
        plan
    }

    fn name(&self) -> &'static str {
        "lruish"
    }
}

/// The do-nothing baseline: initial placement is final placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl TierPolicy for StaticPolicy {
    fn plan(&mut self, _view: &TierView) -> TierPlan {
        TierPlan::default()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(vpn: u64, heat: u64, node: u16, tier: MemTier) -> PageInfo {
        PageInfo {
            vpn,
            heat,
            node: NodeId(node),
            tier,
        }
    }

    fn view(pages: Vec<PageInfo>, dram_free: u64, slow_free: u64) -> TierView {
        TierView {
            pages,
            dram_free,
            slow_free,
        }
    }

    #[test]
    fn threshold_promotes_hot_slow_pages() {
        let v = view(
            vec![
                page(1, 10, 4, MemTier::Slow),
                page(2, 1, 4, MemTier::Slow),
                page(3, 7, 5, MemTier::Slow),
            ],
            8,
            8,
        );
        let p = ThresholdPolicy::default().plan(&v);
        assert_eq!(p.promote, vec![1, 3], "hottest first, cold page skipped");
        assert!(p.demote.is_empty(), "free DRAM means no eviction");
    }

    #[test]
    fn threshold_evicts_cold_dram_when_full() {
        let v = view(
            vec![
                page(1, 10, 4, MemTier::Slow),
                page(2, 9, 5, MemTier::Slow),
                page(10, 0, 0, MemTier::Dram),
                page(11, 50, 1, MemTier::Dram),
            ],
            0,
            8,
        );
        let p = ThresholdPolicy::default().plan(&v);
        assert_eq!(p.demote, vec![10], "only the cold DRAM page is evicted");
        assert_eq!(p.promote, vec![1], "promotions trimmed to the room made");
    }

    #[test]
    fn threshold_respects_slow_space_for_demotions() {
        let v = view(
            vec![page(1, 10, 4, MemTier::Slow), page(10, 0, 0, MemTier::Dram)],
            0,
            0, // slow tier full: nowhere to demote to
        );
        let p = ThresholdPolicy::default().plan(&v);
        assert!(p.demote.is_empty());
        assert!(p.promote.is_empty(), "no room could be made");
    }

    #[test]
    fn lruish_uses_free_dram_before_swapping() {
        let v = view(
            vec![
                page(1, 20, 4, MemTier::Slow),
                page(2, 5, 4, MemTier::Slow),
                page(10, 1, 0, MemTier::Dram),
            ],
            1,
            8,
        );
        let p = LruishPolicy::default().plan(&v);
        // One free slot absorbs page 1; page 2 then swaps with page 10.
        assert_eq!(p.promote, vec![1, 2]);
        assert_eq!(p.demote, vec![10]);
    }

    #[test]
    fn lruish_stops_at_hotter_dram() {
        let v = view(
            vec![
                page(1, 20, 4, MemTier::Slow),
                page(2, 5, 4, MemTier::Slow),
                page(10, 1, 0, MemTier::Dram),
                page(11, 30, 1, MemTier::Dram),
            ],
            0,
            8,
        );
        let p = LruishPolicy::default().plan(&v);
        assert_eq!(
            p.promote,
            vec![1],
            "page 2 is colder than every remaining DRAM page"
        );
        assert_eq!(p.demote, vec![10]);
    }

    #[test]
    fn static_policy_never_moves() {
        let v = view(vec![page(1, 1000, 4, MemTier::Slow)], 8, 8);
        assert!(StaticPolicy.plan(&v).is_empty());
    }
}
