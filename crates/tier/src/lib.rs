//! Heterogeneous memory tiering for the simulated machine.
//!
//! A tiered machine (see `numa_topology::presets::tiered_4p2`) pairs fast
//! DRAM nodes with large, slow CXL-class nodes. This crate adds the
//! user-visible subsystem on top of the kernel mechanisms in
//! `numa_kernel::tier`:
//!
//! * [`policy`] — pluggable hot/cold classification ([`ThresholdPolicy`],
//!   [`LruishPolicy`], [`StaticPolicy`]) over decayed per-page heat
//!   counters;
//! * [`daemon`] — the kpromoted-style [`TierDaemon`] that wakes up inside
//!   a `WorkPlan`, classifies, and issues `Op::TierMigrate` batches,
//!   either transactionally (Nomad-style non-exclusive copy with
//!   write-generation recheck) or stop-the-world;
//! * [`reclaim`] — the kswapd-style [`ReclaimDaemon`] that demotes cold
//!   pages off DRAM nodes sitting below their low watermark, the
//!   background half of the memory-pressure subsystem;
//! * [`TierUsage`] — occupancy reporting per tier.
//!
//! Everything is deterministic: views are captured in sorted order, the
//! heat map is a `BTreeMap`, and destination assignment breaks ties by
//! node id.

pub mod daemon;
pub mod policy;
pub mod reclaim;

pub use daemon::TierDaemon;
pub use policy::{
    LruishPolicy, PageInfo, StaticPolicy, ThresholdPolicy, TierPlan, TierPolicy, TierView,
};
pub use reclaim::ReclaimDaemon;

use numa_machine::Machine;
use numa_topology::MemTier;

/// Frame occupancy per tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierUsage {
    /// Live frames in DRAM nodes.
    pub dram_used: u64,
    /// Total frames across DRAM nodes.
    pub dram_capacity: u64,
    /// Live frames in slow-tier nodes.
    pub slow_used: u64,
    /// Total frames across slow-tier nodes.
    pub slow_capacity: u64,
}

impl TierUsage {
    /// Snapshot the current occupancy.
    pub fn capture(machine: &Machine) -> TierUsage {
        let topo = machine.topology();
        let mut u = TierUsage {
            dram_used: 0,
            dram_capacity: 0,
            slow_used: 0,
            slow_capacity: 0,
        };
        for n in topo.node_ids() {
            let (used, cap) = (machine.frames.live_on(n), machine.frames.capacity_of(n));
            match topo.tier_of(n) {
                MemTier::Dram => {
                    u.dram_used += used;
                    u.dram_capacity += cap;
                }
                MemTier::Slow => {
                    u.slow_used += used;
                    u.slow_capacity += cap;
                }
            }
        }
        u
    }

    /// Fraction of DRAM frames in use.
    pub fn dram_fill(&self) -> f64 {
        if self.dram_capacity == 0 {
            0.0
        } else {
            self.dram_used as f64 / self.dram_capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MemAccessKind, Op, ThreadSpec};
    use numa_topology::CoreId;
    use numa_vm::{MemPolicy, PAGE_SIZE};

    #[test]
    fn usage_tracks_tier_occupancy() {
        let mut m = Machine::tiered_4p2();
        let a = m.alloc(4 * PAGE_SIZE, MemPolicy::FirstTouch);
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(a, 4 * PAGE_SIZE, MemAccessKind::Stream)],
            )],
            &[],
        );
        let u = TierUsage::capture(&m);
        assert_eq!(u.dram_used, 4);
        assert_eq!(u.slow_used, 0);
        assert!(u.dram_capacity > 0 && u.slow_capacity > 0);
        assert!(u.dram_fill() > 0.0 && u.dram_fill() < 1.0);
    }
}
