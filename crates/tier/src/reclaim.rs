//! The background reclaim daemon (`kreclaimd`): a kswapd-style kernel
//! thread that wakes up periodically, checks every DRAM node against its
//! low watermark, and demotes the *coldest* resident pages toward the
//! slow tier until the node is back above the watermark.
//!
//! It is the asynchronous complement of the kernel's direct reclaim
//! (`Kernel::direct_reclaim`): direct reclaim runs on the allocating
//! thread below the *min* watermark (the allocation cannot proceed
//! otherwise), while `kreclaimd` runs in the background below the *low*
//! watermark so pressure is relieved before allocations start stalling —
//! exactly Linux's kswapd/direct-reclaim split.
//!
//! Like [`crate::TierDaemon`], the daemon has no host thread: splice it
//! into a `WorkPlan` as `single_ctx` phases so its wake-ups interleave
//! deterministically with application phases and its demotion traffic
//! contends through the same interconnect and lock models.

use crate::policy::TierView;
use numa_machine::{Machine, Op};
use numa_rt::WorkPlan;
use numa_topology::MemTier;
use numa_vm::PressureLevel;
use std::cell::RefCell;
use std::rc::Rc;

/// The background reclaim daemon.
pub struct ReclaimDaemon {
    /// Cap on pages demoted per node per wake-up.
    pub batch: usize,
    /// Use the transactional tier mechanism (true) or stop-the-world.
    pub transactional: bool,
    /// Total demotions planned so far (for reports).
    pub planned_demotions: u64,
    /// Wake-ups that found at least one node under pressure.
    pub pressured_wakeups: u64,
}

impl ReclaimDaemon {
    /// A daemon demoting at most `batch` pages per node per wake-up.
    pub fn new(batch: usize, transactional: bool) -> Self {
        ReclaimDaemon {
            batch,
            transactional,
            planned_demotions: 0,
            pressured_wakeups: 0,
        }
    }

    /// One wake-up: demote the coldest pages of every DRAM node sitting
    /// at or below its low watermark. Returns no ops on machines without
    /// a slow tier or configured watermarks — reclaim-by-demotion needs
    /// both somewhere to demote *to* and a definition of "too full".
    pub fn wake(&mut self, machine: &Machine) -> Vec<Op> {
        let topo = machine.topology();
        if !topo.is_tiered() || !machine.frames.watermarked() {
            return Vec::new();
        }
        // Watchdog degradation: when the retry-livelock watchdog has
        // fired, issuing more background migration traffic would feed the
        // livelock, not relieve it. Skip the wake-up entirely.
        if machine.kernel.watchdog_fired() {
            return Vec::new();
        }
        let view = TierView::capture(machine);
        let mut ops = Vec::new();
        let mut pressured = false;
        for node in topo.nodes_in_tier(MemTier::Dram) {
            if machine.frames.is_offline(node)
                || machine.frames.pressure_of(node) == PressureLevel::Normal
            {
                continue;
            }
            pressured = true;
            // Demote coldest-first until the node would clear its low
            // watermark (each demotion frees one frame), bounded by the
            // batch. Destination choice is left to the kernel's demotion
            // path inside `Op::TierMigrate` handling — the daemon only
            // nominates victims, like kswapd's LRU scan.
            let deficit = (machine.frames.watermark_low(node) + 1)
                .saturating_sub(machine.frames.free_on(node)) as usize;
            let victims: Vec<u64> = view
                .by_heat(MemTier::Dram, false)
                .into_iter()
                .filter(|p| p.node == node)
                .take(deficit.min(self.batch))
                .map(|p| p.vpn)
                .collect();
            if victims.is_empty() {
                continue;
            }
            // Nearest slow node with room, ties by id — same choice rule
            // as the kernel's demotion target.
            let dest = topo
                .nodes_in_tier(MemTier::Slow)
                .into_iter()
                .filter(|d| !machine.frames.is_offline(*d) && machine.frames.free_on(*d) > 0)
                .min_by_key(|d| (topo.hops(node, *d), d.0));
            let Some(dest) = dest else {
                continue; // slow tier full: nothing to demote into
            };
            self.planned_demotions += victims.len() as u64;
            ops.push(Op::TierMigrate {
                pages: victims,
                dest,
                transactional: self.transactional,
            });
        }
        if pressured {
            self.pressured_wakeups += 1;
        }
        ops
    }

    /// Splice `rounds` daemon wake-ups into `plan`, each preceded by the
    /// phases that `work(round)` appends — the same shape as
    /// [`crate::TierDaemon::splice_into`].
    pub fn splice_into<F>(
        daemon: Rc<RefCell<ReclaimDaemon>>,
        plan: &mut WorkPlan,
        rounds: usize,
        mut work: F,
    ) where
        F: FnMut(&mut WorkPlan, usize) + 'static,
    {
        for round in 0..rounds {
            work(plan, round);
            let d = Rc::clone(&daemon);
            plan.single_ctx(move |machine| d.borrow_mut().wake(machine));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MemAccessKind, ThreadSpec};
    use numa_topology::{CoreId, NodeId};
    use numa_vm::{MemPolicy, PAGE_SIZE};

    /// A tiered machine with 8-frame DRAM banks, watermarks low=4/min=2,
    /// and `n` pages populated on node 0.
    fn pressured_machine(n: u64) -> (Machine, numa_vm::VirtAddr) {
        let topo = numa_topology::presets::tiered_4p2_with(
            numa_topology::CostModel::default(),
            8 * PAGE_SIZE,
            64 * PAGE_SIZE,
        );
        let mut m = Machine::new(
            std::sync::Arc::new(topo),
            numa_kernel::KernelConfig::tiered(),
        );
        let nodes: Vec<NodeId> = m.topology().node_ids().collect();
        for n in nodes {
            m.frames.set_watermarks(n, 4, 2);
        }
        let a = m.alloc(n * PAGE_SIZE, MemPolicy::Bind(NodeId(0)));
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(a, n * PAGE_SIZE, MemAccessKind::Stream)],
            )],
            &[],
        );
        (m, a)
    }

    #[test]
    fn wake_demotes_cold_pages_off_pressured_node() {
        // 6 of 8 frames used: free=2 <= low=4, so the node is pressured.
        let (m, a) = pressured_machine(6);
        // Make the first two pages hot so the daemon spares them.
        let mut m = m;
        m.heat.insert(a.vpn(), 50);
        m.heat.insert(a.vpn() + 1, 50);
        let mut d = ReclaimDaemon::new(32, true);
        let ops = d.wake(&m);
        assert_eq!(ops.len(), 1, "one pressured node, one batch: {ops:?}");
        match &ops[0] {
            Op::TierMigrate { pages, dest, .. } => {
                // Deficit is low+1-free = 3 cold pages; node 4 is the
                // slow node behind node 0.
                assert_eq!(pages.len(), 3);
                assert!(!pages.contains(&a.vpn()), "hot pages are spared");
                assert_eq!(*dest, NodeId(4));
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert_eq!(d.planned_demotions, 3);
        assert_eq!(d.pressured_wakeups, 1);
    }

    #[test]
    fn wake_is_quiet_above_the_watermark() {
        let (m, _a) = pressured_machine(2); // free=6 > low=4
        let mut d = ReclaimDaemon::new(32, true);
        assert!(d.wake(&m).is_empty());
        assert_eq!(d.pressured_wakeups, 0);
    }

    #[test]
    fn wake_is_empty_without_watermarks_or_tier() {
        // Tiered but no watermarks configured.
        let mut m = Machine::tiered_4p2();
        let a = m.alloc(2 * PAGE_SIZE, MemPolicy::FirstTouch);
        m.run(
            vec![ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(a, 2 * PAGE_SIZE, MemAccessKind::Stream)],
            )],
            &[],
        );
        assert!(ReclaimDaemon::new(32, true).wake(&m).is_empty());
        // Watermarked but single-tier: nowhere to demote to.
        let mut m = Machine::two_node();
        m.frames.set_watermarks(NodeId(0), 4, 2);
        m.frames.set_watermarks(NodeId(1), 4, 2);
        assert!(ReclaimDaemon::new(32, true).wake(&m).is_empty());
    }

    #[test]
    fn spliced_daemon_relieves_pressure_mid_plan() {
        use numa_rt::Team;
        let (mut m, _a) = pressured_machine(6);
        let daemon = Rc::new(RefCell::new(ReclaimDaemon::new(32, true)));
        let mut plan = WorkPlan::new();
        ReclaimDaemon::splice_into(Rc::clone(&daemon), &mut plan, 2, |plan, _round| {
            plan.each_thread(|_tid| vec![Op::ComputeNs(100)]);
        });
        Team::all_cores(&m).take(4).run(&mut m, plan);
        assert!(
            m.frames.free_on(NodeId(0)) > m.frames.watermark_low(NodeId(0)),
            "the daemon must lift node 0 back above its low watermark"
        );
        assert!(daemon.borrow().planned_demotions >= 3);
        assert!(
            m.kernel.counters.get(numa_stats::Counter::TierDemotions) >= 3,
            "demotions must actually have executed"
        );
    }
}
