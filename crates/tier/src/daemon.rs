//! The tiering daemon: a kpromoted-style kernel thread that wakes up
//! periodically, classifies pages with its [`TierPolicy`], and issues
//! [`Op::TierMigrate`] batches — transactional or stop-the-world.
//!
//! In the simulator the daemon does not get its own thread: it is spliced
//! into a [`WorkPlan`] as `single_ctx` phases (see
//! [`TierDaemon::splice_into`]), so its wake-ups interleave
//! deterministically with application phases, and its migration traffic
//! contends with application traffic through the same interconnect and
//! lock models.

use crate::policy::{TierPolicy, TierView};
use numa_machine::{Machine, Op};
use numa_rt::{RetryPolicy, WorkPlan};
use numa_topology::{MemTier, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

/// A move dropped because its target tier was full, awaiting re-issue on
/// a later wake-up.
struct DeferredMove {
    vpn: u64,
    target: MemTier,
    attempts_left: u32,
}

/// The tiering daemon.
pub struct TierDaemon {
    policy: Box<dyn TierPolicy>,
    /// Use the transactional mechanism (true) or stop-the-world (false).
    pub transactional: bool,
    /// Cap on pages migrated (promotions + demotions) per wake-up.
    pub batch: usize,
    /// Total promotions planned so far (for reports).
    pub planned_promotions: u64,
    /// Total demotions planned so far (for reports).
    pub planned_demotions: u64,
    /// Deferred-retry policy for moves dropped because the target tier
    /// had no free frame: each such move is re-issued on up to
    /// `max_attempts` later wake-ups before the daemon gives up on it.
    /// `backoff_ns` is ignored — the daemon's own wake cadence is the
    /// backoff. Defaults to [`RetryPolicy::none`]: a dropped move is
    /// simply dropped, as kpromoted does.
    pub retry: RetryPolicy,
    /// Moves dropped because the target tier was full — graceful
    /// degradation: the page stays in its current tier.
    pub dropped_moves: u64,
    /// Deferred moves successfully re-issued on a later wake-up.
    pub deferred_retries: u64,
    /// Deferred moves abandoned after the retry budget ran out.
    pub gave_up: u64,
    deferred: Vec<DeferredMove>,
}

impl TierDaemon {
    /// A daemon with the given policy and mechanism, batch 128.
    pub fn new(policy: Box<dyn TierPolicy>, transactional: bool) -> Self {
        TierDaemon {
            policy,
            transactional,
            batch: 128,
            planned_promotions: 0,
            planned_demotions: 0,
            retry: RetryPolicy::none(),
            dropped_moves: 0,
            deferred_retries: 0,
            gave_up: 0,
            deferred: Vec::new(),
        }
    }

    /// The policy's short name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// One wake-up: capture the machine state, run the policy, and turn
    /// its plan into migration ops. Demotions are emitted before
    /// promotions so evictions free DRAM frames ahead of the allocations
    /// that need them.
    pub fn wake(&mut self, machine: &Machine) -> Vec<Op> {
        // Watchdog degradation: once the kernel's retry-livelock watchdog
        // has fired, the deferred backlog *is* the retry traffic that
        // stopped making progress — abandon it instead of re-issuing.
        // Fresh plans still run; the policy may well pick movable pages.
        if machine.kernel.watchdog_fired() && !self.deferred.is_empty() {
            self.gave_up += self.deferred.len() as u64;
            self.deferred.clear();
        }
        let view = TierView::capture(machine);
        let mut plan = self.policy.plan(&view);
        // Enforce the batch cap, demotions first (room-making wins).
        plan.demote.truncate(self.batch);
        plan.promote
            .truncate(self.batch - plan.demote.len().min(self.batch));
        self.planned_promotions += plan.promote.len() as u64;
        self.planned_demotions += plan.demote.len() as u64;

        let mut ops = Vec::new();
        let mut free = FreeTracker::capture(machine);
        // Moves deferred from earlier wake-ups get first claim on the
        // frames this wake-up sees free.
        for d in std::mem::take(&mut self.deferred) {
            let (batches, dropped) = assign_destinations(machine, &[d.vpn], d.target, &mut free);
            for batch in batches {
                self.deferred_retries += 1;
                ops.push(Op::TierMigrate {
                    pages: batch.pages,
                    dest: batch.dest,
                    transactional: self.transactional,
                });
            }
            for vpn in dropped {
                if d.attempts_left > 1 {
                    self.deferred.push(DeferredMove {
                        vpn,
                        target: d.target,
                        attempts_left: d.attempts_left - 1,
                    });
                } else {
                    self.gave_up += 1;
                }
            }
        }
        for (vpns, tier) in [
            (&plan.demote, MemTier::Slow),
            (&plan.promote, MemTier::Dram),
        ] {
            let (batches, dropped) = assign_destinations(machine, vpns, tier, &mut free);
            for batch in batches {
                ops.push(Op::TierMigrate {
                    pages: batch.pages,
                    dest: batch.dest,
                    transactional: self.transactional,
                });
            }
            // Graceful degradation: a full target tier drops the move —
            // the page stays put and the daemon keeps running. With a
            // retry budget, the drop is deferred to later wake-ups.
            for vpn in dropped {
                self.dropped_moves += 1;
                if self.retry.max_attempts > 0 {
                    self.deferred.push(DeferredMove {
                        vpn,
                        target: tier,
                        attempts_left: self.retry.max_attempts,
                    });
                }
            }
        }
        ops
    }

    /// Splice `rounds` daemon wake-ups into `plan`, each preceded by the
    /// phases that `work(round)` appends. The daemon runs as a
    /// `single_ctx` phase: thread 0 plays kpromoted while the team waits
    /// at the phase barrier, then everyone resumes.
    pub fn splice_into<F>(
        daemon: Rc<RefCell<TierDaemon>>,
        plan: &mut WorkPlan,
        rounds: usize,
        mut work: F,
    ) where
        F: FnMut(&mut WorkPlan, usize) + 'static,
    {
        for round in 0..rounds {
            work(plan, round);
            let d = Rc::clone(&daemon);
            plan.single_ctx(move |machine| d.borrow_mut().wake(machine));
        }
    }
}

/// Remaining free frames per node, decremented as destinations are
/// assigned so one wake-up cannot overfill a bank.
struct FreeTracker {
    free: Vec<u64>,
}

impl FreeTracker {
    fn capture(machine: &Machine) -> FreeTracker {
        FreeTracker {
            free: machine
                .topology()
                .node_ids()
                .map(|n| machine.frames.free_on(n))
                .collect(),
        }
    }
}

/// A group of pages headed for one destination node.
struct DestBatch {
    dest: NodeId,
    pages: Vec<u64>,
}

/// Assign each page the nearest node of the target tier that still has a
/// free frame (ties: most free, then lowest id) and group pages by the
/// chosen destination, preserving plan order within each group. Pages
/// whose whole target tier is full come back in the dropped list (in
/// plan order) so the caller can count or defer them; unmapped pages are
/// silently skipped.
fn assign_destinations(
    machine: &Machine,
    vpns: &[u64],
    target: MemTier,
    free: &mut FreeTracker,
) -> (Vec<DestBatch>, Vec<u64>) {
    let topo = machine.topology();
    let candidates: Vec<NodeId> = topo.nodes_in_tier(target);
    let mut batches: Vec<DestBatch> = Vec::new();
    let mut dropped: Vec<u64> = Vec::new();
    for &vpn in vpns {
        let Some(pte) = machine.space.page_table.get(vpn) else {
            continue;
        };
        let src = machine.frames.node_of(pte.frame);
        let dest = candidates
            .iter()
            .copied()
            .filter(|d| free.free[d.index()] > 0)
            .min_by_key(|d| {
                (
                    topo.hops(src, *d),
                    std::cmp::Reverse(free.free[d.index()]),
                    d.0,
                )
            });
        let Some(dest) = dest else {
            dropped.push(vpn); // target tier is full
            continue;
        };
        free.free[dest.index()] -= 1;
        match batches.iter_mut().find(|b| b.dest == dest) {
            Some(b) => b.pages.push(vpn),
            None => batches.push(DestBatch {
                dest,
                pages: vec![vpn],
            }),
        }
    }
    (batches, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ThresholdPolicy;
    use numa_machine::MemAccessKind;
    use numa_rt::Team;
    use numa_topology::CoreId;
    use numa_vm::{MemPolicy, PAGE_SIZE};

    /// A machine with `n` pages first-touched on DRAM node 0 and `m`
    /// pages bound to the slow node 4, all populated.
    fn populated(n: u64, m: u64) -> (Machine, numa_vm::VirtAddr, numa_vm::VirtAddr) {
        let mut machine = Machine::tiered_4p2();
        let a = machine.alloc(n * PAGE_SIZE, MemPolicy::FirstTouch);
        let b = machine.alloc(m * PAGE_SIZE, MemPolicy::Bind(NodeId(4)));
        let threads = vec![numa_machine::ThreadSpec::scripted(
            CoreId(0),
            vec![
                Op::write(a, n * PAGE_SIZE, MemAccessKind::Stream),
                Op::write(b, m * PAGE_SIZE, MemAccessKind::Stream),
            ],
        )];
        machine.run(threads, &[]);
        (machine, a, b)
    }

    #[test]
    fn daemon_promotes_hot_slow_pages() {
        let (mut machine, _a, b) = populated(2, 3);
        // Heat up the slow pages well past the threshold.
        machine.heat.clear();
        for p in 0..3u64 {
            machine.heat.insert((b + p * PAGE_SIZE).vpn(), 100);
        }
        let mut daemon = TierDaemon::new(Box::<ThresholdPolicy>::default(), true);
        let ops = daemon.wake(&machine);
        assert!(!ops.is_empty());
        let total: usize = ops
            .iter()
            .map(|o| match o {
                Op::TierMigrate { pages, dest, .. } => {
                    assert_eq!(
                        machine.topology().tier_of(*dest),
                        MemTier::Dram,
                        "promotions must land in DRAM"
                    );
                    pages.len()
                }
                _ => 0,
            })
            .sum();
        assert_eq!(total, 3);
        assert_eq!(daemon.planned_promotions, 3);
    }

    #[test]
    fn daemon_wakeup_is_deterministic() {
        let mk = || {
            let (mut machine, _a, b) = populated(4, 4);
            for p in 0..4u64 {
                machine.heat.insert((b + p * PAGE_SIZE).vpn(), 50);
            }
            let mut daemon = TierDaemon::new(Box::<ThresholdPolicy>::default(), true);
            format!("{:?}", daemon.wake(&machine))
        };
        assert_eq!(mk(), mk());
    }

    /// A policy that wants exactly one slow-tier page promoted, every
    /// wake-up — so the drop/defer path is isolated from the threshold
    /// policy's room-making demotions.
    struct PromoteOne {
        vpn: u64,
    }

    impl TierPolicy for PromoteOne {
        fn plan(&mut self, _: &TierView) -> crate::policy::TierPlan {
            crate::policy::TierPlan {
                promote: vec![self.vpn],
                demote: vec![],
            }
        }
        fn name(&self) -> &'static str {
            "promote-one"
        }
    }

    /// A machine whose whole DRAM tier (4 nodes x 2 frames) is filled by
    /// `a`, plus one populated slow-tier page `b` that a promotion will
    /// find no room for.
    fn full_dram_machine() -> (Machine, numa_vm::VirtAddr, numa_vm::VirtAddr) {
        let topo = numa_topology::presets::tiered_4p2_with(
            numa_topology::CostModel::default(),
            2 * PAGE_SIZE,
            64 * PAGE_SIZE,
        );
        let mut machine = Machine::new(
            std::sync::Arc::new(topo),
            numa_kernel::KernelConfig::tiered(),
        );
        let a = machine.alloc(8 * PAGE_SIZE, MemPolicy::FirstTouch);
        let b = machine.alloc(PAGE_SIZE, MemPolicy::Bind(NodeId(4)));
        // Touch the filler from a core on each node so every bank fills,
        // then populate the slow page.
        let threads = (0..4u16)
            .map(|n| {
                numa_machine::ThreadSpec::scripted(
                    CoreId(n * 4),
                    vec![Op::write(
                        a + u64::from(n) * 2 * PAGE_SIZE,
                        2 * PAGE_SIZE,
                        MemAccessKind::Stream,
                    )],
                )
            })
            .chain(std::iter::once(numa_machine::ThreadSpec::scripted(
                CoreId(0),
                vec![Op::write(b, PAGE_SIZE, MemAccessKind::Stream)],
            )))
            .collect();
        machine.run(threads, &[]);
        (machine, a, b)
    }

    #[test]
    fn deferred_retry_reissues_dropped_moves() {
        let (mut machine, a, b) = full_dram_machine();
        let mut daemon = TierDaemon::new(Box::new(PromoteOne { vpn: b.vpn() }), true);
        daemon.retry = RetryPolicy {
            max_attempts: 2,
            backoff_ns: 0,
        };
        // Wake 1: DRAM full everywhere — the promotion is dropped and
        // deferred, and the daemon keeps running.
        let ops = daemon.wake(&machine);
        assert!(ops.is_empty(), "no frame to promote into: {ops:?}");
        assert_eq!(daemon.dropped_moves, 1);
        assert_eq!(daemon.deferred_retries, 0);
        assert_eq!(daemon.gave_up, 0);

        // Free one DRAM page; the deferred move gets first claim on it.
        for f in machine.space.munmap(a).unwrap() {
            machine.frames.free(f);
        }
        let ops = daemon.wake(&machine);
        assert!(
            ops.iter()
                .any(|o| matches!(o, Op::TierMigrate { pages, .. } if pages == &[b.vpn()])),
            "deferred promotion must be re-issued: {ops:?}"
        );
        assert_eq!(daemon.deferred_retries, 1);
        assert_eq!(daemon.gave_up, 0);
    }

    #[test]
    fn deferred_retry_gives_up_after_budget() {
        // Same full-DRAM setup, but the tier never drains: the first
        // drop's deferral burns its 2-attempt budget on wakes 2 and 3 and
        // the daemon abandons it. (The policy keeps re-nominating the
        // page, so dropped_moves keeps counting fresh drops.)
        let (machine, _a, b) = full_dram_machine();
        let mut daemon = TierDaemon::new(Box::new(PromoteOne { vpn: b.vpn() }), true);
        daemon.retry = RetryPolicy {
            max_attempts: 2,
            backoff_ns: 0,
        };
        for _ in 0..3 {
            assert!(
                daemon.wake(&machine).is_empty(),
                "nothing can be promoted into a full tier"
            );
        }
        assert!(daemon.gave_up >= 1, "budget exhausted must give up");
        assert_eq!(daemon.deferred_retries, 0);
        assert!(daemon.dropped_moves >= 2);
    }

    #[test]
    fn spliced_daemon_migrates_mid_plan() {
        let (mut machine, _a, b) = populated(2, 2);
        let daemon = Rc::new(RefCell::new(TierDaemon::new(
            Box::new(ThresholdPolicy {
                promote_min: 2,
                ..Default::default()
            }),
            true,
        )));
        let mut plan = WorkPlan::new();
        TierDaemon::splice_into(Rc::clone(&daemon), &mut plan, 3, move |plan, _round| {
            plan.each_thread(move |tid| {
                if tid == 0 {
                    // Keep the slow pages hot every round.
                    vec![Op::read(b, 2 * PAGE_SIZE, MemAccessKind::Random)]
                } else {
                    vec![]
                }
            });
        });
        Team::all_cores(&machine).take(4).run(&mut machine, plan);
        assert_eq!(
            machine.topology().tier_of(machine.page_node(b).unwrap()),
            MemTier::Dram,
            "hot slow pages must end up promoted"
        );
        assert!(
            machine
                .kernel
                .counters
                .get(numa_stats::Counter::TierPromotions)
                >= 2
        );
    }
}
