//! Offline stand-in for the `serde` facade.
//!
//! The workspace uses serde exclusively in `#[derive(Serialize,
//! Deserialize)]` position; no crate calls serialization APIs or writes
//! serde trait bounds. This facade therefore only needs to put the two
//! derive-macro names in scope. The macros themselves (in the sibling
//! `serde_derive` stub) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};
