//! Offline mini-implementation of the `criterion` subset the workspace's
//! `crates/bench/benches/*.rs` harnesses use.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be fetched. This crate keeps the same API shape —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId::new`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! but replaces the statistical engine with a fixed-sample wall-clock
//! mean, printed one line per benchmark. The simulator being benchmarked
//! is deterministic, so variance analysis adds little here anyway.

use std::fmt::Display;
use std::time::Instant;

/// Entry point; holds the default sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, possibly `function/parameter`-shaped.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Time `routine`, repeating it `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        0
    } else {
        b.total_ns / b.iters
    };
    println!(
        "bench {label:<48} {:>12} ns/iter ({} samples)",
        mean, b.iters
    );
}

/// Collect benchmark functions into one runnable target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;
