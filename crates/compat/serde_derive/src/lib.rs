//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace only ever uses serde in derive position (no code calls
//! `serialize`/`deserialize` or writes serde trait bounds), so in the
//! offline build environment the derives can expand to nothing. See
//! `crates/compat/README.md`.

use proc_macro::TokenStream;

/// Expands to nothing; the workspace never calls serialization.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the workspace never calls deserialization.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
