//! Offline scoped-thread work pool for the deterministic sweep runner.
//!
//! The build environment has no network access to crates.io, so this
//! crate stands in for an external pool (see `crates/compat/README.md`).
//! It deliberately exposes a *narrower* API than the crates.io
//! `threadpool`: one function, [`par_map`], built on `std::thread::scope`,
//! because the workspace's only parallelism need is "run the independent
//! items of an experiment sweep on a few host threads and give me the
//! results **in input order**".
//!
//! Determinism contract: `par_map(jobs, items, f)` returns exactly what
//! `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()` returns, for
//! every `jobs`, provided `f` is a pure function of its arguments. Workers
//! race only for *which item to claim next* (an atomic counter); each
//! result lands in its item's own slot, so completion order never leaks
//! into the output. Simulations themselves stay single-threaded — each
//! `f` call builds its own `Machine` — which is what keeps virtual-time
//! results byte-identical whether `jobs` is 1 or 16.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `jobs` host threads, preserving input
/// order in the returned vector.
///
/// `jobs <= 1` (or a single item) runs inline on the caller's thread with
/// no pool at all — the sequential path is the parallel path's semantics,
/// not a separate implementation to keep in sync. A panic in any `f` call
/// propagates to the caller once the scope joins.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Clamp to the cores actually available: `--jobs` above the
    // container's CPU count would only add scheduling churn (measured as
    // a ~10% wall-clock regression on a 1-CPU host), never throughput.
    let workers = jobs.max(1).min(items.len()).min(available_parallelism());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One slot per item: workers claim indices from the shared counter and
    // write results into their own slots, so output order is input order.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined with an unfilled slot")
        })
        .collect()
}

/// [`par_map`] for sweeps whose items may be too cheap to amortise thread
/// startup: the sweep stays sequential unless the summed per-item work
/// estimate reaches `min_parallel_work`.
///
/// Small sweeps (e.g. a four-item quick sweep taking tens of
/// milliseconds) run *slower* under a pool — spawn/join and slot
/// synchronisation outweigh the work — so callers pass a cheap work
/// estimator (`pages`, matrix cells, ...) and the threshold their sweep
/// needs. Work units are caller-defined; only the comparison matters.
/// Output is identical to [`par_map`] for any `jobs` either way: the gate
/// picks *how* the items run, never *what* they return.
pub fn par_map_weighted<T, R, F, W>(
    jobs: usize,
    items: &[T],
    work: W,
    min_parallel_work: u64,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    W: Fn(&T) -> u64,
{
    let total: u64 = items.iter().map(work).sum();
    let jobs = if total < min_parallel_work { 1 } else { jobs };
    par_map(jobs, items, f)
}

/// The host's available hardware parallelism (1 when the runtime cannot
/// tell). [`par_map`]/[`par_map_weighted`] never spawn more workers than
/// this, whatever `jobs` asks for: extra workers on a saturated host are
/// pure context-switch overhead, and the output is `jobs`-independent by
/// contract anyway.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker count requested via an environment variable (e.g.
/// `NUMA_BENCH_JOBS`), if set and parseable as a positive integer.
pub fn jobs_from_env(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&j| j > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |i, &v| {
            // Skew completion order: later items finish first.
            std::thread::sleep(std::time::Duration::from_micros(100 - v));
            (i, v * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, items[i] * 2);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..37).collect();
        let f = |i: usize, v: &u64| i as u64 * 1000 + v * v;
        let seq = par_map(1, &items, f);
        let par = par_map(4, &items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(64, &items, |_, &v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single() {
        let none: [u32; 0] = [];
        assert!(par_map(4, &none, |_, &v| v).is_empty());
        assert_eq!(par_map(4, &[9u32], |i, &v| (i, v)), vec![(0, 9)]);
    }

    #[test]
    fn worker_clamp_keeps_output_identical() {
        // On any host, asking for absurd parallelism must change neither
        // results nor order — only how many threads actually spawn.
        let items: Vec<u64> = (0..23).collect();
        let f = |i: usize, v: &u64| i as u64 + v * 7;
        assert_eq!(par_map(4096, &items, f), par_map(1, &items, f));
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn jobs_from_env_parses() {
        std::env::set_var("TP_TEST_JOBS_OK", "3");
        std::env::set_var("TP_TEST_JOBS_BAD", "zero");
        std::env::set_var("TP_TEST_JOBS_ZERO", "0");
        assert_eq!(jobs_from_env("TP_TEST_JOBS_OK"), Some(3));
        assert_eq!(jobs_from_env("TP_TEST_JOBS_BAD"), None);
        assert_eq!(jobs_from_env("TP_TEST_JOBS_ZERO"), None);
        assert_eq!(jobs_from_env("TP_TEST_JOBS_UNSET"), None);
    }

    #[test]
    fn weighted_small_sweep_stays_on_caller_thread() {
        let items: Vec<u64> = (0..8).collect();
        let me = std::thread::current().id();
        let out = par_map_weighted(
            4,
            &items,
            |&v| v,
            1_000,
            |_, &v| {
                assert_eq!(
                    std::thread::current().id(),
                    me,
                    "below-threshold sweep must not spawn workers"
                );
                v * 2
            },
        );
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn weighted_large_sweep_matches_sequential() {
        let items: Vec<u64> = (0..40).collect();
        let f = |i: usize, v: &u64| i as u64 * 100 + v * 3;
        let gated = par_map_weighted(4, &items, |&v| v, 10, f);
        let seq = par_map(1, &items, f);
        assert_eq!(gated, seq);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items = [1u32, 2, 3, 4];
        par_map(2, &items, |_, &v| {
            if v == 3 {
                panic!("boom");
            }
            v
        });
    }
}
