//! Offline mini-implementation of the `proptest` subset this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be fetched. This crate implements exactly the surface
//! the workspace's `proptest_*.rs` tests rely on:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(pat in strategy, ...) { ... } }`
//!   macro form;
//! * integer/float range strategies (`0u64..100`, `0.0f64..1.0`),
//!   `any::<T>()`, tuple strategies, `proptest::collection::vec` and
//!   `proptest::collection::btree_set`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//!   `TestCaseError::fail` (usable with `?`), and
//!   `ProptestConfig::with_cases`.
//!
//! Unlike the real proptest, generation is **derandomized**: every case is
//! produced by a SplitMix64 stream seeded only by the case index, so runs
//! are bit-identical everywhere (the workspace's determinism requirement,
//! DESIGN.md §7). There is no shrinking — a failing case prints its case
//! index and message.

pub mod test_runner {
    use std::fmt;

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 32 cases (smaller than upstream's 256: the workspace's property
        /// tests each run whole machine simulations).
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A test-case failure (or rejection via `prop_assume!`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The generated inputs do not satisfy an assumption; the case is
        /// skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod rng {
    /// Deterministic SplitMix64 stream, seeded from the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u32) -> Self {
            TestRng(
                0x9E37_79B9_7F4A_7C15u64
                    ^ (u64::from(case) + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            )
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; 0 when `n` is 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::Range;

    /// A value generator (the proptest `Strategy` trait, reduced to what
    /// derandomized generation needs).
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Produce one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+)),*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A 0),
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4)
    );
}

pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct OptionStrategy<S> {
        probability: f64,
        inner: S,
    }

    /// Generate `Some` from `inner` with the given probability, `None`
    /// otherwise (the proptest `option::weighted` combinator).
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> OptionStrategy<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1], got {probability}"
        );
        OptionStrategy { probability, inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Draw the coin first so the inner strategy's stream
            // consumption stays conditional, as in real proptest.
            if rng.unit_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Length specification for collection strategies: a `usize` (exact
    /// length) or a `Range<usize>` (half-open), as in upstream proptest.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let span = (self.0.end - self.0.start) as u64;
            self.0.start + rng.below(span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `elem`-generated values with a `size`-drawn length.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the set
    /// may be smaller than the drawn length (same as upstream).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A set of `elem`-generated values with a `size`-drawn upper bound.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// The test-defining macro. Each contained `fn` runs `Config::cases`
/// deterministic cases; `#[test]` is written by the caller (as with the
/// real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::rng::TestRng::for_case(case);
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body (returns an `Err` that the
/// runner reports with the failing case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Skip the current case when its generated inputs are unusable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::rng::TestRng::for_case(7);
        let mut b = crate::rng::TestRng::for_case(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|e| *e < 100));
        }

        #[test]
        fn tuples_and_assume(pair in (0u8..10, 0u8..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert!(pair.0 != pair.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_parses(b in any::<bool>()) {
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}
