//! Ready-made machine descriptions.
//!
//! [`opteron_4p`] reproduces the paper's experimentation platform (§4.1,
//! Figure 3); the others are smaller/larger machines used by tests and the
//! scaling extensions ("We are now running similar experiments on larger
//! NUMA machines", §6).

use crate::spec::{CoreSpec, Link, NodeSpec};
use crate::{CostModel, NodeId, Topology};

/// The paper's platform: four quad-core 1.9 GHz Opteron 8347HE processors,
/// 8 GB and 2 MB L3 per node, HyperTransport square interconnect
/// (nodes 0–1, 0–2, 1–3, 2–3; opposite corners route through two hops).
pub fn opteron_4p() -> Topology {
    opteron_4p_with_cost(CostModel::default())
}

/// [`opteron_4p`] with shrunk per-node memory banks. The pressure
/// experiments use this to create genuine frame scarcity with working
/// sets of a few hundred pages instead of paper-scale gigabytes.
pub fn opteron_4p_with_memory(bytes_per_node: u64) -> Topology {
    let mut nodes = vec![NodeSpec::opteron_8347he(); 4];
    for n in &mut nodes {
        n.memory_bytes = bytes_per_node;
    }
    let mut cores = Vec::with_capacity(16);
    for n in 0..4u16 {
        for _ in 0..4 {
            cores.push(CoreSpec::opteron_8347he(NodeId(n)));
        }
    }
    let links = vec![
        Link::hypertransport(NodeId(0), NodeId(1)),
        Link::hypertransport(NodeId(0), NodeId(2)),
        Link::hypertransport(NodeId(1), NodeId(3)),
        Link::hypertransport(NodeId(2), NodeId(3)),
    ];
    Topology::new(nodes, cores, links, CostModel::default()).expect("preset is valid")
}

/// [`opteron_4p`] with a custom cost model (ablations).
pub fn opteron_4p_with_cost(cost: CostModel) -> Topology {
    let nodes = vec![NodeSpec::opteron_8347he(); 4];
    let mut cores = Vec::with_capacity(16);
    for n in 0..4u16 {
        for _ in 0..4 {
            cores.push(CoreSpec::opteron_8347he(NodeId(n)));
        }
    }
    let links = vec![
        Link::hypertransport(NodeId(0), NodeId(1)),
        Link::hypertransport(NodeId(0), NodeId(2)),
        Link::hypertransport(NodeId(1), NodeId(3)),
        Link::hypertransport(NodeId(2), NodeId(3)),
    ];
    Topology::new(nodes, cores, links, cost).expect("preset is valid")
}

/// A small two-node machine (2 cores per node) for fast unit tests.
pub fn two_node() -> Topology {
    two_node_with_cost(CostModel::default())
}

/// [`two_node`] with a custom cost model.
pub fn two_node_with_cost(cost: CostModel) -> Topology {
    let nodes = vec![NodeSpec::opteron_8347he(); 2];
    let cores = vec![
        CoreSpec::opteron_8347he(NodeId(0)),
        CoreSpec::opteron_8347he(NodeId(0)),
        CoreSpec::opteron_8347he(NodeId(1)),
        CoreSpec::opteron_8347he(NodeId(1)),
    ];
    let links = vec![Link::hypertransport(NodeId(0), NodeId(1))];
    Topology::new(nodes, cores, links, cost).expect("preset is valid")
}

/// A tiered machine: the [`opteron_4p`] square of four DRAM nodes plus two
/// cpuless CXL-class expander nodes (4 and 5) hanging off opposite corners
/// (node 4 behind node 0, node 5 behind node 3). The expanders run at
/// roughly 3x the DRAM latency and a third of its bandwidth (the latency
/// multiplier lives in the cost model, the bandwidth in
/// [`NodeSpec::cxl_expander`]).
pub fn tiered_4p2() -> Topology {
    tiered_4p2_with(CostModel::default(), 8 << 30, 16 << 30)
}

/// [`tiered_4p2`] with a custom cost model and per-node capacities
/// (`dram_bytes_per_node` for nodes 0-3, `slow_bytes_per_node` for the two
/// expanders). Experiments shrink the DRAM banks to force capacity
/// pressure without allocating paper-scale working sets.
pub fn tiered_4p2_with(
    cost: CostModel,
    dram_bytes_per_node: u64,
    slow_bytes_per_node: u64,
) -> Topology {
    let mut nodes = Vec::with_capacity(6);
    for _ in 0..4 {
        let mut n = NodeSpec::opteron_8347he();
        n.memory_bytes = dram_bytes_per_node;
        nodes.push(n);
    }
    for _ in 0..2 {
        let mut n = NodeSpec::cxl_expander();
        n.memory_bytes = slow_bytes_per_node;
        nodes.push(n);
    }
    let mut cores = Vec::with_capacity(16);
    for n in 0..4u16 {
        for _ in 0..4 {
            cores.push(CoreSpec::opteron_8347he(NodeId(n)));
        }
    }
    let links = vec![
        Link::hypertransport(NodeId(0), NodeId(1)),
        Link::hypertransport(NodeId(0), NodeId(2)),
        Link::hypertransport(NodeId(1), NodeId(3)),
        Link::hypertransport(NodeId(2), NodeId(3)),
        Link::hypertransport(NodeId(0), NodeId(4)),
        Link::hypertransport(NodeId(3), NodeId(5)),
    ];
    Topology::new(nodes, cores, links, cost).expect("preset is valid")
}

/// An eight-node machine (4 cores per node) arranged as a twisted ladder —
/// the "larger NUMA machines where data locality is more critical" that the
/// paper's conclusion points to.
pub fn eight_node() -> Topology {
    let nodes = vec![NodeSpec::opteron_8347he(); 8];
    let mut cores = Vec::with_capacity(32);
    for n in 0..8u16 {
        for _ in 0..4 {
            cores.push(CoreSpec::opteron_8347he(NodeId(n)));
        }
    }
    // Two squares (0-1-3-2, 4-5-7-6) joined by vertical links.
    let links = vec![
        Link::hypertransport(NodeId(0), NodeId(1)),
        Link::hypertransport(NodeId(0), NodeId(2)),
        Link::hypertransport(NodeId(1), NodeId(3)),
        Link::hypertransport(NodeId(2), NodeId(3)),
        Link::hypertransport(NodeId(4), NodeId(5)),
        Link::hypertransport(NodeId(4), NodeId(6)),
        Link::hypertransport(NodeId(5), NodeId(7)),
        Link::hypertransport(NodeId(6), NodeId(7)),
        Link::hypertransport(NodeId(0), NodeId(4)),
        Link::hypertransport(NodeId(3), NodeId(7)),
    ];
    Topology::new(nodes, cores, links, CostModel::default()).expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_shape() {
        let t = two_node();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.core_count(), 4);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn eight_node_connected_and_wider() {
        let t = eight_node();
        assert_eq!(t.node_count(), 8);
        // Farthest pair needs more than two hops on the twisted ladder.
        let max_hops = t
            .node_ids()
            .flat_map(|a| t.node_ids().map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .max()
            .unwrap();
        assert!(max_hops >= 3, "eight-node diameter {max_hops}");
    }

    #[test]
    fn tiered_preset_shape() {
        use crate::MemTier;
        let t = tiered_4p2();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.core_count(), 16, "expander nodes are cpuless");
        assert!(t.is_tiered());
        assert_eq!(
            t.nodes_in_tier(MemTier::Dram),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(t.nodes_in_tier(MemTier::Slow), vec![NodeId(4), NodeId(5)]);
        assert!(t.cores_of_node(NodeId(4)).is_empty());
        // Expanders hang one hop off their host socket, reachable from all.
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 1);
        assert_eq!(t.hops(NodeId(3), NodeId(5)), 1);
        assert_eq!(t.hops(NodeId(4), NodeId(5)), 4);
        assert!(!opteron_4p().is_tiered());
    }

    #[test]
    fn presets_core_node_mapping() {
        let t = opteron_4p();
        for c in t.core_ids() {
            let n = t.node_of_core(c);
            assert!(t.cores_of_node(n).contains(&c));
        }
    }
}
