//! Component specifications: nodes, cores and interconnect links.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Performance tier of a node's memory bank.
///
/// Classic NUMA machines have one tier; heterogeneous (tiered) machines add
/// capacity nodes behind a slower fabric — CXL memory expanders, persistent
/// memory in memory mode, and similar. The tier drives the latency and
/// bandwidth multipliers in the cost model (see
/// `CostModel::{slow_tier_latency_mult, slow_tier_bw_mult}`) and selects
/// which banks the tiering daemon promotes from and demotes to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum MemTier {
    /// Directly attached DRAM: the fast tier.
    #[default]
    Dram,
    /// CXL-class expander memory: higher latency, lower bandwidth.
    Slow,
}

impl std::fmt::Display for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemTier::Dram => write!(f, "dram"),
            MemTier::Slow => write!(f, "slow"),
        }
    }
}

/// A NUMA node: one memory bank plus its attached last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Capacity of the memory bank in bytes.
    pub memory_bytes: u64,
    /// Size of the shared last-level (L3) cache attached to this node.
    pub l3_bytes: u64,
    /// Sustainable DRAM bandwidth of this bank, in bytes per nanosecond
    /// (== GB/s).
    pub dram_bw_bytes_per_ns: f64,
    /// Performance tier of this bank.
    pub tier: MemTier,
}

impl NodeSpec {
    /// The paper's Opteron 8347HE node: 8 GB memory, 2 MB shared L3,
    /// DDR2-class local bandwidth.
    pub fn opteron_8347he() -> Self {
        NodeSpec {
            memory_bytes: 8 << 30,
            l3_bytes: 2 << 20,
            dram_bw_bytes_per_ns: 6.4,
            tier: MemTier::Dram,
        }
    }

    /// A CXL-class memory expander bank: no cores, no cache, roughly a
    /// third of the DRAM bank's sustainable bandwidth (the ~3x latency
    /// penalty is applied by the cost model's slow-tier multiplier at
    /// access time). Capacity defaults to the DRAM bank's 8 GB; callers
    /// size it per experiment.
    pub fn cxl_expander() -> Self {
        NodeSpec {
            memory_bytes: 8 << 30,
            l3_bytes: 0,
            dram_bw_bytes_per_ns: 6.4 / 3.0,
            tier: MemTier::Slow,
        }
    }
}

/// A CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// The NUMA node this core belongs to.
    pub node: NodeId,
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Peak double-precision floating-point operations per cycle.
    pub flops_per_cycle: u32,
}

impl CoreSpec {
    /// One core of the paper's 1.9 GHz Opteron 8347HE (SSE2: 2 DP flops
    /// per cycle).
    pub fn opteron_8347he(node: NodeId) -> Self {
        CoreSpec {
            node,
            freq_hz: 1_900_000_000,
            flops_per_cycle: 2,
        }
    }

    /// Peak flops per nanosecond for this core.
    pub fn flops_per_ns(&self) -> f64 {
        self.freq_hz as f64 * self.flops_per_cycle as f64 / 1e9
    }
}

/// A bidirectional point-to-point interconnect link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Usable bandwidth in bytes per nanosecond (== GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl Link {
    /// A HyperTransport-1-class link (~4 GB/s usable per direction;
    /// we model the link as a single shared resource, which is what makes
    /// cross-traffic congestion visible, cf. paper §4.5).
    pub fn hypertransport(a: NodeId, b: NodeId) -> Self {
        Link {
            a,
            b,
            bandwidth_bytes_per_ns: 4.0,
        }
    }

    /// Does this link connect `x` and `y` (in either order)?
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// Given one endpoint, return the other; `None` if `from` is not an
    /// endpoint of this link.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if self.a == from {
            Some(self.b)
        } else if self.b == from {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_node_spec() {
        let n = NodeSpec::opteron_8347he();
        assert_eq!(n.memory_bytes, 8 << 30);
        assert_eq!(n.l3_bytes, 2 << 20);
        assert_eq!(n.tier, MemTier::Dram);
    }

    #[test]
    fn cxl_node_spec() {
        let n = NodeSpec::cxl_expander();
        assert_eq!(n.tier, MemTier::Slow);
        assert_eq!(n.l3_bytes, 0, "expander has no attached cache");
        assert!(
            n.dram_bw_bytes_per_ns < NodeSpec::opteron_8347he().dram_bw_bytes_per_ns / 2.0,
            "expander bandwidth must be well below the DRAM bank's"
        );
        assert_eq!(MemTier::default(), MemTier::Dram);
        assert_eq!(MemTier::Slow.to_string(), "slow");
    }

    #[test]
    fn core_flops_rate() {
        let c = CoreSpec::opteron_8347he(NodeId(0));
        assert!((c.flops_per_ns() - 3.8).abs() < 1e-9);
    }

    #[test]
    fn link_connects_either_order() {
        let l = Link::hypertransport(NodeId(0), NodeId(1));
        assert!(l.connects(NodeId(0), NodeId(1)));
        assert!(l.connects(NodeId(1), NodeId(0)));
        assert!(!l.connects(NodeId(0), NodeId(2)));
    }

    #[test]
    fn link_other_end() {
        let l = Link::hypertransport(NodeId(2), NodeId(3));
        assert_eq!(l.other_end(NodeId(2)), Some(NodeId(3)));
        assert_eq!(l.other_end(NodeId(3)), Some(NodeId(2)));
        assert_eq!(l.other_end(NodeId(0)), None);
    }
}
