//! Component specifications: nodes, cores and interconnect links.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A NUMA node: one memory bank plus its attached last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Capacity of the memory bank in bytes.
    pub memory_bytes: u64,
    /// Size of the shared last-level (L3) cache attached to this node.
    pub l3_bytes: u64,
    /// Sustainable DRAM bandwidth of this bank, in bytes per nanosecond
    /// (== GB/s).
    pub dram_bw_bytes_per_ns: f64,
}

impl NodeSpec {
    /// The paper's Opteron 8347HE node: 8 GB memory, 2 MB shared L3,
    /// DDR2-class local bandwidth.
    pub fn opteron_8347he() -> Self {
        NodeSpec {
            memory_bytes: 8 << 30,
            l3_bytes: 2 << 20,
            dram_bw_bytes_per_ns: 6.4,
        }
    }
}

/// A CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// The NUMA node this core belongs to.
    pub node: NodeId,
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Peak double-precision floating-point operations per cycle.
    pub flops_per_cycle: u32,
}

impl CoreSpec {
    /// One core of the paper's 1.9 GHz Opteron 8347HE (SSE2: 2 DP flops
    /// per cycle).
    pub fn opteron_8347he(node: NodeId) -> Self {
        CoreSpec {
            node,
            freq_hz: 1_900_000_000,
            flops_per_cycle: 2,
        }
    }

    /// Peak flops per nanosecond for this core.
    pub fn flops_per_ns(&self) -> f64 {
        self.freq_hz as f64 * self.flops_per_cycle as f64 / 1e9
    }
}

/// A bidirectional point-to-point interconnect link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Usable bandwidth in bytes per nanosecond (== GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl Link {
    /// A HyperTransport-1-class link (~4 GB/s usable per direction;
    /// we model the link as a single shared resource, which is what makes
    /// cross-traffic congestion visible, cf. paper §4.5).
    pub fn hypertransport(a: NodeId, b: NodeId) -> Self {
        Link {
            a,
            b,
            bandwidth_bytes_per_ns: 4.0,
        }
    }

    /// Does this link connect `x` and `y` (in either order)?
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// Given one endpoint, return the other; `None` if `from` is not an
    /// endpoint of this link.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if self.a == from {
            Some(self.b)
        } else if self.b == from {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_node_spec() {
        let n = NodeSpec::opteron_8347he();
        assert_eq!(n.memory_bytes, 8 << 30);
        assert_eq!(n.l3_bytes, 2 << 20);
    }

    #[test]
    fn core_flops_rate() {
        let c = CoreSpec::opteron_8347he(NodeId(0));
        assert!((c.flops_per_ns() - 3.8).abs() < 1e-9);
    }

    #[test]
    fn link_connects_either_order() {
        let l = Link::hypertransport(NodeId(0), NodeId(1));
        assert!(l.connects(NodeId(0), NodeId(1)));
        assert!(l.connects(NodeId(1), NodeId(0)));
        assert!(!l.connects(NodeId(0), NodeId(2)));
    }

    #[test]
    fn link_other_end() {
        let l = Link::hypertransport(NodeId(2), NodeId(3));
        assert_eq!(l.other_end(NodeId(2)), Some(NodeId(3)));
        assert_eq!(l.other_end(NodeId(3)), Some(NodeId(2)));
        assert_eq!(l.other_end(NodeId(0)), None);
    }
}
