//! The calibrated cost model.
//!
//! Every timing constant used by the simulated VM, kernel and memory system
//! lives here, in one flat struct, so experiments can perturb any of them
//! (the ablation benches sweep several). Defaults are calibrated against the
//! paper's own measurements; each field's doc comment cites the source.

use serde::{Deserialize, Serialize};

/// Timing and sizing constants for the simulated machine and kernel.
///
/// All times are virtual nanoseconds; all bandwidths are bytes per
/// nanosecond (numerically equal to GB/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---------------------------------------------------------------- sizes
    /// Base page size. The paper's machine uses 4 kB pages throughout.
    pub page_size: u64,
    /// Huge page size (2 MB on x86-64). Used only by the huge-page
    /// migration extension (paper §6 future work).
    pub huge_page_size: u64,
    /// Cache line size.
    pub cache_line: u64,

    // ------------------------------------------------------- memory system
    /// Local DRAM access latency (ns) for a latency-bound access.
    pub dram_latency_ns: f64,
    /// Last-level cache hit latency (ns).
    pub cache_hit_ns: f64,
    /// NUMA factor by hop distance: index 0 = local (1.0), 1 = one hop, ...
    /// The paper reports 1.2–1.4 on the 4-socket Opteron (§2.1, §4.1).
    pub numa_factor: Vec<f64>,
    /// Single-core user-space copy bandwidth (MMX/SSE streaming copy);
    /// the paper's inter-node `memcpy` sustains ~1.7–2 GB/s (Fig. 4).
    pub user_copy_bw: f64,
    /// Fraction of DRAM latency still exposed on a well-prefetched
    /// streaming access (BLAS1-style). Small: hardware prefetch hides
    /// most of it, which is why BLAS1 never benefits from migration
    /// (paper §4.5).
    pub stream_latency_exposure: f64,
    /// Fraction of DRAM latency exposed on blocked (BLAS3-style) accesses.
    pub blocked_latency_exposure: f64,
    /// Fraction of DRAM latency exposed on dependent random accesses.
    pub random_latency_exposure: f64,
    /// Single-core sustainable DRAM streaming bandwidth (bytes/ns). A core
    /// cannot saturate its node's controller alone.
    pub core_mem_bw: f64,
    /// Last-level cache bandwidth as seen by one core (bytes/ns).
    pub l3_bw: f64,

    // ------------------------------------------------------------- syscalls
    /// `move_pages` fixed overhead: "the base overhead remains high (near
    /// 160 µs)" (§4.2), attributed to locking and page-table manipulation.
    pub move_pages_base_ns: u64,
    /// `move_pages` per-page control cost (locking, page-table updates,
    /// status copy-out). Calibrated so that large-buffer throughput is
    /// ~600 MB/s with control ≈ 38 % of the total (§4.2, Fig. 6a):
    /// 4096 B / 600 MB/s ≈ 6.6 µs/page, of which copy at 1 GB/s is 4.1 µs.
    pub move_pages_control_ns: u64,
    /// Kernel page-copy bandwidth: "pages are copied during move_pages at
    /// only 1 GB/s" because the kernel lacks MMX/SSE copies (§4.2).
    pub kernel_copy_bw: f64,
    /// Per-destination-array-entry scan cost of the *un-patched*
    /// `move_pages`: "the processing of each array slot caused a linear
    /// lookup in the entire destination node array" (§3.1). The quadratic
    /// blow-up appears beyond ~256 pages in Fig. 4.
    pub unpatched_lookup_ns_per_entry: f64,
    /// `migrate_pages` fixed overhead: "a higher overhead (near 400 µs) due
    /// to the whole process virtual address space having to be traversed"
    /// (§4.2).
    pub migrate_pages_base_ns: u64,
    /// `migrate_pages` per-page control cost; calibrated to the ~780 MB/s
    /// large-buffer throughput of §4.2 (better locality, less locking than
    /// `move_pages`).
    pub migrate_pages_control_ns: u64,
    /// `madvise` fixed overhead.
    pub madvise_base_ns: u64,
    /// `madvise(MADV_MIGRATE_NEXT_TOUCH)` per-page marking cost (clear PTE
    /// present bits, set the next-touch flag).
    pub madvise_per_page_ns: u64,
    /// `mprotect` fixed overhead.
    pub mprotect_base_ns: u64,
    /// `mprotect` per-page PTE update cost.
    pub mprotect_per_page_ns: u64,
    /// `mbind`/`set_mempolicy` fixed overhead.
    pub mbind_base_ns: u64,

    // ----------------------------------------------------------- fault path
    /// Hardware page fault + kernel entry/exit (minor fault skeleton).
    pub page_fault_ns: u64,
    /// Kernel next-touch fault-path control per page: flag check, new-page
    /// allocation, PTE swap, page-table locking. Together with
    /// `page_fault_ns` this is calibrated to ≈ 20 % of the per-page cost
    /// (Fig. 6b) at ~800 MB/s (§4.3).
    pub nt_fault_control_ns: u64,
    /// First-touch allocation cost (allocate + zero a page).
    pub first_touch_ns: u64,
    /// Signal delivery + handler entry + sigreturn for the user-space
    /// next-touch path.
    pub sigsegv_deliver_ns: u64,

    // ---------------------------------------------------------------- TLB
    /// Fixed cost of a TLB shootdown episode (IPIs to all cores).
    pub tlb_flush_base_ns: u64,
    /// Additional shootdown cost per participating core.
    pub tlb_flush_per_core_ns: u64,

    // ------------------------------------------- page-table walks (ptplace)
    /// Expected TLB miss probability per page touched by a streaming
    /// access. Sequential sweeps translate each 4 kB page once but the
    /// 4-entry-per-line PTE locality and the hardware page-walk caches
    /// absorb almost all of it.
    pub tlb_miss_rate_stream: f64,
    /// TLB miss probability per page touched by blocked (BLAS3-style)
    /// accesses: tiles revisit pages but the working set exceeds TLB reach.
    pub tlb_miss_rate_blocked: f64,
    /// TLB miss probability per page touched by dependent random accesses:
    /// nearly every touch leaves TLB reach (Mitosis' GUPS-class workloads
    /// walk on almost every access).
    pub tlb_miss_rate_random: f64,
    /// Cost of one page-table walk when the walked table is node-local:
    /// up to four dependent loads, mostly caught by the page-walk caches.
    pub pt_walk_base_ns: f64,
    /// Per-hop multiplier on the walk cost when the page table is remote:
    /// `walk = pt_walk_base_ns * (1 + pt_walk_hop_mult * hops)`. At the
    /// default 1.05/hop a two-hop walk costs ~3.1x the local walk — the
    /// penalty Mitosis measures for fully remote page tables.
    pub pt_walk_hop_mult: f64,
    /// Fixed cost of one replica write-through episode (grab the remote
    /// replica's PTE lock, publish the update).
    pub pt_replica_sync_base_ns: u64,
    /// Per-PTE cost of replica writes (one cache line to another node).
    pub pt_replica_sync_per_pte_ns: u64,
    /// Fixed cost of migrating a single-homed page table to another node
    /// (numaPTE: triggered when the owning thread is rescheduled across
    /// nodes).
    pub pt_migrate_base_ns: u64,
    /// Per-PTE copy cost of a page-table migration.
    pub pt_migrate_per_pte_ns: u64,

    // --------------------------------------------------------------- locks
    /// Fraction of per-page kernel migration work (control **and** copy)
    /// serialized under the page-table/zone locks. The 2.6.27 migration
    /// path held these locks through most of the per-page work, which is
    /// why 4 threads only gain 50–60 % in Fig. 7 (Amdahl:
    /// `1 / (f + (1-f)/4)` ≈ 1.5 at f = 0.55) and why the paper's LU
    /// overhead numbers imply near-serialized fault handling at 16
    /// threads.
    pub pt_lock_fraction: f64,
    /// Whether syscall *base* overheads serialize on the mmap lock
    /// (they do: `move_pages` takes `mmap_sem`), which is what prevents
    /// sub-1 MB buffers from benefiting from parallel migration (Fig. 7).
    pub mmap_lock_serializes_base: bool,

    // ------------------------------------------------------------- tiering
    /// Latency multiplier for accesses served by a slow-tier (CXL-class)
    /// bank. CXL.mem expanders measure ~170-250 ns loads against ~80-90 ns
    /// local DRAM — roughly 3x (consistent with the Nomad [OSDI'23] and
    /// TPP [ASPLOS'23] platform numbers).
    pub slow_tier_latency_mult: f64,
    /// Bandwidth multiplier for slow-tier banks, applied on top of the
    /// bank's own `dram_bw_bytes_per_ns` when charging the accessing core.
    /// A x8 CXL link sustains roughly a third of a local DDR channel.
    pub slow_tier_bw_mult: f64,
    /// Per-page control cost to start a transactional (non-exclusive copy)
    /// tier migration: allocate the destination frame, record the shadow
    /// PTE and snapshot the write generation. No unmap, so cheaper than
    /// `move_pages` control.
    pub tier_txn_control_ns: u64,
    /// Per-page commit cost: re-check the write generation, flip the PTE
    /// to the new frame (the TLB shootdown is charged separately, batched).
    pub tier_commit_ns: u64,
    /// Per-page abort cost: discard the shadow copy and free the
    /// destination frame after a concurrent write invalidated it.
    pub tier_abort_ns: u64,

    // -------------------------------------------------------------- compute
    /// Efficiency factor applied to peak flops for BLAS3-class kernels
    /// (real BLAS on this machine reaches well under peak).
    pub blas3_efficiency: f64,
    /// Efficiency factor for BLAS1-class kernels (bandwidth bound).
    pub blas1_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            page_size: 4096,
            huge_page_size: 2 << 20,
            cache_line: 64,

            dram_latency_ns: 80.0,
            cache_hit_ns: 18.0,
            numa_factor: vec![1.0, 1.25, 1.40, 1.55],
            user_copy_bw: 2.0,
            stream_latency_exposure: 0.04,
            blocked_latency_exposure: 0.25,
            random_latency_exposure: 1.0,
            core_mem_bw: 3.0,
            l3_bw: 20.0,

            move_pages_base_ns: 160_000,
            move_pages_control_ns: 2_500,
            kernel_copy_bw: 1.0,
            unpatched_lookup_ns_per_entry: 15.0,
            migrate_pages_base_ns: 400_000,
            migrate_pages_control_ns: 1_150,
            madvise_base_ns: 2_000,
            madvise_per_page_ns: 120,
            mprotect_base_ns: 1_000,
            mprotect_per_page_ns: 60,
            mbind_base_ns: 1_500,

            page_fault_ns: 500,
            nt_fault_control_ns: 520,
            first_touch_ns: 900,
            sigsegv_deliver_ns: 3_000,

            tlb_flush_base_ns: 2_000,
            tlb_flush_per_core_ns: 400,

            tlb_miss_rate_stream: 0.01,
            tlb_miss_rate_blocked: 0.06,
            tlb_miss_rate_random: 0.60,
            pt_walk_base_ns: 35.0,
            pt_walk_hop_mult: 1.05,
            pt_replica_sync_base_ns: 90,
            pt_replica_sync_per_pte_ns: 18,
            pt_migrate_base_ns: 5_000,
            pt_migrate_per_pte_ns: 8,

            pt_lock_fraction: 0.55,
            mmap_lock_serializes_base: true,

            slow_tier_latency_mult: 3.0,
            slow_tier_bw_mult: 1.0 / 3.0,
            tier_txn_control_ns: 800,
            tier_commit_ns: 600,
            tier_abort_ns: 300,

            blas3_efficiency: 0.80,
            blas1_efficiency: 0.10,
        }
    }
}

impl CostModel {
    /// NUMA factor for a given hop distance. Distances beyond the
    /// calibrated table extrapolate linearly from the last step.
    pub fn numa_factor(&self, hops: u32) -> f64 {
        let h = hops as usize;
        if h < self.numa_factor.len() {
            self.numa_factor[h]
        } else {
            let last = *self.numa_factor.last().unwrap_or(&1.0);
            let step = if self.numa_factor.len() >= 2 {
                last - self.numa_factor[self.numa_factor.len() - 2]
            } else {
                0.15
            };
            last + step * (h + 1 - self.numa_factor.len()) as f64
        }
    }

    /// Time to copy `bytes` in the kernel (the non-SIMD kernel copy loop).
    pub fn kernel_copy_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.kernel_copy_bw).round() as u64
    }

    /// Time to copy `bytes` with a user-space SIMD streaming copy.
    pub fn user_copy_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.user_copy_bw).round() as u64
    }

    /// Pages needed to back `bytes`.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size)
    }

    /// TLB shootdown cost with `cores` participating cores.
    pub fn tlb_flush_ns(&self, cores: u32) -> u64 {
        self.tlb_flush_base_ns + self.tlb_flush_per_core_ns * cores as u64
    }

    /// One page-table walk against a table homed `hops` links away.
    pub fn pt_walk_ns(&self, hops: u32) -> f64 {
        self.pt_walk_base_ns * (1.0 + self.pt_walk_hop_mult * hops as f64)
    }

    /// One replica write-through of `ptes` entries.
    pub fn pt_replica_sync_ns(&self, ptes: u64) -> u64 {
        self.pt_replica_sync_base_ns + self.pt_replica_sync_per_pte_ns * ptes
    }

    /// Migrating a `ptes`-entry page table to another node.
    pub fn pt_migrate_ns(&self, ptes: u64) -> u64 {
        self.pt_migrate_base_ns + self.pt_migrate_per_pte_ns * ptes
    }

    /// Latency multiplier for a bank in the given tier.
    pub fn tier_latency_mult(&self, tier: crate::MemTier) -> f64 {
        match tier {
            crate::MemTier::Dram => 1.0,
            crate::MemTier::Slow => self.slow_tier_latency_mult,
        }
    }

    /// Bandwidth multiplier for a bank in the given tier (applied as a
    /// divisor on effective access bandwidth).
    pub fn tier_bw_mult(&self, tier: crate::MemTier) -> f64 {
        match tier {
            crate::MemTier::Dram => 1.0,
            crate::MemTier::Slow => self.slow_tier_bw_mult,
        }
    }

    /// Per-page migration cost quanta for a page of `bytes` with
    /// `control_ns` of control work: the serialized page-table-lock
    /// quantum, the unlocked control remainder, the nominal copy time and
    /// the effective initiator-side copy bandwidth. Pure in the model's
    /// constants; see [`QuantaCache`] for the memoized form the kernel's
    /// per-page path uses.
    pub fn migration_quanta(&self, control_ns: u64, bytes: u64) -> MigrationQuanta {
        let f = self.pt_lock_fraction.min(0.95);
        let nominal_copy_ns = self.kernel_copy_ns(bytes);
        MigrationQuanta {
            nominal_copy_ns,
            serial_ns: (f * (control_ns + nominal_copy_ns) as f64).round() as u64,
            parallel_ctl_ns: control_ns - (f * control_ns as f64).round() as u64,
            copy_bw: self.kernel_copy_bw / (1.0 - f),
        }
    }

    /// Sanity-check invariants that the rest of the stack relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err("page_size must be a nonzero power of two".into());
        }
        if !self.huge_page_size.is_multiple_of(self.page_size) {
            return Err("huge_page_size must be a multiple of page_size".into());
        }
        if self.kernel_copy_bw <= 0.0 || self.user_copy_bw <= 0.0 {
            return Err("copy bandwidths must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.pt_lock_fraction) {
            return Err("pt_lock_fraction must be in [0, 1]".into());
        }
        if self.numa_factor.first().copied().unwrap_or(0.0) != 1.0 {
            return Err("numa_factor[0] (local) must be 1.0".into());
        }
        if self.slow_tier_latency_mult < 1.0 {
            return Err("slow_tier_latency_mult must be >= 1.0".into());
        }
        if !(self.slow_tier_bw_mult > 0.0 && self.slow_tier_bw_mult <= 1.0) {
            return Err("slow_tier_bw_mult must be in (0, 1]".into());
        }
        for rate in [
            self.tlb_miss_rate_stream,
            self.tlb_miss_rate_blocked,
            self.tlb_miss_rate_random,
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err("tlb_miss_rate_* must be in [0, 1]".into());
            }
        }
        if self.pt_walk_base_ns <= 0.0 || self.pt_walk_hop_mult < 0.0 {
            return Err("pt_walk_base_ns must be positive, pt_walk_hop_mult >= 0".into());
        }
        Ok(())
    }
}

/// The integer-nanosecond pipeline of one page migration, resolved from
/// the cost model's f64 constants once per distinct `(control_ns, bytes)`
/// pair instead of once per page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationQuanta {
    /// Nominal (contention-free) kernel copy time for the page.
    pub nominal_copy_ns: u64,
    /// Work serialized under the page-table lock:
    /// `pt_lock_fraction * (control + copy)`.
    pub serial_ns: u64,
    /// Control remainder that runs after the lock drops.
    pub parallel_ctl_ns: u64,
    /// Initiator-side bandwidth of the unlocked copy remainder, scaled so
    /// control + copy totals are preserved.
    pub copy_bw: f64,
}

/// Memo table for [`CostModel::migration_quanta`]. A run only ever sees a
/// handful of distinct `(control_ns, bytes)` pairs (move vs migrate vs
/// next-touch control, base vs huge page), so a linear-probe vector beats
/// a hash map. Valid as long as the cost model it is fed does not change —
/// which holds because kernels read the model through a shared immutable
/// `Arc<Topology>`.
#[derive(Debug, Default)]
pub struct QuantaCache {
    entries: Vec<((u64, u64), MigrationQuanta)>,
}

impl QuantaCache {
    /// The quanta for `(control_ns, bytes)`, computing and caching on miss.
    pub fn get(&mut self, cost: &CostModel, control_ns: u64, bytes: u64) -> MigrationQuanta {
        let key = (control_ns, bytes);
        if let Some((_, q)) = self.entries.iter().find(|(k, _)| *k == key) {
            return *q;
        }
        let q = cost.migration_quanta(control_ns, bytes);
        self.entries.push((key, q));
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CostModel::default().validate().unwrap();
    }

    #[test]
    fn numa_factor_table_and_extrapolation() {
        let c = CostModel::default();
        assert_eq!(c.numa_factor(0), 1.0);
        assert!((c.numa_factor(1) - 1.25).abs() < 1e-9);
        assert!((c.numa_factor(2) - 1.40).abs() < 1e-9);
        // Beyond the table: strictly increasing.
        assert!(c.numa_factor(5) > c.numa_factor(4));
    }

    #[test]
    fn kernel_copy_is_1gbs() {
        let c = CostModel::default();
        // 4 kB at 1 GB/s = 4096 ns.
        assert_eq!(c.kernel_copy_ns(4096), 4096);
    }

    #[test]
    fn calibration_move_pages_large_buffer_throughput() {
        // Per-page cost = control + copy must put large-buffer throughput
        // near the paper's 600 MB/s.
        let c = CostModel::default();
        let per_page = c.move_pages_control_ns + c.kernel_copy_ns(c.page_size);
        let mbps = numa_stats_mbps(c.page_size, per_page);
        assert!((550.0..680.0).contains(&mbps), "got {mbps} MB/s");
        // Control share ~38 % (Fig. 6a).
        let ctl = c.move_pages_control_ns as f64 / per_page as f64;
        assert!((0.3..0.45).contains(&ctl), "control share {ctl}");
    }

    #[test]
    fn calibration_kernel_next_touch_throughput() {
        let c = CostModel::default();
        let per_page = c.page_fault_ns + c.nt_fault_control_ns + c.kernel_copy_ns(c.page_size);
        let mbps = numa_stats_mbps(c.page_size, per_page);
        assert!((750.0..860.0).contains(&mbps), "got {mbps} MB/s");
        // Control (fault + control) share ~20 % (Fig. 6b).
        let ctl = (c.page_fault_ns + c.nt_fault_control_ns) as f64 / per_page as f64;
        assert!((0.15..0.25).contains(&ctl), "control share {ctl}");
    }

    #[test]
    fn calibration_migrate_pages_throughput() {
        let c = CostModel::default();
        let per_page = c.migrate_pages_control_ns + c.kernel_copy_ns(c.page_size);
        let mbps = numa_stats_mbps(c.page_size, per_page);
        assert!((720.0..840.0).contains(&mbps), "got {mbps} MB/s");
    }

    #[test]
    fn tier_multipliers() {
        use crate::MemTier;
        let c = CostModel::default();
        assert_eq!(c.tier_latency_mult(MemTier::Dram), 1.0);
        assert_eq!(c.tier_bw_mult(MemTier::Dram), 1.0);
        assert!((c.tier_latency_mult(MemTier::Slow) - 3.0).abs() < 1e-9);
        assert!((c.tier_bw_mult(MemTier::Slow) - 1.0 / 3.0).abs() < 1e-9);
        // Transactional per-page control must undercut the stop-the-world
        // move_pages control: holding no lock during the copy is the point.
        assert!(c.tier_txn_control_ns + c.tier_commit_ns < c.move_pages_control_ns);

        let bad = CostModel {
            slow_tier_latency_mult: 0.5,
            ..CostModel::default()
        };
        assert!(bad.validate().is_err());
        let bad = CostModel {
            slow_tier_bw_mult: 0.0,
            ..CostModel::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn quanta_cache_matches_direct_computation() {
        let c = CostModel::default();
        let mut cache = QuantaCache::default();
        for (ctl, bytes) in [(2_500u64, 4096u64), (1_150, 4096), (520, 2 << 20)] {
            let direct = c.migration_quanta(ctl, bytes);
            assert_eq!(cache.get(&c, ctl, bytes), direct);
            // Second lookup hits the memo and must return the same quanta.
            assert_eq!(cache.get(&c, ctl, bytes), direct);
        }
        let q = c.migration_quanta(2_500, 4096);
        let f = c.pt_lock_fraction;
        assert_eq!(q.nominal_copy_ns, c.kernel_copy_ns(4096));
        assert_eq!(
            q.serial_ns,
            (f * (2_500 + q.nominal_copy_ns) as f64).round() as u64
        );
        assert_eq!(q.parallel_ctl_ns, 2_500 - (f * 2_500f64).round() as u64);
        assert!((q.copy_bw - c.kernel_copy_bw / (1.0 - f)).abs() < 1e-12);
    }

    #[test]
    fn calibration_remote_walk_hits_mitosis_band() {
        let c = CostModel::default();
        // Two hops (the opteron's diagonal) lands the ~3.1x remote-walk
        // penalty Mitosis reports; one hop sits in between.
        let ratio2 = c.pt_walk_ns(2) / c.pt_walk_ns(0);
        assert!((2.9..3.3).contains(&ratio2), "2-hop walk ratio {ratio2}");
        assert!(c.pt_walk_ns(1) > c.pt_walk_ns(0));
        // Miss rates order by access irregularity.
        assert!(c.tlb_miss_rate_stream < c.tlb_miss_rate_blocked);
        assert!(c.tlb_miss_rate_blocked < c.tlb_miss_rate_random);
    }

    #[test]
    fn pt_sync_and_migrate_costs_are_linear() {
        let c = CostModel::default();
        assert_eq!(
            c.pt_replica_sync_ns(4),
            c.pt_replica_sync_base_ns + 4 * c.pt_replica_sync_per_pte_ns
        );
        assert_eq!(
            c.pt_migrate_ns(1000),
            c.pt_migrate_base_ns + 1000 * c.pt_migrate_per_pte_ns
        );
        // A single-PTE replica write-through must be far cheaper than a
        // page migration, or replication could never win.
        assert!(c.pt_replica_sync_ns(4) < c.move_pages_control_ns / 2);
    }

    #[test]
    fn bad_walk_params_rejected() {
        let c = CostModel {
            tlb_miss_rate_random: 1.5,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());
        let c = CostModel {
            pt_walk_base_ns: 0.0,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());
        let c = CostModel {
            pt_walk_hop_mult: -0.1,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn pages_for_rounds_up() {
        let c = CostModel::default();
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(4096), 1);
        assert_eq!(c.pages_for(4097), 2);
        assert_eq!(c.pages_for(0), 0);
    }

    #[test]
    fn invalid_models_rejected() {
        let c = CostModel {
            page_size: 3000,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());

        let c = CostModel {
            pt_lock_fraction: 1.5,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());

        let mut c = CostModel::default();
        c.numa_factor[0] = 1.2;
        assert!(c.validate().is_err());
    }

    // Local helper: MB/s from bytes and ns (mirrors numa-stats::mb_per_s,
    // duplicated here to avoid a dev-dependency cycle).
    fn numa_stats_mbps(bytes: u64, ns: u64) -> f64 {
        bytes as f64 / ns as f64 * 1000.0
    }
}
