//! Parametric NUMA machine descriptions and the calibrated cost model.
//!
//! The paper's experimentation platform (§4.1) is a single host with four
//! quad-core 1.9 GHz Opteron 8347HE processors, one memory node per
//! processor (8 GB each, 2 MB shared L3), connected by HyperTransport links,
//! with a remote-access NUMA factor of 1.2–1.4.
//!
//! This crate describes such machines as data: nodes, cores, caches,
//! point-to-point links with bandwidths, shortest-path routing between
//! nodes, and a [`CostModel`] holding every timing constant used by the
//! simulated kernel and memory system. The constants are calibrated to the
//! paper's own measurements (see DESIGN.md §4).

pub mod cost;
pub mod presets;
pub mod spec;
pub mod topology;

pub use cost::{CostModel, MigrationQuanta, QuantaCache};
pub use spec::{CoreSpec, Link, MemTier, NodeSpec};
pub use topology::{Topology, TopologyError};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a NUMA node (memory bank + attached cores).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

/// Identifier of a CPU core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u16);

/// Identifier of an interconnect link (HyperTransport-style, bidirectional).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u16);

impl NodeId {
    /// The index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CoreId {
    /// The index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core#{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(NodeId(2).to_string(), "node#2");
        assert_eq!(CoreId(7).to_string(), "core#7");
        assert_eq!(LinkId(1).to_string(), "link#1");
    }

    #[test]
    fn id_index_roundtrip() {
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(CoreId(15).index(), 15);
    }
}
